//! Integration: Lemma 1 and Theorems 1–5, 7 on the simulated
//! multiprocessor, including the randomized positive sweeps over
//! generated programs.

use jungle::core::model::{Alpha, Relaxed, Sc};
use jungle::mc::program::GenConfig;
use jungle::mc::theorems::{all_fixed_experiments, random_sweep};
use jungle::mc::verify::CheckKind;
use jungle::mc::{GlobalLockTm, VersionedTm, WriteTxnTm};
use jungle::mc::{ModelEntry, SweepSeeds};

#[test]
fn all_fixed_experiments_pass() {
    for e in all_fixed_experiments() {
        let r = e.run(SweepSeeds::new(0, 2_000), 8_000);
        assert!(r.passed, "{} [{}]: {}", e.id, e.paper_ref, r.detail);
    }
}

fn sweep_cfg() -> GenConfig {
    GenConfig {
        threads: 2,
        vars: 2,
        max_stmts: 2,
        max_txn_ops: 2,
        txn_pct: 60,
        abort_pct: 20,
    }
}

#[test]
fn thm3_random_program_sweep() {
    // Theorem 3: the Figure 6 TM is opaque parametrized by the fully
    // relaxed model, over randomly generated programs and schedules.
    let checked = random_sweep(
        &GlobalLockTm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Opacity,
        25,
        12,
        &sweep_cfg(),
    )
    .unwrap_or_else(|e| panic!("Theorem 3 sweep failed: {e}"));
    assert!(checked >= 25 * 6, "too few completed runs: {checked}");
}

#[test]
fn thm4_random_program_sweep() {
    // Theorem 4: writes-as-transactions, opaque for M ∉ Mrr (Alpha).
    let checked = random_sweep(
        &WriteTxnTm,
        &ModelEntry::checker_game(&Alpha),
        CheckKind::Opacity,
        20,
        10,
        &sweep_cfg(),
    )
    .unwrap_or_else(|e| panic!("Theorem 4 sweep failed: {e}"));
    assert!(checked > 0);
}

#[test]
fn thm5_random_program_sweep() {
    // Theorem 5: constant-time write instrumentation, opaque for
    // M ∉ Mrr ∪ Mwr (Alpha).
    let checked = random_sweep(
        &VersionedTm,
        &ModelEntry::checker_game(&Alpha),
        CheckKind::Opacity,
        20,
        10,
        &sweep_cfg(),
    )
    .unwrap_or_else(|e| panic!("Theorem 5 sweep failed: {e}"));
    assert!(checked > 0);
}

#[test]
fn thm7_sgla_random_program_sweep_under_sc() {
    // Theorem 7: the global-lock TM guarantees SGLA for *every* model;
    // SC is the strongest, so it is the binding case.
    let checked = random_sweep(
        &GlobalLockTm,
        &ModelEntry::checker_game(&Sc),
        CheckKind::Sgla,
        20,
        10,
        &sweep_cfg(),
    )
    .unwrap_or_else(|e| panic!("Theorem 7 sweep failed: {e}"));
    assert!(checked > 0);
}

#[test]
fn thm3_exhaustive_on_aborting_program() {
    // Aborted transactions must also observe consistent states and
    // leak nothing — exhaustively on a small program.
    use jungle::core::ids::{X, Y};
    use jungle::mc::program::{Program, Stmt, ThreadProg, TxOp};
    use jungle::mc::verify::check_all_traces;

    // Keep the program tiny: exhaustive exploration is exponential in
    // the interleaving width (the Y-write variant of this program has
    // ~50M schedules; this one has a few thousand).
    let program = Program(vec![
        ThreadProg(vec![Stmt::aborting_txn(vec![TxOp::Write(X, 9)])]),
        ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(X)]),
    ]);
    let v = check_all_traces(
        &program,
        &GlobalLockTm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Opacity,
        4_000,
    );
    assert!(v.ok, "aborted-txn leak: {:?}", v.violation);
    assert!(v.runs > 10, "exploration too shallow: {} runs", v.runs);
    let _ = Y;
}

#[test]
fn small_scope_exhaustive_thm3_and_thm7() {
    use jungle::mc::theorems::small_scope_sweep;
    // Theorem 3: every tiny two-thread program, every schedule (random
    // sampling only for the lock-contended txn×txn pairs).
    let runs = small_scope_sweep(
        &GlobalLockTm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Opacity,
        4_000,
    )
    .unwrap_or_else(|e| panic!("Theorem 3 small-scope sweep failed: {e}"));
    assert!(runs > 1_000, "suspiciously few runs: {runs}");
    // Theorem 7 under SC (the strongest SGLA case).
    let runs = small_scope_sweep(
        &GlobalLockTm,
        &ModelEntry::checker_game(&Sc),
        CheckKind::Sgla,
        4_000,
    )
    .unwrap_or_else(|e| panic!("Theorem 7 small-scope sweep failed: {e}"));
    assert!(runs > 1_000);
}

#[test]
fn small_scope_exhaustive_thm5() {
    use jungle::mc::theorems::small_scope_sweep;
    let runs = small_scope_sweep(
        &VersionedTm,
        &ModelEntry::checker_game(&Alpha),
        CheckKind::Opacity,
        4_000,
    )
    .unwrap_or_else(|e| panic!("Theorem 5 small-scope sweep failed: {e}"));
    assert!(runs > 1_000);
}

#[test]
fn versioned_vs_naive_on_theorem2_scenario() {
    // The same program under the versioned TM (CAS on packed words) is
    // correct where the naive store-based TM is not — even under the
    // fully relaxed model.
    use jungle::core::ids::X;
    use jungle::mc::program::{Program, Stmt, ThreadProg, TxOp};
    use jungle::mc::verify::{check_random, find_violation, SweepSeeds};
    use jungle::mc::NaiveStoreTm;

    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X), TxOp::Write(X, 7)])]),
        ThreadProg(vec![
            Stmt::NtWrite(X, 3),
            Stmt::NtRead(X),
            Stmt::txn(vec![]),
            Stmt::NtRead(X),
        ]),
    ]);
    let naive = find_violation(
        &program,
        &NaiveStoreTm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Opacity,
        SweepSeeds::new(0, 2_000),
        8_000,
    );
    assert!(
        naive.is_some(),
        "Theorem 2: naive store-based TM must violate"
    );

    let versioned = check_random(
        &program,
        &VersionedTm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Opacity,
        SweepSeeds::new(0, 2_000),
        8_000,
    );
    assert!(
        versioned.ok,
        "versioned TM violated: {:?}",
        versioned.violation
    );
}
