//! Integration: the *real* STMs, checked online.
//!
//! Each test runs a small concurrent program on an executable STM with
//! interval recording, then asks the paper's question of the recorded
//! trace: does **some corresponding history** satisfy the property the
//! STM claims? (This is exactly the definition of a TM implementation
//! guaranteeing opacity/SGLA parametrized by a model.)

use jungle::core::model::{Alpha, MemoryModel, Relaxed, Sc};
use jungle::core::opacity::check_opacity;
use jungle::core::sgla::check_sgla;
use jungle::isa::trace::Trace;
use jungle::litmus::programs::fig1_program;
use jungle::litmus::runner::run_recorded;
use jungle::mc::program::{Program, Stmt, ThreadProg, TxOp};
use jungle::stm::{GlobalLockStm, StrongStm, Tl2Stm, VersionedStm, WriteTxnStm};
use jungle_core::ids::{X, Y, Z};

fn satisfies_opacity(trace: &Trace, model: &dyn MemoryModel) -> bool {
    if let Ok(h) = trace.canonical_history() {
        if check_opacity(&h, model).is_opaque() {
            return true;
        }
    }
    trace
        .exists_corresponding(|h| check_opacity(h, model).is_opaque())
        .is_some()
}

fn satisfies_sgla(trace: &Trace, model: &dyn MemoryModel) -> bool {
    if let Ok(h) = trace.canonical_history() {
        if check_sgla(&h, model).is_sgla() {
            return true;
        }
    }
    trace
        .exists_corresponding(|h| check_sgla(h, model).is_sgla())
        .is_some()
}

fn mixed_program() -> Program {
    Program(vec![
        ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)]),
            Stmt::NtRead(Z),
        ]),
        ThreadProg(vec![Stmt::NtWrite(Z, 5), Stmt::NtRead(Y), Stmt::NtRead(X)]),
    ])
}

#[test]
fn strong_stm_executions_opaque_under_sc() {
    // The §6.1 strong-atomicity STM: opacity parametrized by SC — the
    // strongest claim in the workspace, checked on live runs.
    for i in 0..40 {
        let (_, trace) = run_recorded(&fig1_program(), || StrongStm::new(4));
        assert!(
            satisfies_opacity(&trace, &Sc),
            "run {i}: strong STM trace not SC-opaque"
        );
    }
    for i in 0..40 {
        let (_, trace) = run_recorded(&mixed_program(), || StrongStm::new(4));
        assert!(
            satisfies_opacity(&trace, &Sc),
            "run {i}: strong STM mixed trace not SC-opaque"
        );
    }
}

#[test]
fn global_lock_stm_executions_opaque_under_relaxed_and_sgla_under_sc() {
    // Theorem 3 + Theorem 7 on the real Figure 6 STM.
    for i in 0..40 {
        let (_, trace) = run_recorded(&mixed_program(), || GlobalLockStm::new(4));
        assert!(
            satisfies_opacity(&trace, &Relaxed),
            "run {i}: global-lock trace not Relaxed-opaque"
        );
        assert!(
            satisfies_sgla(&trace, &Sc),
            "run {i}: global-lock trace not SC-SGLA"
        );
    }
}

#[test]
fn versioned_stm_executions_opaque_under_alpha() {
    // Theorem 5 on the real constant-time-write STM.
    for i in 0..40 {
        let (_, trace) = run_recorded(&mixed_program(), || VersionedStm::new(4));
        assert!(
            satisfies_opacity(&trace, &Alpha),
            "run {i}: versioned trace not Alpha-opaque"
        );
    }
}

#[test]
fn write_txn_stm_executions_opaque_under_alpha() {
    // Theorem 4 on the real writes-as-transactions STM.
    for i in 0..40 {
        let (_, trace) = run_recorded(&mixed_program(), || WriteTxnStm::new(4));
        assert!(
            satisfies_opacity(&trace, &Alpha),
            "run {i}: write-txn trace not Alpha-opaque"
        );
    }
}

#[test]
fn tl2_transaction_only_executions_opaque() {
    // TL2 guarantees opacity for purely transactional programs (its
    // weakness is only in mixing).
    let program = Program(vec![
        ThreadProg(vec![
            Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)]),
            Stmt::txn(vec![TxOp::Read(X), TxOp::Read(Y)]),
        ]),
        ThreadProg(vec![Stmt::txn(vec![TxOp::Read(Y), TxOp::Write(Z, 3)])]),
    ]);
    for i in 0..40 {
        let (_, trace) = run_recorded(&program, || Tl2Stm::new(4));
        assert!(
            satisfies_opacity(&trace, &Sc),
            "run {i}: TL2 transactional trace not opaque"
        );
    }
}

#[test]
fn aborting_transactions_recorded_and_consistent() {
    let program = Program(vec![
        ThreadProg(vec![
            Stmt::aborting_txn(vec![TxOp::Write(X, 9)]),
            Stmt::NtRead(X),
        ]),
        ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X)])]),
    ]);
    for i in 0..30 {
        let (out, trace) = run_recorded(&program, || GlobalLockStm::new(2));
        // The aborted write is never visible.
        assert_eq!(out[0], vec![0], "aborted write leaked on run {i}");
        assert!(satisfies_opacity(&trace, &Relaxed), "run {i} not opaque");
    }
}
