//! Integration: SGLA-specific behaviour (§6.2) — the gap between
//! parametrized opacity and single global lock atomicity, and SGLA's
//! own invariants.

use jungle::core::builder::HistoryBuilder;
use jungle::core::history::History;
use jungle::core::ids::{ProcId, Val, Var, X, Y};
use jungle::core::model::{all_models, Pso, Relaxed, Rmo, Sc, Tso};
use jungle::core::opacity::check_opacity;
use jungle::core::sgla::check_sgla;
use proptest::prelude::*;

fn p(n: u32) -> ProcId {
    ProcId(n)
}

/// Histories in the gap: SGLA allows them, opacity does not.
#[test]
fn sgla_opacity_gap_examples() {
    // 1. A non-transactional write observed mid-transaction.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.read(p(1), X, 0);
    b.write(p(2), X, 5);
    b.read(p(1), X, 5); // non-repeatable read inside the txn
    b.commit(p(1));
    let h = b.build().unwrap();
    for m in all_models() {
        if m.name() != "Junk-SC" {
            // (Junk-SC's havoc legitimately explains the torn values.)
            assert!(
                !check_opacity(&h, m).is_opaque(),
                "opacity under {}",
                m.name()
            );
        }
        assert!(check_sgla(&h, m).is_sgla(), "SGLA under {}", m.name());
    }

    // 2. A non-transactional observer provably *inside* a transaction:
    //    p2 reads the transaction's write of x and then feeds y back
    //    into the same transaction — under opacity the read must be
    //    after T and the write before T (a cycle with p2's program
    //    order); under SGLA's critical-section semantics the exchange
    //    is the ordinary behaviour of a monitor.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 9);
    b.read(p(2), X, 9); // sees the in-place write
    b.write(p(2), Y, 1);
    b.read(p(1), Y, 1); // the transaction sees the reply
    b.commit(p(1));
    let h = b.build().unwrap();
    assert!(!check_opacity(&h, &Sc).is_opaque());
    assert!(check_sgla(&h, &Sc).is_sgla());

    // 3. A value written by an ultimately-aborted transaction, read
    //    non-transactionally before the rollback (undo semantics).
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 7);
    b.read(p(2), X, 7); // sees the to-be-undone value
    b.abort(p(1));
    b.read(p(2), X, 0); // after rollback the old value is back
    let h = b.build().unwrap();
    assert!(!check_opacity(&h, &Sc).is_opaque());
    assert!(check_sgla(&h, &Sc).is_sgla());
}

/// SGLA still means something: transactions are atomic against each
/// other, in real-time order, per process program order.
#[test]
fn sgla_still_rejects_transactional_anomalies() {
    // Torn snapshot across two transactions.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.start(p(2));
    b.read(p(2), X, 1);
    b.read(p(2), Y, 0); // would split T1
    b.commit(p(2));
    let h = b.build().unwrap();
    for m in all_models() {
        assert!(!check_sgla(&h, m).is_sgla(), "under {}", m.name());
    }

    // Real-time order between transactions.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.commit(p(1));
    b.start(p(2));
    b.read(p(2), X, 0); // stale: T1 completed before T2 started
    b.commit(p(2));
    let h = b.build().unwrap();
    assert!(!check_sgla(&h, &Relaxed).is_sgla());
}

#[test]
fn sgla_respects_base_model_for_nontransactional_code() {
    // Figure 2(b)-style message passing with an unrelated transaction
    // appended: the non-transactional verdict still follows the model.
    let mk = || {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.read(p(2), Y, 1);
        b.read(p(2), X, 0);
        b.start(p(3));
        b.write(p(3), Var(5), 1);
        b.commit(p(3));
        b.build().unwrap()
    };
    assert!(!check_sgla(&mk(), &Sc).is_sgla());
    assert!(!check_sgla(&mk(), &Tso).is_sgla());
    assert!(check_sgla(&mk(), &Pso).is_sgla());
    assert!(check_sgla(&mk(), &Rmo).is_sgla());
}

#[derive(Clone, Debug)]
enum Ev {
    Read(u8, u8, u8),
    Write(u8, u8, u8),
    Start(u8),
    Commit(u8),
    Abort(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..3u8, 0..2u8, 0..3u8).prop_map(|(p, v, x)| Ev::Read(p, v, x)),
        (0..3u8, 0..2u8, 1..4u8).prop_map(|(p, v, x)| Ev::Write(p, v, x)),
        (0..3u8).prop_map(Ev::Start),
        (0..3u8).prop_map(Ev::Commit),
        (0..3u8).prop_map(Ev::Abort),
    ]
}

fn build_history(evs: &[Ev]) -> History {
    let mut b = HistoryBuilder::new();
    let mut open = [false; 3];
    for ev in evs {
        match *ev {
            Ev::Read(q, v, x) => {
                b.read(p(q.into()), Var(v.into()), Val::from(x));
            }
            Ev::Write(q, v, x) => {
                b.write(p(q.into()), Var(v.into()), Val::from(x));
            }
            Ev::Start(q) if !open[q as usize] => {
                open[q as usize] = true;
                b.start(p(q.into()));
            }
            Ev::Commit(q) if open[q as usize] => {
                open[q as usize] = false;
                b.commit(p(q.into()));
            }
            Ev::Abort(q) if open[q as usize] => {
                open[q as usize] = false;
                b.abort(p(q.into()));
            }
            _ => {}
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// SGLA is monotone under model weakening, like opacity.
    #[test]
    fn sgla_monotone_under_model_weakening(
        evs in prop::collection::vec(ev_strategy(), 0..8)
    ) {
        let h = build_history(&evs);
        if check_sgla(&h, &Sc).is_sgla() {
            for m in [&Tso as &dyn jungle::core::model::MemoryModel, &Pso, &Rmo, &Relaxed] {
                prop_assert!(
                    check_sgla(&h, m).is_sgla(),
                    "SC-SGLA but not {}-SGLA: {:?}",
                    m.name(),
                    h
                );
            }
        }
    }

    /// Purely non-transactional histories: SGLA and opacity coincide
    /// (with no transactions both reduce to the memory model alone).
    #[test]
    fn no_txns_sgla_equals_opacity(
        evs in prop::collection::vec(ev_strategy(), 0..8)
    ) {
        let only_nt: Vec<Ev> = evs
            .into_iter()
            .filter(|e| matches!(e, Ev::Read(..) | Ev::Write(..)))
            .collect();
        let h = build_history(&only_nt);
        for m in all_models() {
            prop_assert_eq!(
                check_opacity(&h, m).is_opaque(),
                check_sgla(&h, m).is_sgla(),
                "divergence without transactions under {}",
                m.name()
            );
        }
    }
}
