//! Property-based tests on the formal framework's invariants.
//!
//! * the incremental legality checker agrees with the replay-based
//!   reference on sequential histories;
//! * weakening the memory model never revokes opacity (monotonicity);
//! * parametrized opacity implies SGLA (Theorem 6), for random
//!   histories and every bundled model;
//! * structural invariants: `visible` idempotence, prefix
//!   well-formedness, real-time closure transitivity;
//! * purely transactional histories get identical verdicts under every
//!   memory model (requirement 1 of §1: the model must not affect
//!   transaction-only semantics).

use jungle::core::builder::HistoryBuilder;
use jungle::core::history::History;
use jungle::core::ids::{ProcId, Val, Var};
use jungle::core::legal::{every_op_legal, PrefixChecker};
use jungle::core::model::{all_models, Pso, Relaxed, Rmo, Sc, Tso};
use jungle::core::opacity::check_opacity;
use jungle::core::sgla::check_sgla;
use jungle::core::spec::SpecRegistry;
use proptest::prelude::*;

/// A step of a random (possibly concurrent) history.
#[derive(Clone, Debug)]
enum Ev {
    Read(u8, u8, u8),  // proc, var, val
    Write(u8, u8, u8), // proc, var, val
    Start(u8),
    Commit(u8),
    Abort(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..3u8, 0..2u8, 0..3u8).prop_map(|(p, v, x)| Ev::Read(p, v, x)),
        (0..3u8, 0..2u8, 1..4u8).prop_map(|(p, v, x)| Ev::Write(p, v, x)),
        (0..3u8).prop_map(Ev::Start),
        (0..3u8).prop_map(Ev::Commit),
        (0..3u8).prop_map(Ev::Abort),
    ]
}

/// Interpret an event list into a well-formed history (boundary events
/// are dropped when they would break well-formedness).
fn build_history(evs: &[Ev]) -> History {
    let mut b = HistoryBuilder::new();
    let mut open = [false; 3];
    for ev in evs {
        match *ev {
            Ev::Read(p, v, x) => {
                b.read(ProcId(p.into()), Var(v.into()), Val::from(x));
            }
            Ev::Write(p, v, x) => {
                b.write(ProcId(p.into()), Var(v.into()), Val::from(x));
            }
            Ev::Start(p) => {
                if !open[p as usize] {
                    open[p as usize] = true;
                    b.start(ProcId(p.into()));
                }
            }
            Ev::Commit(p) => {
                if open[p as usize] {
                    open[p as usize] = false;
                    b.commit(ProcId(p.into()));
                }
            }
            Ev::Abort(p) => {
                if open[p as usize] {
                    open[p as usize] = false;
                    b.abort(ProcId(p.into()));
                }
            }
        }
    }
    b.build().expect("interpreter maintains well-formedness")
}

/// A *sequential* random history: whole transactions and
/// non-transactional ops appended one block at a time.
#[derive(Clone, Debug)]
enum Block {
    Nt(Ev),
    Txn(u8, Vec<(bool, u8, u8)>, bool), // proc, (is_read, var, val), commit?
}

fn block_strategy() -> impl Strategy<Value = Block> {
    prop_oneof![
        (0..3u8, 0..2u8, 0..3u8).prop_map(|(p, v, x)| Block::Nt(Ev::Read(p, v, x))),
        (0..3u8, 0..2u8, 1..4u8).prop_map(|(p, v, x)| Block::Nt(Ev::Write(p, v, x))),
        (
            0..3u8,
            prop::collection::vec((any::<bool>(), 0..2u8, 0..4u8), 0..3),
            any::<bool>()
        )
            .prop_map(|(p, ops, c)| Block::Txn(p, ops, c)),
    ]
}

fn build_sequential(blocks: &[Block]) -> History {
    let mut b = HistoryBuilder::new();
    for blk in blocks {
        match blk {
            Block::Nt(Ev::Read(p, v, x)) => {
                b.read(ProcId((*p).into()), Var((*v).into()), Val::from(*x));
            }
            Block::Nt(Ev::Write(p, v, x)) => {
                b.write(ProcId((*p).into()), Var((*v).into()), Val::from(*x));
            }
            Block::Nt(_) => unreachable!(),
            Block::Txn(p, ops, commit) => {
                let p = ProcId((*p).into());
                b.start(p);
                for (is_read, v, x) in ops {
                    if *is_read {
                        b.read(p, Var((*v).into()), Val::from(*x));
                    } else {
                        b.write(p, Var((*v).into()), Val::from(*x));
                    }
                }
                if *commit {
                    b.commit(p);
                } else {
                    b.abort(p);
                }
            }
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_checker_matches_reference_on_sequential(
        blocks in prop::collection::vec(block_strategy(), 0..6)
    ) {
        let h = build_sequential(&blocks);
        prop_assume!(h.is_sequential());
        let specs = SpecRegistry::registers();
        let mut inc = PrefixChecker::new(&specs);
        let mut inc_ok = true;
        for (i, oi) in h.ops().iter().enumerate() {
            if !inc.step(&oi.op, h.is_transactional(i)) {
                inc_ok = false;
                break;
            }
        }
        let ref_ok = every_op_legal(&h, &specs);
        prop_assert_eq!(inc_ok, ref_ok, "history: {:?}", h);
    }

    #[test]
    fn opacity_monotone_under_model_weakening(
        evs in prop::collection::vec(ev_strategy(), 0..8)
    ) {
        let h = build_history(&evs);
        // SC requires the most; every other (identity-transform) model
        // requires a subset of its pairs, so SC-opaque ⟹ M-opaque.
        if check_opacity(&h, &Sc).is_opaque() {
            for m in [&Tso as &dyn jungle::core::model::MemoryModel, &Pso, &Rmo, &Relaxed] {
                prop_assert!(
                    check_opacity(&h, m).is_opaque(),
                    "SC-opaque but not {}-opaque: {:?}",
                    m.name(),
                    h
                );
            }
        }
        // TSO ⟹ PSO ⟹ Relaxed (chain of pointwise-weaker models).
        if check_opacity(&h, &Tso).is_opaque() {
            prop_assert!(check_opacity(&h, &Pso).is_opaque());
        }
        if check_opacity(&h, &Pso).is_opaque() {
            prop_assert!(check_opacity(&h, &Relaxed).is_opaque());
        }
    }

    #[test]
    fn theorem6_opacity_implies_sgla(
        evs in prop::collection::vec(ev_strategy(), 0..8)
    ) {
        let h = build_history(&evs);
        for m in all_models() {
            if check_opacity(&h, m).is_opaque() {
                prop_assert!(
                    check_sgla(&h, m).is_sgla(),
                    "opaque but not SGLA under {}: {:?}",
                    m.name(),
                    h
                );
            }
        }
    }

    #[test]
    fn purely_transactional_histories_model_independent(
        blocks in prop::collection::vec(block_strategy(), 0..5)
    ) {
        // Requirement 1 of §1: executions that are purely transactional
        // must get the same verdict under every memory model.
        let only_txns: Vec<Block> =
            blocks.into_iter().filter(|b| matches!(b, Block::Txn(..))).collect();
        let h = build_sequential(&only_txns);
        let reference = check_opacity(&h, &Sc).is_opaque();
        for m in all_models() {
            if m.name() == "Junk-SC" {
                continue; // its τ rewrites transactional writes too
            }
            prop_assert_eq!(
                check_opacity(&h, m).is_opaque(),
                reference,
                "transaction-only verdict differs under {}",
                m.name()
            );
        }
    }

    #[test]
    fn visible_is_idempotent_and_wellformed(
        evs in prop::collection::vec(ev_strategy(), 0..10)
    ) {
        let h = build_history(&evs);
        let v1 = h.visible();
        let v2 = v1.visible();
        prop_assert_eq!(v1.len(), v2.len());
        // Prefixes of a well-formed history are well-formed (the
        // builder would panic otherwise) and visible() only shrinks.
        prop_assert!(v1.len() <= h.len());
        for i in 0..h.len() {
            let p = h.prefix(i);
            prop_assert_eq!(p.len(), i + 1);
        }
    }

    #[test]
    fn rt_closure_is_transitive_and_irreflexive(
        evs in prop::collection::vec(ev_strategy(), 0..10)
    ) {
        let h = build_history(&evs);
        let m = h.rt_closure();
        let n = h.len();
        for i in 0..n {
            prop_assert!(!m[i][i], "≺h must be irreflexive");
            for j in 0..n {
                for k in 0..n {
                    if m[i][j] && m[j][k] {
                        prop_assert!(m[i][k], "≺h closure not transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn opaque_history_has_witness_permutation(
        evs in prop::collection::vec(ev_strategy(), 0..7)
    ) {
        let h = build_history(&evs);
        let v = check_opacity(&h, &Sc);
        if v.is_opaque() {
            // Every witness is a permutation of the (transformed)
            // history's operations.
            for (_, w) in v.witnesses() {
                prop_assert_eq!(w.len(), h.len());
                let mut ids: Vec<u32> = w.iter().map(|id| id.0).collect();
                ids.sort_unstable();
                ids.dedup();
                prop_assert_eq!(ids.len(), h.len());
            }
        }
    }

    #[test]
    fn stm_and_mc_packed_layouts_agree(
        val in 0..u32::MAX as u64, pid in 0..255u32, ver in 0..0x00FF_FFFFu32
    ) {
        // The Theorem 5 word layout is implemented twice (simulator and
        // real STM); they must agree bit for bit.
        let a = jungle::mc::layout::packed::pack(val, ProcId(pid), ver);
        let b = jungle::stm::versioned::packing::pack(val, ProcId(pid), ver);
        prop_assert_eq!(a, b);
        prop_assert_eq!(jungle::stm::versioned::packing::value(b), val);
        prop_assert_eq!(jungle::mc::layout::packed::pid(a), ProcId(pid));
    }
}
