//! Integration: every figure of the paper, end to end.
//!
//! Figures 1–2 via the litmus tables, Figure 3 via legality of s1/s2
//! and the parametrized verdicts, Figure 4 via trace correspondence
//! (tested in jungle-isa), Figure 6 via the executable STMs.

use jungle::core::legal::every_op_legal;
use jungle::core::model::{all_models, Alpha, Pso, Relaxed, Rmo, Sc, Tso, TsoForwarding};
use jungle::core::opacity::check_opacity;
use jungle::core::spec::SpecRegistry;
use jungle::litmus::figures::{all_litmus, fig1, fig2a, fig2b, fig2c, fig3, fig3_s1, fig3_s2};

#[test]
fn fig1_full_model_matrix() {
    let l = fig1();
    // The anomalous outcome r1=1, r2=0: forbidden by every read-read
    // restrictive model, allowed by the rest.
    let anomaly = "r1=1 r2=0";
    assert_eq!(l.judge(anomaly, &Sc), Some(false));
    assert_eq!(l.judge(anomaly, &Tso), Some(false));
    assert_eq!(l.judge(anomaly, &TsoForwarding), Some(false));
    assert_eq!(l.judge(anomaly, &Pso), Some(false));
    assert_eq!(l.judge(anomaly, &Rmo), Some(true));
    assert_eq!(l.judge(anomaly, &Alpha), Some(true));
    assert_eq!(l.judge(anomaly, &Relaxed), Some(true));
    // All sequentially-explainable outcomes allowed everywhere.
    for label in ["r1=0 r2=0", "r1=0 r2=1", "r1=1 r2=1"] {
        for m in all_models() {
            assert_eq!(l.judge(label, m), Some(true), "{label} under {}", m.name());
        }
    }
}

#[test]
fn fig2a_z_never_negative() {
    let l = fig2a();
    // z = x − y < 0 requires a snapshot with y fresher than x: all the
    // (x,y) snapshots that would make z negative are forbidden under
    // every model (transactional-only history: the memory model plays
    // no role).
    for m in all_models() {
        assert_eq!(l.judge("x=0 y=2", m), Some(false), "under {}", m.name());
        assert_eq!(l.judge("x=1 y=2", m), Some(false), "under {}", m.name());
        assert_eq!(l.judge("x=2 y=0", m), Some(true), "under {}", m.name());
    }
}

#[test]
fn fig2b_nontransactional_relaxation_table() {
    let l = fig2b();
    let anomaly = "r1=1 r2=0";
    // Requires either write-write or read-read reordering.
    assert_eq!(l.judge(anomaly, &Sc), Some(false));
    assert_eq!(l.judge(anomaly, &Tso), Some(false));
    assert_eq!(l.judge(anomaly, &Pso), Some(true)); // w→w relaxes
    assert_eq!(l.judge(anomaly, &Rmo), Some(true));
    assert_eq!(l.judge(anomaly, &Alpha), Some(true));
    assert_eq!(l.judge(anomaly, &Relaxed), Some(true));
}

#[test]
fn fig2c_isolation_for_all_models() {
    let l = fig2c();
    for m in all_models() {
        if m.name() == "Junk-SC" {
            continue;
        }
        assert_eq!(
            l.judge("z=1", m),
            Some(false),
            "intermediate leak under {}",
            m.name()
        );
        assert_eq!(
            l.judge("r1=0 r2=5", m),
            Some(false),
            "torn txn reads under {}",
            m.name()
        );
    }
}

#[test]
fn fig3_verdicts_and_witness_legality() {
    // Opacity of h per the paper's §3.3 analysis.
    assert!(check_opacity(&fig3(1), &Sc).is_opaque());
    assert!(!check_opacity(&fig3(0), &Sc).is_opaque());
    assert!(check_opacity(&fig3(0), &Rmo).is_opaque());
    assert!(check_opacity(&fig3(1), &Rmo).is_opaque());

    // Legality of the two sequential histories from Figure 3(b,c).
    let specs = SpecRegistry::registers();
    assert!(every_op_legal(&fig3_s1(1, 1), &specs));
    assert!(every_op_legal(&fig3_s2(0, 1), &specs));
    assert!(!every_op_legal(&fig3_s1(0, 1), &specs));
    assert!(!every_op_legal(&fig3_s2(1, 1), &specs));
}

#[test]
fn all_litmus_tables_are_total() {
    // Every (outcome, model) pair gets a verdict — no panics, no gaps.
    for l in all_litmus() {
        let rows = l.table();
        assert_eq!(rows.len(), l.outcomes.len() * all_models().len());
    }
}

#[test]
fn junk_sc_permits_strictly_more() {
    use jungle::core::model::JunkSc;
    // Junk-SC's havoc can only make more histories opaque than SC.
    for l in all_litmus() {
        for o in &l.outcomes {
            let sc = l.judge(&o.label, &Sc).unwrap();
            let junk = l.judge(&o.label, &JunkSc).unwrap();
            assert!(
                !sc || junk,
                "{}::{} opaque under SC but not Junk-SC",
                l.name,
                o.label
            );
        }
    }
}
