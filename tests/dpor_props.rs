//! DPOR equivalence and determinism properties.
//!
//! The partial-order-reduced explorer (`jungle::mc::dpor`) must be
//! *observationally identical* to plain schedule enumeration:
//!
//! * **Class-set oracle** — over a small corpus of programs and every
//!   registry model, [`class_sweep_dpor`] visits exactly the
//!   `Trace::cache_key` set that [`class_sweep_enumerative`] visits, in
//!   strictly fewer machine runs.
//! * **Verdict oracle** — [`check_all_traces`] (DPOR-backed) and
//!   [`check_all_traces_enumerative`] (the retired brute-force sweep)
//!   agree on the verdict and on the witness fingerprint, for both
//!   check kinds and for passing *and* violating algorithms.
//! * **Worker determinism** — the work-stealing frontier returns the
//!   same verdict and the same (lexicographically least) witness at 1,
//!   2 and 4 workers.

use jungle::core::ids::{X, Y};
use jungle::core::par::ParallelConfig;
use jungle::core::registry::{entry, registry};
use jungle::mc::program::{Program, Stmt, ThreadProg, TxOp};
use jungle::mc::{
    check_all_traces, check_all_traces_enumerative, check_all_traces_shared, class_sweep_dpor,
    class_sweep_enumerative, CheckKind, GlobalLockTm, SharedVerdictMemo, SkipWriteTm,
};

const MAX_STEPS: usize = 4_000;

/// Figure-1-flavoured litmus: a committing transactional write racing
/// uninstrumented reads (the paper's instrumentation battleground).
fn litmus() -> Program {
    Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)])]),
        ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(X)]),
    ])
}

/// Non-transactional stress: cross-thread store/load mix that exposes
/// store-buffer reordering under the relaxed execution disciplines.
fn stress() -> Program {
    Program(vec![
        ThreadProg(vec![Stmt::NtWrite(X, 1), Stmt::NtRead(Y)]),
        ThreadProg(vec![Stmt::NtWrite(Y, 1)]),
    ])
}

/// Lemma 1's violating shape: a TM that never publishes transactional
/// writes, caught by the very next uninstrumented read.
fn skipped_write() -> Program {
    Program(vec![ThreadProg(vec![
        Stmt::txn(vec![TxOp::Write(X, 5)]),
        Stmt::NtRead(X),
    ])])
}

#[test]
fn dpor_visits_exactly_the_enumerated_class_set() {
    for (name, p) in [("litmus", litmus()), ("stress", stress())] {
        for e in registry() {
            let brute = class_sweep_enumerative(&p, &GlobalLockTm, e, MAX_STEPS);
            let dpor = class_sweep_dpor(&p, &GlobalLockTm, e, MAX_STEPS);
            assert_eq!(
                dpor.keys, brute.keys,
                "{name}/{}: DPOR class-key set diverges from enumeration",
                e.key
            );
            assert_eq!(dpor.truncated, brute.truncated, "{name}/{}", e.key);
            assert!(
                dpor.executed < brute.executed,
                "{name}/{}: no reduction ({} vs {})",
                e.key,
                dpor.executed,
                brute.executed
            );
            // Sleep sets guarantee no Mazurkiewicz class is completed
            // twice, so completed runs can never undercut the key count.
            assert!(
                dpor.completed >= dpor.keys.len() as u64,
                "{name}/{}: fewer complete runs than distinct keys",
                e.key
            );
        }
    }
}

#[test]
fn dpor_checker_agrees_with_enumerative_checker() {
    // (program, algo, expected-ok-under-GlobalLock-semantics)
    let corpus: [(&str, Program, &dyn jungle::mc::algos::TmAlgo); 3] = [
        ("litmus/global-lock", litmus(), &GlobalLockTm),
        ("stress/global-lock", stress(), &GlobalLockTm),
        ("lemma1/skip-write", skipped_write(), &SkipWriteTm),
    ];
    // SC keeps the enumerative side tractable; the class-set oracle
    // above already covers every registry model.
    let e = entry("SC").unwrap();
    for (name, p, algo) in corpus {
        for kind in [CheckKind::Opacity, CheckKind::Sgla] {
            let fast = check_all_traces(&p, algo, e, kind, MAX_STEPS);
            let slow = check_all_traces_enumerative(&p, algo, e, kind, MAX_STEPS);
            assert_eq!(
                fast.ok, slow.ok,
                "{name}/{kind:?}: DPOR verdict diverges from enumeration"
            );
            assert_eq!(
                fast.violation.as_ref().map(|t| t.cache_key()),
                slow.violation.as_ref().map(|t| t.cache_key()),
                "{name}/{kind:?}: witness fingerprint diverges"
            );
        }
    }
    // Polarity sanity: the corpus exercises both outcomes.
    assert!(check_all_traces(&litmus(), &GlobalLockTm, e, CheckKind::Opacity, MAX_STEPS).ok);
    assert!(
        !check_all_traces(
            &skipped_write(),
            &SkipWriteTm,
            e,
            CheckKind::Opacity,
            MAX_STEPS
        )
        .ok
    );
}

#[test]
fn worker_count_preserves_verdict_and_witness() {
    let memo = SharedVerdictMemo::new();
    let cases: [(&str, Program, &dyn jungle::mc::algos::TmAlgo, &str); 3] = [
        ("pass", litmus(), &GlobalLockTm, "Relaxed"),
        ("violate", skipped_write(), &SkipWriteTm, "SC"),
        ("violate-relaxed", skipped_write(), &SkipWriteTm, "Relaxed"),
    ];
    for (name, p, algo, key) in cases {
        let e = entry(key).unwrap();
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 4] {
            let v = check_all_traces_shared(
                &p,
                algo,
                e,
                CheckKind::Opacity,
                MAX_STEPS,
                &ParallelConfig::with_threads(threads),
                &memo,
            );
            outcomes.push((
                threads,
                v.ok,
                v.violation.as_ref().map(|t| t.cache_key()),
                v.stats.dpor_classes,
            ));
        }
        for w in outcomes.windows(2) {
            assert_eq!(
                (w[0].1, w[0].2),
                (w[1].1, w[1].2),
                "{name}: verdict/witness changed between {} and {} workers",
                w[0].0,
                w[1].0
            );
        }
        // A passing sweep explores everything, so the class count must
        // also be stable across widths.
        if outcomes[0].1 {
            assert!(
                outcomes.windows(2).all(|w| w[0].3 == w[1].3),
                "{name}: class count varies with worker count: {outcomes:?}"
            );
        }
    }
}
