//! Integration: the §1 privatization idiom, end to end — simulator,
//! formal checker, and real STMs (including the strong STM's *private*
//! record state).

use jungle::core::model::{Relaxed, Sc};
use jungle::mc::theorems::{
    privatization_program, privatization_safe_global_lock, privatization_safe_strong,
    privatization_unsafe_lazy_tl2,
};
use jungle::mc::verify::CheckKind;
use jungle::mc::{ModelEntry, SweepSeeds};
use jungle::stm::api::{atomically, Ctx};
use jungle::stm::{StrongStm, TmAlgo};
use jungle_core::ids::ProcId;
use std::sync::Arc;

#[test]
fn lazy_tl2_privatization_violation_found() {
    let r = privatization_unsafe_lazy_tl2().run(SweepSeeds::new(0, 4_000), 20_000);
    assert!(r.passed, "{}", r.detail);
}

#[test]
fn lazy_tl2_privatization_violates_even_sgla() {
    // The delayed write-back history is not even SGLA: the violation is
    // not about transactional isolation at all.
    use jungle::mc::verify::{find_violation, SweepSeeds};
    use jungle::mc::LazyTl2Tm;
    let found = find_violation(
        &privatization_program(),
        &LazyTl2Tm,
        &ModelEntry::checker_game(&Relaxed),
        CheckKind::Sgla,
        SweepSeeds::new(0, 4_000),
        20_000,
    );
    assert!(found.is_some(), "expected an SGLA violation for lazy TL2");
}

#[test]
fn strong_and_global_lock_privatization_safe() {
    let r = privatization_safe_strong().run(SweepSeeds::new(0, 400), 30_000);
    assert!(r.passed, "{}", r.detail);
    let r = privatization_safe_global_lock().run(SweepSeeds::new(0, 400), 30_000);
    assert!(r.passed, "{}", r.detail);
}

#[test]
fn real_strong_stm_private_state_idiom() {
    // The §6.1 private state on the real STM: privatize → plain access
    // → publish, with a concurrent transactional mutator that must
    // never slip a write into the private window.
    let tm = Arc::new(StrongStm::new(2));
    const DATA: usize = 0;
    const ROUNDS: u64 = 200;

    let mutator = {
        let tm = tm.clone();
        std::thread::spawn(move || {
            let mut cx = Ctx::new(ProcId(1), None);
            for i in 0..2_000 {
                atomically(tm.as_ref(), &mut cx, |tx| tx.write(DATA, 1_000 + i));
            }
        })
    };

    let mut cx = Ctx::new(ProcId(0), None);
    for r in 0..ROUNDS {
        tm.privatize(&mut cx, DATA);
        // While private, our plain writes are unclobberable.
        tm.private_write(&cx, DATA, r);
        assert_eq!(tm.private_read(&cx, DATA), r, "private datum clobbered");
        tm.private_write(&cx, DATA, r + 1);
        assert_eq!(tm.private_read(&cx, DATA), r + 1);
        tm.publish(&mut cx, DATA);
    }
    mutator.join().unwrap();
    // After everything, the datum holds either the last private value
    // or a mutator value — but it is always a value someone wrote.
    let v = tm.nt_read(&mut cx, DATA);
    assert!(
        v == ROUNDS || (1_000..3_000).contains(&v),
        "out-of-thin-air value {v}"
    );
}

#[test]
fn strong_stm_guarded_privatization_program() {
    // The guarded-transaction program from the mc experiments, run on
    // the real strong STM: the privatizer's plain write always survives.
    use jungle::litmus::runner::sample_outcomes;
    let program = privatization_program();
    let outcomes = sample_outcomes(&program, || StrongStm::new(2), 150);
    for (out, n) in &outcomes {
        // Thread 1 (privatizer) reads: [flag inside txn, final nt read].
        let final_read = *out[1].last().unwrap();
        assert_eq!(
            final_read, 100,
            "privatized datum clobbered in {n} runs: outcome {out:?}"
        );
    }
}

#[test]
fn sc_opacity_distinguishes_strong_from_global_lock_here() {
    // Sanity tying the experiments together: on the privatization
    // program the strong TM is SC-opaque while the Figure 6 TM is only
    // SGLA (its uninstrumented accesses admit SC-opacity violations in
    // principle — Theorem 1 — though this particular program may not
    // exhibit one; we only assert the strong TM's positive claim).
    let r = privatization_safe_strong().run(SweepSeeds::new(0, 200), 30_000);
    assert!(r.passed, "{}", r.detail);
    let _ = Sc; // (model referenced for documentation purposes)
}
