//! Cross-validation of the unified model registry: the two facades of
//! each entry — the machine's [`ExecSemantics`] and the checker's
//! `MemoryModel` — must tell the same story.
//!
//! Three standing properties:
//!
//! 1. **Checker ↔ oracle agreement on machine histories.** For every
//!    registry entry, exhaustively explore small raw two-process
//!    programs under the entry's execution semantics and decide each
//!    produced canonical history with the optimized checker *and* a
//!    brute-force permutation oracle of the §3.3 definition. The
//!    verdicts must agree exactly — on precisely the history shapes the
//!    relaxed machines generate (stale reads, drain reorderings).
//! 2. **Matched-model soundness.** Every trace the machine produces
//!    under `ExecSemantics(X)` has a corresponding history accepted
//!    under `MemoryModel(X)`: the execution discipline is an
//!    under-approximation of the model it is paired with.
//! 3. **Thread-count determinism.** The matched-model sweeps return the
//!    same verdict at 1, 2, and 4 checker threads.

use jungle::core::history::{History, OpInstance};
use jungle::core::ids::{ProcId, Val, Var, X, Y};
use jungle::core::legal::every_op_legal;
use jungle::core::model::MemoryModel;
use jungle::core::op::{Command, Op};
use jungle::core::opacity::check_opacity;
use jungle::core::registry::registry;
use jungle::core::spec::SpecRegistry;
use jungle::mc::program::{Program, Stmt, ThreadProg, TxOp};
use jungle::mc::verify::{
    check_all_traces, check_all_traces_par, check_random, check_random_par, trace_satisfies,
    CheckKind,
};
use jungle::mc::{GlobalLockTm, SweepSeeds};
use jungle::memsim::process::{FnProcess, PInstr, Process, Step};
use jungle::memsim::{explore, Machine};
use jungle_core::par::ParallelConfig;
use proptest::prelude::*;
use std::collections::HashSet;

fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

/// A process executing a fixed list of accesses, each as its own
/// non-transactional operation (`(is_read, addr, val)` triples).
fn straightline(ops: Vec<(bool, u32, Val)>) -> Box<dyn Process> {
    let mut queue = ops.into_iter();
    let mut pending: Option<(bool, u32, Val)> = None;
    let mut phase = 0u8;
    Box::new(FnProcess::new(move |last| match phase {
        0 => match queue.next() {
            None => Step::Done,
            Some(op) => {
                pending = Some(op);
                phase = 1;
                let (is_read, a, v) = op;
                Step::Inv(if is_read {
                    rd_op(Var(a), 0)
                } else {
                    wr_op(Var(a), v)
                })
            }
        },
        1 => {
            let (is_read, a, v) = pending.unwrap();
            phase = 2;
            Step::Instr(if is_read {
                PInstr::Load(a)
            } else {
                PInstr::Store(a, v)
            })
        }
        2 => {
            let (is_read, a, v) = pending.unwrap();
            phase = 0;
            Step::Resp(if is_read {
                rd_op(Var(a), last.unwrap())
            } else {
                wr_op(Var(a), v)
            })
        }
        _ => unreachable!(),
    }))
}

/// Does permutation `perm` of `th`'s operations satisfy all conditions
/// of parametrized opacity (one shared witness)? Mirrors the §3.3
/// definition directly, as in `tests/oracle.rs`.
fn perm_is_witness(th: &History, perm: &[usize], model: &dyn MemoryModel) -> bool {
    let pos_of = {
        let mut v = vec![0usize; th.len()];
        for (pos, &i) in perm.iter().enumerate() {
            v[i] = pos;
        }
        v
    };
    for i in 0..th.len() {
        for j in 0..th.len() {
            if i == j {
                continue;
            }
            if th.precedes_rt(i, j) && pos_of[i] > pos_of[j] {
                return false;
            }
            let ops = th.ops();
            if i < j
                && !th.is_transactional(i)
                && !th.is_transactional(j)
                && ops[i].op.command().is_some()
                && ops[j].op.command().is_some()
                && ops[i].proc == ops[j].proc
                && model.required(th, i, j)
                && pos_of[i] > pos_of[j]
            {
                return false;
            }
        }
    }
    let ops: Vec<OpInstance> = perm.iter().map(|&i| th.ops()[i].clone()).collect();
    let Ok(s) = History::new(ops) else {
        return false;
    };
    if !s.is_sequential() {
        return false;
    }
    every_op_legal(&s, &SpecRegistry::registers())
}

/// Brute-force decision of parametrized opacity: try every permutation
/// (Heap's algorithm).
fn oracle_opaque(h: &History, model: &dyn MemoryModel) -> bool {
    let th = model.transform(h);
    let n = th.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut c = vec![0usize; n];
    if perm_is_witness(&th, &perm, model) {
        return true;
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if perm_is_witness(&th, &perm, model) {
                return true;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: on every history a registry entry's machine can
    /// produce from a small raw program, the optimized checker under the
    /// entry's model agrees exactly with the permutation oracle.
    #[test]
    fn machine_histories_agree_with_oracle_under_matched_model(
        ops0 in prop::collection::vec((any::<bool>(), 0..2u32, 1..4u64), 1..3),
        ops1 in prop::collection::vec((any::<bool>(), 0..2u32, 1..4u64), 1..3),
        entry_idx in 0..8usize,
    ) {
        let entry = &registry()[entry_idx];
        let mut seen: HashSet<u64> = HashSet::new();
        let mut mismatch: Option<String> = None;
        explore(
            || {
                Machine::new(
                    entry.exec,
                    vec![straightline(ops0.clone()), straightline(ops1.clone())],
                )
            },
            4_000,
            |r| {
                if !r.completed || mismatch.is_some() {
                    return mismatch.is_some();
                }
                let Ok(h) = r.trace.canonical_history() else {
                    return false;
                };
                if !seen.insert(h.cache_key()) {
                    return false; // structurally identical history already judged
                }
                let fast = check_opacity(&h, entry.model).is_opaque();
                let slow = oracle_opaque(&h, entry.model);
                if fast != slow {
                    mismatch = Some(format!(
                        "checker={fast} oracle={slow} under {} on {:?}",
                        entry.key, h
                    ));
                    return true;
                }
                false
            },
        );
        prop_assert!(mismatch.is_none(), "{}", mismatch.unwrap());
    }
}

/// Property 2: the execution semantics is a sound under-approximation
/// of its paired model — every trace of the message-passing and
/// store-buffering shapes, exhaustively explored under `ExecSemantics(X)`
/// (stale reads and drain reorderings included), has a corresponding
/// history accepted under `MemoryModel(X)`.
#[test]
fn matched_machine_traces_satisfy_matched_model() {
    // MP: p0 stores x then y; p1 reads y then x.
    // SB: both store then read the other's variable.
    let shapes: [[Vec<(bool, u32, Val)>; 2]; 2] = [
        [
            vec![(false, 0, 1), (false, 1, 1)],
            vec![(true, 1, 0), (true, 0, 0)],
        ],
        [
            vec![(false, 0, 1), (true, 1, 0)],
            vec![(false, 1, 1), (true, 0, 0)],
        ],
    ];
    for entry in registry() {
        for shape in &shapes {
            let mut bad: Option<String> = None;
            let mut seen: HashSet<u64> = HashSet::new();
            let out = explore(
                || {
                    Machine::new(
                        entry.exec,
                        vec![
                            straightline(shape[0].clone()),
                            straightline(shape[1].clone()),
                        ],
                    )
                },
                4_000,
                |r| {
                    if !r.completed || !seen.insert(r.trace.cache_key()) {
                        return false;
                    }
                    if !trace_satisfies(&r.trace, entry.model, CheckKind::Opacity) {
                        bad = Some(format!("{:?}", r.trace));
                        return true;
                    }
                    false
                },
            );
            assert!(
                bad.is_none(),
                "machine under {} produced a trace its own model rejects: {}",
                entry.key,
                bad.unwrap()
            );
            assert!(out.runs > 0);
        }
    }
}

/// Property 3 (exhaustive): the matched-model exhaustive sweep of the
/// Figure 1 program returns identical verdicts at 1, 2, and 4 checker
/// threads, for every registry entry — and the global-lock TM passes
/// every one of them even on the relaxed machines.
#[test]
fn matched_zoo_exhaustive_thread_counts_agree() {
    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)])]),
        ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
    ]);
    for entry in registry() {
        let serial = check_all_traces(&program, &GlobalLockTm, entry, CheckKind::Opacity, 8_000);
        assert!(
            serial.ok,
            "global-lock TM not {}-opaque on its matched machine: {:?}",
            entry.key, serial.violation
        );
        for threads in [2, 4] {
            let par = check_all_traces_par(
                &program,
                &GlobalLockTm,
                entry,
                CheckKind::Opacity,
                8_000,
                &ParallelConfig::with_threads(threads),
            );
            assert_eq!(par.ok, serial.ok, "{} at {threads} threads", entry.key);
        }
    }
}

/// Property 3 (randomized): the seed-striped parallel random sweep
/// agrees with the serial one at 1, 2, and 4 workers on the full Fig. 1
/// program across every registry entry.
#[test]
fn matched_zoo_random_thread_counts_agree() {
    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)])]),
        ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
    ]);
    let seeds = SweepSeeds::new(0, 24);
    for entry in registry() {
        let serial = check_random(
            &program,
            &GlobalLockTm,
            entry,
            CheckKind::Opacity,
            seeds,
            8_000,
        );
        assert!(serial.ok, "{}: {:?}", entry.key, serial.violation);
        for threads in [2, 4] {
            let par = check_random_par(
                &program,
                &GlobalLockTm,
                entry,
                CheckKind::Opacity,
                seeds,
                8_000,
                &ParallelConfig::with_threads(threads),
            );
            assert_eq!(par.ok, serial.ok, "{} at {threads} workers", entry.key);
        }
    }
}

/// The relaxed entries genuinely exercise their windows on these
/// sweeps: at least one registry entry's machine reports stale loads.
#[test]
fn relaxed_entries_explore_stale_reads() {
    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1)])]),
        ThreadProg(vec![Stmt::NtRead(X)]),
    ]);
    for key in ["RMO", "Alpha", "Relaxed"] {
        let entry = jungle::core::registry::entry(key).unwrap();
        let v = check_all_traces(&program, &GlobalLockTm, entry, CheckKind::Opacity, 6_000);
        assert!(v.ok, "{key}: {:?}", v.violation);
        assert!(
            v.stats.machine.stale_loads > 0,
            "{key}: no stale loads explored ({:?})",
            v.stats.machine
        );
        assert_eq!(v.stats.model, key);
        assert_eq!(v.stats.machine.model, key);
    }
    let _ = ProcId(0); // silence unused-import lints in cfg permutations
}
