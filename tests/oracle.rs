//! Cross-validation of the optimized parametrized-opacity checker
//! against a brute-force oracle.
//!
//! The oracle enumerates **every permutation** of the (transformed)
//! history's operations and tests the definition of §3.3 directly:
//! sequentiality, respect for `≺h` and the model's required view pairs,
//! and per-prefix legality via the replay-based reference
//! implementation. No unit grouping, no serialization-order factoring,
//! no incremental pruning — maximally dumb, maximally trustworthy.
//!
//! For the bundled (viewer-uniform) models, a single witness serves all
//! processes, so oracle and checker must agree exactly.

use jungle::core::builder::HistoryBuilder;
use jungle::core::history::{History, OpInstance};
use jungle::core::ids::{ProcId, Val, Var};
use jungle::core::legal::every_op_legal;
use jungle::core::model::{all_models, MemoryModel};
use jungle::core::opacity::check_opacity;
use jungle::core::spec::SpecRegistry;
use proptest::prelude::*;

/// Does permutation `perm` of `th`'s operations satisfy all conditions
/// of parametrized opacity (as one shared witness)?
fn perm_is_witness(th: &History, perm: &[usize], model: &dyn MemoryModel) -> bool {
    // Respect ≺h (generating relation suffices) and the required view
    // pairs.
    let pos_of = {
        let mut v = vec![0usize; th.len()];
        for (pos, &i) in perm.iter().enumerate() {
            v[i] = pos;
        }
        v
    };
    for i in 0..th.len() {
        for j in 0..th.len() {
            if i == j {
                continue;
            }
            if th.precedes_rt(i, j) && pos_of[i] > pos_of[j] {
                return false;
            }
            let ops = th.ops();
            if i < j
                && !th.is_transactional(i)
                && !th.is_transactional(j)
                && ops[i].op.command().is_some()
                && ops[j].op.command().is_some()
                && ops[i].proc == ops[j].proc
                && model.required(th, i, j)
                && pos_of[i] > pos_of[j]
            {
                return false;
            }
        }
    }
    // Build the permuted history; it must be well-formed, sequential,
    // and have every operation legal.
    let ops: Vec<OpInstance> = perm.iter().map(|&i| th.ops()[i].clone()).collect();
    let Ok(s) = History::new(ops) else {
        return false;
    };
    if !s.is_sequential() {
        return false;
    }
    every_op_legal(&s, &SpecRegistry::registers())
}

/// Brute-force decision of parametrized opacity.
fn oracle_opaque(h: &History, model: &dyn MemoryModel) -> bool {
    let th = model.transform(h);
    let n = th.len();
    let mut perm: Vec<usize> = (0..n).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; n];
    if perm_is_witness(&th, &perm, model) {
        return true;
    }
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if perm_is_witness(&th, &perm, model) {
                return true;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

#[derive(Clone, Debug)]
enum Ev {
    Read(u8, u8, u8),
    Write(u8, u8, u8),
    Start(u8),
    Commit(u8),
    Abort(u8),
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0..2u8, 0..2u8, 0..3u8).prop_map(|(p, v, x)| Ev::Read(p, v, x)),
        (0..2u8, 0..2u8, 1..3u8).prop_map(|(p, v, x)| Ev::Write(p, v, x)),
        (0..2u8).prop_map(Ev::Start),
        (0..2u8).prop_map(Ev::Commit),
        (0..2u8).prop_map(Ev::Abort),
    ]
}

fn build_history(evs: &[Ev]) -> History {
    let mut b = HistoryBuilder::new();
    let mut open = [false; 2];
    for ev in evs {
        match *ev {
            Ev::Read(p, v, x) => {
                b.read(ProcId(p.into()), Var(v.into()), Val::from(x));
            }
            Ev::Write(p, v, x) => {
                b.write(ProcId(p.into()), Var(v.into()), Val::from(x));
            }
            Ev::Start(p) if !open[p as usize] => {
                open[p as usize] = true;
                b.start(ProcId(p.into()));
            }
            Ev::Commit(p) if open[p as usize] => {
                open[p as usize] = false;
                b.commit(ProcId(p.into()));
            }
            Ev::Abort(p) if open[p as usize] => {
                open[p as usize] = false;
                b.abort(ProcId(p.into()));
            }
            _ => {}
        }
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The optimized checker agrees with the brute-force oracle on
    /// random small histories, for every bundled memory model.
    #[test]
    fn checker_matches_bruteforce_oracle(
        evs in prop::collection::vec(ev_strategy(), 0..6)
    ) {
        let h = build_history(&evs);
        prop_assume!(h.len() <= 6); // 6! = 720 permutations per model
        for m in all_models() {
            let fast = check_opacity(&h, m).is_opaque();
            let slow = oracle_opaque(&h, m);
            prop_assert_eq!(
                fast,
                slow,
                "checker={} oracle={} under {} for {:?}",
                fast,
                slow,
                m.name(),
                h
            );
        }
    }
}

#[test]
fn oracle_agrees_on_fig1() {
    use jungle::core::model::{Rmo, Sc};
    let mk = |ry: u64, rx: u64| {
        let mut b = HistoryBuilder::new();
        b.start(ProcId(1));
        b.write(ProcId(1), Var(0), 1);
        b.write(ProcId(1), Var(1), 1);
        b.commit(ProcId(1));
        b.read(ProcId(2), Var(1), ry);
        b.read(ProcId(2), Var(0), rx);
        b.build().unwrap()
    };
    let h = mk(1, 0);
    assert!(!oracle_opaque(&h, &Sc));
    assert!(oracle_opaque(&h, &Rmo));
    assert_eq!(oracle_opaque(&h, &Sc), check_opacity(&h, &Sc).is_opaque());
    assert_eq!(oracle_opaque(&h, &Rmo), check_opacity(&h, &Rmo).is_opaque());
}
