//! Property: on single-threaded programs, every STM implements the same
//! sequential semantics — a simple reference interpreter. (Concurrency
//! differentiates them; sequential behaviour must not.)

use jungle::mc::program::{Stmt, ThreadProg, TxOp};
use jungle::stm::api::{Ctx, TmAlgo};
use jungle::stm::{GlobalLockStm, StrongStm, Tl2Stm, VersionedStm, WriteTxnStm};
use jungle_core::ids::{ProcId, Val, Var};
use proptest::prelude::*;
use std::collections::HashMap;

const VARS: u32 = 4;

#[derive(Clone, Debug)]
enum Act {
    NtRead(u8),
    NtWrite(u8, u8),
    Txn(Vec<(bool, u8, u8)>, bool), // ops (is_read, var, val), abort?
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0..VARS as u8).prop_map(Act::NtRead),
        (0..VARS as u8, 1..50u8).prop_map(|(v, x)| Act::NtWrite(v, x)),
        (
            prop::collection::vec((any::<bool>(), 0..VARS as u8, 1..50u8), 1..4),
            prop::bool::weighted(0.25)
        )
            .prop_map(|(ops, abort)| Act::Txn(ops, abort)),
    ]
}

/// Reference semantics: a flat map, transactions are just grouped ops
/// (aborting transactions discard their writes), reads are recorded.
fn reference(acts: &[Act]) -> Vec<Val> {
    let mut mem: HashMap<u8, Val> = HashMap::new();
    let mut reads = Vec::new();
    for a in acts {
        match a {
            Act::NtRead(v) => reads.push(mem.get(v).copied().unwrap_or(0)),
            Act::NtWrite(v, x) => {
                mem.insert(*v, Val::from(*x));
            }
            Act::Txn(ops, abort) => {
                let mut local = mem.clone();
                let mut txn_reads = Vec::new();
                for (is_read, v, x) in ops {
                    if *is_read {
                        txn_reads.push(local.get(v).copied().unwrap_or(0));
                    } else {
                        local.insert(*v, Val::from(*x));
                    }
                }
                if !*abort {
                    mem = local;
                    reads.extend(txn_reads);
                }
            }
        }
    }
    reads
}

/// Convert to the mc DSL and run on a real STM, collecting committed
/// reads (the runner's convention).
fn run_on(tm: &dyn TmAlgo, acts: &[Act]) -> Vec<Val> {
    let stmts: Vec<Stmt> = acts
        .iter()
        .map(|a| match a {
            Act::NtRead(v) => Stmt::NtRead(Var(u32::from(*v))),
            Act::NtWrite(v, x) => Stmt::NtWrite(Var(u32::from(*v)), Val::from(*x)),
            Act::Txn(ops, abort) => {
                let ops = ops
                    .iter()
                    .map(|(is_read, v, x)| {
                        if *is_read {
                            TxOp::Read(Var(u32::from(*v)))
                        } else {
                            TxOp::Write(Var(u32::from(*v)), Val::from(*x))
                        }
                    })
                    .collect();
                if *abort {
                    Stmt::aborting_txn(ops)
                } else {
                    Stmt::txn(ops)
                }
            }
        })
        .collect();
    let prog = ThreadProg(stmts);

    // Single-threaded direct execution (no scheduler involved).
    let mut cx = Ctx::new(ProcId(0), None);
    let mut reads = Vec::new();
    for stmt in &prog.0 {
        match stmt {
            Stmt::NtRead(v) => reads.push(tm.nt_read(&mut cx, v.0 as usize)),
            Stmt::NtWrite(v, val) => tm.nt_write(&mut cx, v.0 as usize, *val),
            Stmt::Txn { ops, abort } => {
                tm.txn_start(&mut cx);
                let mut txn_reads = Vec::new();
                for op in ops {
                    match op {
                        TxOp::Read(v) => {
                            txn_reads.push(tm.txn_read(&mut cx, v.0 as usize).unwrap())
                        }
                        TxOp::Write(v, val) => tm.txn_write(&mut cx, v.0 as usize, *val).unwrap(),
                    }
                }
                if *abort {
                    tm.txn_abort(&mut cx);
                } else {
                    tm.txn_commit(&mut cx).unwrap();
                    reads.extend(txn_reads);
                }
            }
            Stmt::TxnGuard { .. } => unreachable!(),
        }
    }
    reads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_stms_agree_with_reference_single_threaded(
        acts in prop::collection::vec(act_strategy(), 0..12)
    ) {
        let expected = reference(&acts);
        let stms: Vec<Box<dyn TmAlgo>> = vec![
            Box::new(GlobalLockStm::new(VARS as usize)),
            Box::new(WriteTxnStm::new(VARS as usize)),
            Box::new(VersionedStm::new(VARS as usize)),
            Box::new(StrongStm::new(VARS as usize)),
            Box::new(StrongStm::new_optimized(VARS as usize)),
            Box::new(Tl2Stm::new(VARS as usize)),
        ];
        for tm in &stms {
            let got = run_on(tm.as_ref(), &acts);
            prop_assert_eq!(
                &got,
                &expected,
                "{} diverged from reference on {:?}",
                tm.name(),
                acts
            );
        }
    }
}
