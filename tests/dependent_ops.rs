//! Integration: control/data-dependent operations — the distinctions
//! that separate RMO and Java from Alpha in §3.2 and drive the
//! discussion after Theorem 5 ("if we use special synchronization for
//! data-dependent reads, we can use the result of Theorem 5 for a vast
//! class of memory models").

use jungle::core::builder::HistoryBuilder;
use jungle::core::history::History;
use jungle::core::ids::{ProcId, Val, X, Y};
use jungle::core::model::{Alpha, Relaxed, Rmo, Sc};
use jungle::core::op::DepKind;
use jungle::core::opacity::check_opacity;

fn p(n: u32) -> ProcId {
    ProcId(n)
}

/// The Figure 1 shape, but thread 2's second read is *data-dependent*
/// on its first (e.g. a pointer chase: `r1 := y; r2 := *r1`).
fn fig1_dependent(kind: DepKind, ry: Val, rx: Val) -> History {
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    let r = b.read(p(2), Y, ry);
    b.dep_read(p(2), X, rx, kind, vec![r]);
    b.build().unwrap()
}

#[test]
fn rmo_orders_data_dependent_reads() {
    // Under RMO the anomaly is allowed for independent reads (the
    // headline of Figure 1) but *forbidden* when the second read is
    // data-dependent — M_rmo ∈ M^d_rr.
    let h = fig1_dependent(DepKind::Data, 1, 0);
    assert!(!check_opacity(&h, &Rmo).is_opaque());
    // Control dependencies do not order reads under RMO.
    let h = fig1_dependent(DepKind::Control, 1, 0);
    assert!(check_opacity(&h, &Rmo).is_opaque());
}

#[test]
fn alpha_reorders_even_data_dependent_reads() {
    // Alpha's famous relaxation: dependent loads may reorder.
    let h = fig1_dependent(DepKind::Data, 1, 0);
    assert!(check_opacity(&h, &Alpha).is_opaque());
}

#[test]
fn sc_forbids_all_variants() {
    for kind in [DepKind::Data, DepKind::Control] {
        let h = fig1_dependent(kind, 1, 0);
        assert!(!check_opacity(&h, &Sc).is_opaque());
    }
}

/// Message passing with a dependent *write*: `r := x; if r { y := r }`.
fn dependent_write_history(kind: DepKind, rx: Val, observed_y: Val) -> History {
    let mut b = HistoryBuilder::new();
    // p1 publishes x non-transactionally; p2 reads x and writes y
    // dependently; p3 reads y then x... keep it two-process:
    let r = b.read(p(1), X, rx);
    b.dep_write(p(1), Y, rx, kind, vec![r]);
    b.write(p(2), X, 1);
    b.read(p(2), Y, observed_y);
    b.build().unwrap()
}

#[test]
fn dependent_writes_ordered_on_rmo_and_alpha() {
    // p1: r := x (reads 1, so after p2's write); y := r dependently.
    // p2: x := 1; then reads y = 1.
    // Fine everywhere — the dependent write follows its read.
    for m in [&Rmo as &dyn jungle::core::model::MemoryModel, &Alpha, &Sc] {
        let h = dependent_write_history(DepKind::Data, 1, 1);
        assert!(check_opacity(&h, m).is_opaque(), "under {}", m.name());
    }

    // Out-of-thin-air-flavoured shape: p1 reads x=1 and dependently
    // writes y := 1, while p2 reads y=1 *before* writing x.
    // p2's ops: write x, read y — w→r may reorder on RMO/Alpha, so the
    // question is whether p1's read may reorder after its dependent
    // write. It may not (both models order read → dependent write), so
    // the cycle read-x→write-y→read-y→write-x has… no cycle actually:
    // p2's read of y=1 only needs to follow p1's write of y. Allowed.
    let h = dependent_write_history(DepKind::Data, 1, 1);
    assert!(check_opacity(&h, &Relaxed).is_opaque());
}

#[test]
fn load_buffering_with_dependencies_forbidden() {
    // Classic LB+deps: p1: r1 := x (=1); y := r1 (data-dep).
    //                  p2: r2 := y (=1); x := r2 (data-dep).
    // Each value is justified only by the other thread's dependent
    // write — out-of-thin-air. Forbidden under RMO and Alpha (both
    // order read → dependent write), and under every bundled model.
    let mut b = HistoryBuilder::new();
    let r1 = b.read(p(1), X, 1);
    b.dep_write(p(1), Y, 1, DepKind::Data, vec![r1]);
    let r2 = b.read(p(2), Y, 1);
    b.dep_write(p(2), X, 1, DepKind::Data, vec![r2]);
    let h = b.build().unwrap();
    for m in [&Sc as &dyn jungle::core::model::MemoryModel, &Rmo, &Alpha] {
        assert!(
            !check_opacity(&h, m).is_opaque(),
            "LB+deps allowed under {}",
            m.name()
        );
    }
    // With *independent* writes the cycle breaks on a fully relaxed
    // model: each write may float above its read.
    let mut b = HistoryBuilder::new();
    b.read(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.read(p(2), Y, 1);
    b.write(p(2), X, 1);
    let h = b.build().unwrap();
    assert!(check_opacity(&h, &Relaxed).is_opaque());
    assert!(!check_opacity(&h, &Sc).is_opaque());
}

#[test]
fn thm5_discussion_dependent_reads_as_volatile() {
    // Footnote 4 of the paper: on models in M^d_rr (RMO, Java), treat a
    // data-dependent read as a single-operation transaction ("volatile
    // access") and Theorem 5's construction carries over. At the
    // history level: wrapping the dependent read in a transaction makes
    // the Figure 1 anomaly verdict flip from forbidden to forbidden —
    // i.e. consistent — while the *independent*-read version stays
    // allowed, which is what lets the TM leave plain reads alone.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), Y, 1);
    // The dependent read becomes a one-op transaction:
    b.start(p(2));
    b.read(p(2), X, 0);
    b.commit(p(2));
    let h = b.build().unwrap();
    // Now p2's transaction is real-time after p1's (which committed
    // before it started) — reading x=0 is forbidden under ANY model:
    // transactional semantics are model-independent.
    assert!(!check_opacity(&h, &Rmo).is_opaque());
    assert!(!check_opacity(&h, &Alpha).is_opaque());
    assert!(!check_opacity(&h, &Relaxed).is_opaque());
}
