//! Property-based tests on the simulator substrate: hardware-model
//! guarantees that every schedule must respect.

use jungle::core::ids::{ProcId, Val, Var};
use jungle::core::op::{Command, Op};
use jungle::isa::instr::Instr;
use jungle::memsim::process::{FnProcess, PInstr, Process, Step};
use jungle::memsim::{explore, HwModel, Machine, RandomScheduler};

/// Every executable discipline in the registry zoo (the old Sc/Tso/Pso
/// trio plus the no-forwarding and windowed-load variants).
const ALL_EXEC: [HwModel; 8] = [
    HwModel::SC,
    HwModel::TSO,
    HwModel::TSO_FWD,
    HwModel::PSO,
    HwModel::PSO_FWD,
    HwModel::RMO,
    HwModel::ALPHA,
    HwModel::RELAXED,
];
use proptest::prelude::*;

fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

/// A process executing a fixed list of accesses on one address space,
/// each as its own operation.
fn straightline(ops: Vec<(bool, u32, Val)>) -> Box<dyn Process> {
    let mut queue = ops.into_iter();
    let mut pending: Option<(bool, u32, Val)> = None;
    let mut phase = 0u8;
    Box::new(FnProcess::new(move |last| match phase {
        0 => match queue.next() {
            None => Step::Done,
            Some(op) => {
                pending = Some(op);
                phase = 1;
                let (is_read, a, v) = op;
                Step::Inv(if is_read {
                    rd_op(Var(a), 0)
                } else {
                    wr_op(Var(a), v)
                })
            }
        },
        1 => {
            let (is_read, a, v) = pending.unwrap();
            phase = 2;
            Step::Instr(if is_read {
                PInstr::Load(a)
            } else {
                PInstr::Store(a, v)
            })
        }
        2 => {
            let (is_read, a, v) = pending.unwrap();
            phase = 0;
            Step::Resp(if is_read {
                rd_op(Var(a), last.unwrap())
            } else {
                wr_op(Var(a), v)
            })
        }
        _ => unreachable!(),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-threaded programs are sequentially faithful on every
    /// hardware model: each read returns the latest program-order write
    /// to the same address (0 initially).
    #[test]
    fn single_thread_reads_latest_write(
        ops in prop::collection::vec((any::<bool>(), 0..3u32, 1..9u64), 1..12),
        hw in (0..ALL_EXEC.len()).prop_map(|i| ALL_EXEC[i]),
        seed in 0..50u64,
    ) {
        let m = Machine::new(hw, vec![straightline(ops.clone())]);
        let mut sched = RandomScheduler::new(seed);
        let r = m.run(&mut sched, 10_000);
        prop_assert!(r.completed);
        // Replay expectations.
        let mut mem = std::collections::HashMap::new();
        let mut idx = 0;
        for instr in r.trace.instrs() {
            match &instr.instr {
                Instr::Load { addr, val } => {
                    let expect = mem.get(addr).copied().unwrap_or(0);
                    prop_assert_eq!(*val, expect, "op {} read stale value", idx);
                    idx += 1;
                }
                Instr::Store { addr, val } => {
                    mem.insert(*addr, *val);
                    idx += 1;
                }
                _ => {}
            }
        }
    }

}

/// Coherence: two writes to the SAME address by one process are never
/// observed out of order by another process, on any hardware model
/// (TSO and PSO both keep per-address FIFO order). Exhaustive over all
/// schedules — a plain test, since the input space is just the three
/// hardware models.
#[test]
fn same_address_writes_stay_ordered() {
    for hw in ALL_EXEC {
        let factory = move || {
            Machine::new(
                hw,
                vec![
                    straightline(vec![(false, 0, 1), (false, 0, 2)]),
                    straightline(vec![(true, 0, 0), (true, 0, 0)]),
                ],
            )
        };
        let mut violated = false;
        explore(factory, 128, |r| {
            let reads: Vec<Val> = r
                .trace
                .instrs()
                .iter()
                .filter(|i| i.proc == ProcId(1))
                .filter_map(|i| match i.instr {
                    Instr::Load { val, .. } => Some(val),
                    _ => None,
                })
                .collect();
            if reads.len() == 2 && reads[0] == 2 && reads[1] == 1 {
                violated = true;
                return true;
            }
            false
        });
        assert!(!violated, "coherence violated on {hw:?}");
    }
}

#[test]
fn buffers_fully_drain_at_termination() {
    // After a completed run, every buffered store must be globally
    // visible in the final memory snapshot.
    for hw in ALL_EXEC {
        let mut m = Machine::new(hw, vec![straightline(vec![(false, 0, 7), (false, 1, 8)])]);
        m.poke(2, 99);
        let mut sched = RandomScheduler::new(3);
        let r = m.run(&mut sched, 1_000);
        assert!(r.completed);
        assert_eq!(r.final_mem, vec![(0, 7), (1, 8), (2, 99)], "on {hw:?}");
    }
}
