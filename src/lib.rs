//! # jungle — *Transactions in the Jungle*, reproduced in Rust
//!
//! Umbrella crate over the workspace reproducing Guerraoui, Henzinger,
//! Kapalka & Singh, *"Transactions in the Jungle"* (SPAA 2010): the
//! formal theory of **parametrized opacity** — transactional-memory
//! correctness parametrized by the memory model governing
//! non-transactional accesses — together with every system needed to
//! exercise it end to end.
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`] | `jungle-core` | histories, memory models (SC/TSO/PSO/RMO/Alpha/Junk-SC/…), the `Mrr`/`Mrw`/`Mwr`/`Mww` classification, and exact checkers for parametrized opacity (§3.3) and SGLA (§6.2) |
//! | [`isa`] | `jungle-isa` | `load`/`store`/`cas` instructions, traces, trace↔history correspondence, instrumentation taxonomy (§4) |
//! | [`memsim`] | `jungle-memsim` | the simulated multiprocessor (SC/TSO/PSO hardware) with directed, random, bursty and exhaustive schedulers |
//! | [`mc`] | `jungle-mc` | the paper's TM algorithms as interpreters + every lemma/theorem as a checkable experiment (§5) |
//! | [`replay`] | `jungle-replay` | deterministic schedule record/replay (portable `ScheduleLog`, divergence detection) and delta-debugging counterexample shrinking |
//! | [`stm`] | `jungle-stm` | five executable STMs over real atomics with typed `TVar`s and online trace recording |
//! | [`litmus`] | `jungle-litmus` | the figures as litmus tests, workload generators, real-STM program runner |
//!
//! ## Entry points
//!
//! * Check a history:
//!   [`core::opacity::check_opacity`](jungle_core::opacity::check_opacity) /
//!   [`core::sgla::check_sgla`](jungle_core::sgla::check_sgla).
//! * Run a theorem experiment:
//!   [`mc::theorems`](jungle_mc::theorems).
//! * Use an STM from application code:
//!   [`stm::TVarSpace`](jungle_stm::tvar::TVarSpace).
//! * Regenerate the paper: `cargo run --release -p jungle-bench --bin
//!   report`, and the examples (`quickstart`, `litmus_explorer`,
//!   `privatization`, `check_history`, `model_checker`).

#![warn(missing_docs)]

pub use jungle_core as core;
pub use jungle_isa as isa;
pub use jungle_litmus as litmus;
pub use jungle_mc as mc;
pub use jungle_memsim as memsim;
pub use jungle_replay as replay;
pub use jungle_stm as stm;
