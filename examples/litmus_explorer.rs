//! Litmus explorer: regenerates the verdicts of the paper's Figures 1
//! and 2 under every bundled memory model, as a table.
//!
//! Run with: `cargo run --release --example litmus_explorer`

use jungle::core::model::all_models;
use jungle::core::pretty::render_line;
use jungle::litmus::figures::all_litmus;

fn main() {
    let models = all_models();

    for litmus in all_litmus() {
        println!(
            "── {} ─────────────────────────────────────────",
            litmus.name
        );
        println!("   {}", litmus.question);
        println!();

        // Header.
        print!("   {:<14}", "outcome");
        for m in &models {
            print!("{:>9}", m.name());
        }
        println!();

        for outcome in &litmus.outcomes {
            print!("   {:<14}", outcome.label);
            for m in &models {
                let opaque = litmus.judge(&outcome.label, *m).unwrap();
                print!("{:>9}", if opaque { "allowed" } else { "✗" });
            }
            println!();
        }
        println!();
        if let Some(first) = litmus.outcomes.first() {
            println!(
                "   (history of '{}': {})",
                first.label,
                render_line(&first.history)
            );
        }
        println!();
    }

    println!("Legend: 'allowed' = some witness makes the history opaque");
    println!("        parametrized by the model; '✗' = forbidden.");
    println!();
    println!("Note how Figure 1's (r1=1, r2=0) flips between SC (forbidden,");
    println!("Larus et al.'s strong atomicity) and RMO (allowed, Martin et");
    println!("al.'s strong atomicity) — the ambiguity parametrized opacity");
    println!("resolves. Figure 2(c)'s isolation verdicts are model-independent.");
}
