//! Quickstart: typed transactional variables over the strong-atomicity
//! STM — concurrent bank transfers with a non-transactional auditor.
//!
//! Run with: `cargo run --release --example quickstart`

use jungle::stm::{StrongStm, TVarSpace};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ACCOUNTS: usize = 8;
const INITIAL: u64 = 1_000;
const TRANSFERS_PER_THREAD: usize = 20_000;

fn main() {
    // A space of typed transactional variables backed by the §6.1
    // strong-atomicity STM (opacity parametrized by SC: even
    // non-transactional reads are safe against running transactions).
    let space = TVarSpace::new(StrongStm::new(ACCOUNTS));
    let accounts: Vec<_> = (0..ACCOUNTS).map(|i| space.tvar::<u64>(i)).collect();

    // Fund the accounts.
    {
        let mut th = space.thread(0);
        for a in &accounts {
            th.write_now(a, INITIAL);
        }
    }

    let total = (ACCOUNTS as u64) * INITIAL;
    let stop = Arc::new(AtomicBool::new(false));

    // Worker threads move money around transactionally.
    let mut joins = Vec::new();
    for t in 0..3u32 {
        let space = space.clone();
        let accounts = accounts.clone();
        joins.push(std::thread::spawn(move || {
            let mut th = space.thread(t);
            let mut moved = 0u64;
            for i in 0..TRANSFERS_PER_THREAD {
                let from = (i * 7 + t as usize) % ACCOUNTS;
                let to = (i * 13 + 3) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let amt = (i as u64 % 50) + 1;
                moved += th.atomically(|tx| {
                    let a = tx.read(&accounts[from])?;
                    if a < amt {
                        return Ok(0);
                    }
                    let b = tx.read(&accounts[to])?;
                    tx.write(&accounts[from], a - amt)?;
                    tx.write(&accounts[to], b + amt)?;
                    Ok(amt)
                });
            }
            moved
        }));
    }

    // The auditor reads balances *non-transactionally*. With the strong
    // STM this is safe: it can never observe a transfer halfway.
    let auditor = {
        let space = space.clone();
        let accounts = accounts.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut th = space.thread(9);
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Snapshot via a transaction for exactness...
                let sum: u64 = th.atomically(|tx| {
                    let mut s = 0;
                    for a in &accounts {
                        s += tx.read(a)?;
                    }
                    Ok(s)
                });
                assert_eq!(sum, total, "transactional audit saw a torn total");
                // ...and individual probes non-transactionally.
                let _probe: u64 = accounts.iter().map(|a| th.read_now(a)).sum();
                audits += 1;
            }
            audits
        })
    };

    let moved: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    let audits = auditor.join().unwrap();

    let mut th = space.thread(0);
    let final_total: u64 = accounts.iter().map(|a| th.read_now(a)).sum();
    println!("moved {moved} units across {ACCOUNTS} accounts in 3 threads");
    println!("auditor ran {audits} consistent audits concurrently");
    println!("final total = {final_total} (expected {total})");
    assert_eq!(final_total, total);
    println!("OK: money was conserved under concurrent transactions");
}
