//! Model-checker tour: reproduce a Theorem 1 impossibility on the
//! simulated multiprocessor and inspect the violating trace.
//!
//! Run with: `cargo run --release --example model_checker`

use jungle::core::model::Sc;
use jungle::core::opacity::check_opacity;
use jungle::core::pretty::render_columns;
use jungle::mc::theorems::{thm1_case1, thm3_litmus};
use jungle::mc::verify::{find_violation, CheckKind, SweepSeeds};

fn main() {
    println!("Theorem 1, case 1: no uninstrumented TM guarantees opacity");
    println!("parametrized by a read-read restrictive model (here: SC).");
    println!("Searching schedules of the Figure 6 TM on the simulator…\n");

    let e = thm1_case1(&Sc);
    let trace = find_violation(
        &e.program,
        e.algo,
        &e.entry,
        CheckKind::Opacity,
        SweepSeeds::new(0, 4_000),
        8_000,
    )
    .expect("Theorem 1 guarantees a violating schedule exists");

    println!("violating trace ({} instructions):", trace.instrs().len());
    for ii in trace.instrs() {
        println!("  {ii}");
    }

    println!("\nIts corresponding histories (every linearization of the");
    println!("overlapping operations) — none is opaque under SC:");
    for (i, h) in trace.corresponding_histories().iter().enumerate() {
        let verdict = check_opacity(h, &Sc);
        println!("history #{i}: opaque = {}", verdict.is_opaque());
        assert!(!verdict.is_opaque());
        if i == 0 {
            println!("{}", render_columns(h));
            let diag = jungle::core::explain::explain_opacity(h, &Sc);
            println!("diagnosis:\n{}", diag.render(h));
        }
    }

    println!("The same TM is correct for the fully relaxed model (Theorem 3):");
    let r = thm3_litmus().run(SweepSeeds::new(0, 0), 4_000);
    println!("  exhaustive sweep: {}", r.detail);
    assert!(r.passed);

    println!("\nThe reads of x and y landed between the commit's two CAS");
    println!("updates: x already new, y still old. A model that keeps");
    println!("read→read order cannot place both reads on one side of the");
    println!("transaction — the checker proves it by exhausting every");
    println!("witness. Under RMO/Alpha/Relaxed the reads may reorder and");
    println!("the trace is fine: parametrized opacity in action.");
}
