//! Checking a hand-written history for parametrized opacity and SGLA
//! under every bundled memory model — the crate's "hello, checker".
//!
//! The history is Figure 3(a) of the paper with `v = 1`; try editing
//! the values to see verdicts flip.
//!
//! Run with: `cargo run --release --example check_history`

use jungle::core::model::all_models;
use jungle::core::prelude::*;
use jungle::core::pretty::render_columns;

fn main() {
    // Figure 3(a): p1 writes x and runs the transaction writing y; p2
    // reads y (fresh) then x; p3 runs an empty transaction then reads x.
    let v = 1; // the free parameter of the figure
    let mut b = HistoryBuilder::new();
    let (p1, p2, p3) = (ProcId(1), ProcId(2), ProcId(3));
    let (x, y) = (Var(0), Var(1));
    b.write(p1, x, 1);
    b.start(p1);
    b.read(p2, y, 1);
    b.write(p1, y, 1);
    b.commit(p1);
    b.read(p2, x, v);
    b.start(p3);
    b.commit(p3);
    b.read(p3, x, 1);
    let h = b.build().unwrap();

    println!("history h (Figure 3(a), v = {v}):\n");
    println!("{}", render_columns(&h));

    println!("{:<10} {:>10} {:>8}", "model", "opacity", "SGLA");
    for m in all_models() {
        let op = check_opacity(&h, m);
        let sg = check_sgla(&h, m);
        println!(
            "{:<10} {:>10} {:>8}",
            m.name(),
            if op.is_opaque() { "opaque" } else { "✗" },
            if sg.is_sgla() { "ok" } else { "✗" },
        );
        // Theorem 6: parametrized opacity implies SGLA.
        if op.is_opaque() {
            assert!(sg.is_sgla(), "Theorem 6 violated under {}", m.name());
        }
    }

    // Show one witness.
    let v = check_opacity(&h, &Rmo);
    if v.is_opaque() {
        let (p, w) = &v.witnesses()[0];
        println!("\nwitness sequential history for {p} under RMO (operation ids):");
        println!(
            "  {}",
            w.iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(" → ")
        );
        println!("  transaction serialization order: {:?}", v.txn_order());
    }

    println!("\nUnder SC the value v is pinned to 1 (the paper's analysis of");
    println!("Figure 3); under RMO both 0 and 1 are admissible because p2's");
    println!("independent reads may reorder. Edit `v` and re-run to explore.");
}
