//! Privatization: the motivating scenario from the paper's
//! introduction — "a programmer may wish to make shared data local to a
//! thread, operate non-transactionally upon it for a while, and make it
//! shared again".
//!
//! Part 1 runs the idiom for real on the strong-atomicity STM and the
//! Figure 6 global-lock STM and asserts it is safe. Part 2 builds the
//! classic *delayed write-back* history that a weakly atomic TM (TL2
//! without privatization fences) can produce, and shows that the
//! parametrized-opacity checker rejects it under **every** memory
//! model — the violation is a property of the interaction, not of any
//! particular ordering relaxation.
//!
//! Run with: `cargo run --release --example privatization`

use jungle::core::prelude::*;
use jungle::stm::{GlobalLockStm, StrongStm, TVarSpace, TmAlgo};

const ROUNDS: usize = 2_000;

/// The privatization idiom, for real: a worker transactionally updates
/// `data` only while `shared == true`; the privatizer flips the flag in
/// a transaction and then mutates `data` with *plain* non-transactional
/// writes. Returns the number of rounds where private data was
/// clobbered.
fn run_idiom<A: TmAlgo + Send + Sync + 'static>(mk: impl Fn() -> A) -> usize {
    let mut clobbered = 0;
    for _ in 0..ROUNDS {
        let space = TVarSpace::new(mk());
        let shared = space.tvar::<bool>(0);
        let data = space.tvar::<u64>(1);
        {
            let mut th = space.thread(0);
            th.write_now(&shared, true);
        }
        let worker = {
            let space = space.clone();
            std::thread::spawn(move || {
                let mut th = space.thread(1);
                for _ in 0..50 {
                    th.atomically(|tx| {
                        if tx.read(&shared)? {
                            tx.write(&data, 7)?;
                        }
                        Ok(())
                    });
                }
            })
        };
        let mut th = space.thread(2);
        // Privatize, then operate non-transactionally on the datum.
        th.atomically(|tx| tx.write(&shared, false));
        th.write_now(&data, 100);
        let observed = th.read_now(&data);
        worker.join().unwrap();
        let after_join = th.read_now(&data);
        if observed != 100 || after_join != 100 {
            clobbered += 1;
        }
    }
    clobbered
}

/// The delayed write-back anomaly as a history: the worker's
/// transaction read `shared = true` and committed `data := 7`, but its
/// write-back landed *after* the privatizer's transaction and plain
/// write. Recorded as a history, the worker's commit is real-time
/// ordered before the privatizer's read of 100... which then reads 100
/// while a later read sees the zombie 7.
fn delayed_writeback_history() -> History {
    let mut b = HistoryBuilder::new();
    let (worker, privatizer) = (ProcId(1), ProcId(2));
    let (shared, data) = (Var(0), Var(1));
    // Worker: atomic { if shared { data := 7 } } — commits while the
    // flag is still set.
    b.start(worker);
    b.read(worker, shared, 1);
    b.write(worker, data, 7);
    b.commit(worker);
    // Privatizer: atomic { shared := 0 }, after the worker's commit.
    b.start(privatizer);
    b.write(privatizer, shared, 0);
    b.commit(privatizer);
    // Privatizer's plain write of its now-private datum…
    b.write(privatizer, data, 100);
    // …but the worker's buffered write-back lands afterwards: the
    // privatizer observes the zombie value.
    b.read(privatizer, data, 7);
    b.build().unwrap()
}

fn main() {
    println!("Part 1 — running the privatization idiom on real STMs");
    println!("        ({ROUNDS} rounds each, 1 worker + 1 privatizer)\n");
    let strong = run_idiom(|| StrongStm::new(2));
    println!(
        "  strong (§6.1):        {strong} clobbered rounds {}",
        tag(strong)
    );
    let gl = run_idiom(|| GlobalLockStm::new(2));
    println!("  global-lock (Fig. 6): {gl} clobbered rounds {}", tag(gl));
    assert_eq!(strong + gl, 0, "privatization must be safe on these STMs");

    println!("\nPart 2 — the delayed write-back anomaly, formally");
    let h = delayed_writeback_history();
    println!("\n{}", jungle::core::pretty::render_columns(&h));
    for m in jungle::core::model::all_models() {
        let v = check_opacity(&h, m);
        println!(
            "  opacity parametrized by {:<8}: {}",
            m.name(),
            if v.is_opaque() {
                "satisfied (!?)"
            } else {
                "VIOLATED"
            }
        );
        if m.name() != "Junk-SC" {
            assert!(!v.is_opaque());
        }
    }
    println!();
    println!("The worker's transaction committed data:=7 but its effect");
    println!("shows up *after* the privatizer's later transaction and its");
    println!("plain write of 100 — no serialization of the transactions");
    println!("explains the final read of 7, under any memory model except");
    println!("Junk-SC (whose havoc semantics excuse any value). A weakly");
    println!("atomic TM with lazy write-back can produce exactly this");
    println!("history; every parametrized-opaque TM in this workspace is");
    println!("structurally unable to.");
}

fn tag(n: usize) -> &'static str {
    if n == 0 {
        "(safe)"
    } else {
        "(UNSAFE)"
    }
}
