//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses. The build environment cannot reach crates.io, so the
//! real crate is unavailable; this shim keeps the bench files
//! source-compatible while providing a simple but honest timing
//! harness.
//!
//! Behaviour:
//!
//! * Under `cargo bench` (cargo passes `--bench` to the binary) each
//!   benchmark warms up, sizes its sample iteration count from the
//!   warm-up estimate, and collects `sample_size` timed samples.
//!   Human-readable results go to **stderr**; a single JSON object
//!   (`{"benchmarks": [...], "metrics": {...}}`) goes to **stdout** so
//!   `cargo bench --bench X > BENCH_X.json` captures a machine-readable
//!   perf trajectory.
//! * Under `cargo test` (no `--bench` argument), or when `--test` is
//!   passed explicitly (`cargo bench --bench X -- --test`), every
//!   benchmark runs a single smoke iteration so the bench targets stay
//!   cheap correctness checks, matching real criterion's test-mode
//!   behaviour.
//! * [`report_metrics`] lets bench code attach observability counters
//!   (e.g. `jungle-obs` snapshots, pre-rendered as JSON) to the
//!   `metrics` section of the JSON output.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How work per iteration is expressed for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

#[derive(Clone, Debug)]
struct BenchRecord {
    group: String,
    id: String,
    mode: &'static str,
    samples: u64,
    iters_per_sample: u64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    throughput: Option<Throughput>,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

fn metrics() -> &'static Mutex<Vec<(String, String)>> {
    static METRICS: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Attach a named block of pre-rendered JSON (e.g. a `jungle-obs`
/// snapshot's `to_json()`) to the `metrics` section of the bench
/// binary's JSON output. Later values for the same key win.
pub fn report_metrics(key: impl Into<String>, json: impl Into<String>) {
    let mut m = metrics().lock().unwrap();
    let key = key.into();
    m.retain(|(k, _)| *k != key);
    m.push((key, json.into()));
}

/// True when cargo invoked this binary via `cargo bench` — unless the
/// user passed `--test` after `--`, which forces the cheap smoke mode
/// (matching real criterion's `--test` flag; CI uses it to sanity-run
/// bench targets without paying for full measurement).
fn full_measurement() -> bool {
    let mut has_bench = false;
    for a in std::env::args() {
        if a == "--test" {
            return false;
        }
        if a == "--bench" {
            has_bench = true;
        }
    }
    has_bench
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// No-op in the shim (kept for call-site compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_secs(1),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the number of timed samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id, &mut |b| f(b, input));
        self
    }

    fn run_one(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            plan: if full_measurement() {
                Plan::Measure {
                    warm_up: self.warm_up,
                    measurement: self.measurement,
                    sample_size: self.sample_size,
                }
            } else {
                Plan::Smoke
            },
            outcome: None,
        };
        f(&mut bencher);
        let Some(o) = bencher.outcome else {
            eprintln!(
                "warning: benchmark {}/{} never called iter()",
                self.name, id.id
            );
            return;
        };
        let record = BenchRecord {
            group: self.name.clone(),
            id: id.id,
            mode: if matches!(bencher.plan, Plan::Smoke) {
                "smoke"
            } else {
                "measure"
            },
            samples: o.samples,
            iters_per_sample: o.iters_per_sample,
            mean_ns: o.mean_ns,
            min_ns: o.min_ns,
            max_ns: o.max_ns,
            throughput: self.throughput,
        };
        let rate = match record.throughput {
            Some(Throughput::Elements(n)) if record.mean_ns > 0.0 => {
                format!("  {:.2} Melem/s", n as f64 / record.mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) if record.mean_ns > 0.0 => {
                format!("  {:.2} MB/s", n as f64 / record.mean_ns * 1e3)
            }
            _ => String::new(),
        };
        eprintln!(
            "{:<28} {:<24} {:>12.1} ns/iter  [{:.1} .. {:.1}]{}",
            record.group, record.id, record.mean_ns, record.min_ns, record.max_ns, rate
        );
        records().lock().unwrap().push(record);
    }

    /// Close the group (results are recorded as benchmarks run).
    pub fn finish(&mut self) {}
}

enum Plan {
    Smoke,
    Measure {
        warm_up: Duration,
        measurement: Duration,
        sample_size: usize,
    },
}

struct Outcome {
    samples: u64,
    iters_per_sample: u64,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    plan: Plan,
    outcome: Option<Outcome>,
}

impl Bencher {
    /// Measure `routine`, keeping its output alive to defeat
    /// dead-code elimination.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.plan {
            Plan::Smoke => {
                let t0 = Instant::now();
                std::hint::black_box(routine());
                let ns = t0.elapsed().as_nanos() as f64;
                self.outcome = Some(Outcome {
                    samples: 1,
                    iters_per_sample: 1,
                    mean_ns: ns,
                    min_ns: ns,
                    max_ns: ns,
                });
            }
            Plan::Measure {
                warm_up,
                measurement,
                sample_size,
            } => {
                // Warm up and estimate per-iteration cost.
                let mut warm_iters: u64 = 0;
                let warm_start = Instant::now();
                while warm_start.elapsed() < warm_up {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                }
                let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

                // Size each sample so the whole run fits the budget.
                let target_sample_ns = measurement.as_nanos() as f64 / sample_size as f64;
                let iters_per_sample = ((target_sample_ns / est_ns.max(1.0)).floor() as u64).max(1);

                let mut sum = 0.0f64;
                let mut min = f64::INFINITY;
                let mut max = 0.0f64;
                for _ in 0..sample_size {
                    let t0 = Instant::now();
                    for _ in 0..iters_per_sample {
                        std::hint::black_box(routine());
                    }
                    let per_iter = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
                    sum += per_iter;
                    min = min.min(per_iter);
                    max = max.max(per_iter);
                }
                self.outcome = Some(Outcome {
                    samples: sample_size as u64,
                    iters_per_sample,
                    mean_ns: sum / sample_size as f64,
                    min_ns: min,
                    max_ns: max,
                });
            }
        }
    }
}

#[doc(hidden)]
pub fn __emit_json() {
    let records = records().lock().unwrap();
    let mut out = String::from("{\"benchmarks\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tp = match r.throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"group\":\"{}\",\"id\":\"{}\",\"mode\":\"{}\",\"samples\":{},\"iters_per_sample\":{},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1}{}}}",
            escape(&r.group),
            escape(&r.id),
            r.mode,
            r.samples,
            r.iters_per_sample,
            r.mean_ns,
            r.min_ns,
            r.max_ns,
            tp
        ));
    }
    out.push_str("],\"metrics\":{");
    let metrics = metrics().lock().unwrap();
    for (i, (k, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), v));
    }
    out.push_str("}}");
    println!("{out}");
}

/// Collect benchmark functions into a runnable group (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups, then emit the JSON report
/// to stdout (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::__emit_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_records_result() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_test");
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..4u64).sum::<u64>())
        });
        g.finish();
        let recs = records().lock().unwrap();
        let r = recs
            .iter()
            .find(|r| r.group == "shim_test")
            .expect("recorded");
        assert_eq!(r.id, "sum");
        assert!(r.mean_ns >= 0.0);
    }

    #[test]
    fn metrics_registry_last_write_wins() {
        report_metrics("k", "{\"a\":1}");
        report_metrics("k", "{\"a\":2}");
        let m = metrics().lock().unwrap();
        let hits: Vec<_> = m.iter().filter(|(k, _)| k == "k").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, "{\"a\":2}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }
}
