//! Offline drop-in replacement for the subset of `rand` 0.8 this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! half-open and inclusive integer ranges, and `Rng::gen_bool`.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be vendored; this shim keeps call sites source-compatible.
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! per seed, which is all the workspace's reproducible fuzzing needs.
//! The stream differs from the real `StdRng` (ChaCha12), so seeds do
//! not reproduce schedules across the two implementations.

#![warn(missing_docs)]

pub mod rngs {
    //! Named generator types (mirrors `rand::rngs`).

    /// The workspace's standard seeded generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// A range uniform values can be drawn from (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform sample using `next` as the entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

/// Integer types a uniform sample can target (mirrors
/// `rand::distributions::uniform::SampleUniform` in spirit).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)` or `[low, high]` per `inclusive`.
    fn sample_range(low: Self, high: Self, inclusive: bool, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(
                low: $t,
                high: $t,
                inclusive: bool,
                next: &mut dyn FnMut() -> u64,
            ) -> $t {
                let (lo, hi) = (low as $wide, high as $wide);
                let span = hi - lo + if inclusive { 1 } else { 0 };
                assert!(span > 0, "gen_range: empty range");
                let r = ((next)() as $wide).rem_euclid(span);
                (lo + r) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128
);

// Generic over the element type, like the real crate, so integer
// literal inference flows from the call site into the range.
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(self.start, self.end, false, next)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T {
        let (a, b) = self.into_inner();
        assert!(a <= b, "gen_range: empty range");
        T::sample_range(a, b, true, next)
    }
}

/// The generator trait (mirrors the used subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64_dyn();
        range.sample(&mut next)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 bits of entropy → uniform in [0, 1).
        let u = (self.next_u64_dyn() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    #[doc(hidden)]
    fn next_u64_dyn(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1..=8usize);
            assert!((1..=8).contains(&y));
            let z = r.gen_range(0..100u8);
            assert!(z < 100);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..1000).filter(|_| r.gen_bool(0.5)).count();
        assert!((300..700).contains(&hits), "suspicious bias: {hits}");
    }
}
