//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses. The build environment cannot reach crates.io, so the
//! real crate is unavailable; this shim keeps the property-test files
//! source-compatible.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the RNG seed, but is not minimized.
//! * **Derived seeding.** Each test's RNG is seeded from a hash of its
//!   name, overridable with the `PROPTEST_SEED` environment variable,
//!   so runs are reproducible by default.
//! * Only the combinators the workspace uses are provided: integer
//!   ranges, tuples (arity 2–4), [`Just`], `any::<bool>()`,
//!   [`Strategy::prop_map`], `prop_oneof!`, and
//!   [`collection::vec`](crate::collection::vec).

#![warn(missing_docs)]

use rand::{Rng, SeedableRng};

/// Per-test configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// A `prop_assert…!` failed.
    Fail(String),
}

pub mod test_runner {
    //! The runner's RNG (mirrors `proptest::test_runner` loosely).

    pub use super::ProptestConfig;

    /// The source of generation entropy for one property test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
        seed: u64,
    }

    impl TestRng {
        /// Deterministic RNG derived from the test's name; the
        /// `PROPTEST_SEED` environment variable overrides it.
        pub fn deterministic(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name.
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
                    })
                });
            TestRng {
                inner: <rand::rngs::StdRng as super::SeedableRng>::seed_from_u64(seed),
                seed,
            }
        }

        /// The seed in effect (reported on failure for reproduction).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            super::Rng::next_u64(&mut self.inner)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (mirrors `proptest::strategy`).

    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let wide = ((rng.next_u64() as u128) % span) as u128;
                    (self.start as u128 + wide) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as u128) - (a as u128) + 1;
                    let wide = ((rng.next_u64() as u128) % span) as u128;
                    (a as u128 + wide) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for "any value of `T`" (`any::<T>()`).
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — currently implemented for `bool`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod bool {
    //! Boolean strategies (mirrors `proptest::bool`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy generating `true` with fixed probability.
    pub struct Weighted(f64);

    /// Generate `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weighted: p out of range");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            // 53 bits of entropy → uniform in [0, 1).
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u < self.0
        }
    }
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generate vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the workspace's test files import.

    pub use super::collection;
    pub use super::strategy::{any, Just, Strategy};
    pub use super::test_runner::TestRng;
    pub use super::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// The `prop::…` alias used by `prop::collection::vec` and
    /// `prop::bool::weighted`.
    pub mod prop {
        pub use super::super::bool;
        pub use super::super::collection;
    }
}

/// Reject the current case unless `cond` holds (does not count toward
/// the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($arg:ident in $strat:expr),* ; $body:block ; $name:ident) => {{
        let cfg: $crate::ProptestConfig = $cfg;
        let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
            module_path!(),
            "::",
            stringify!($name)
        ));
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < cfg.cases {
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
            let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                $body
                #[allow(unreachable_code)]
                ::core::result::Result::Ok(())
            })();
            match outcome {
                ::core::result::Result::Ok(()) => passed += 1,
                ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected < cfg.cases.saturating_mul(64).saturating_add(1024),
                        "prop_assume! rejected too many cases ({} rejections)",
                        rejected
                    );
                }
                ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                    panic!(
                        "property failed after {} passing case(s) [seed {}]: {}",
                        passed,
                        rng.seed(),
                        msg
                    );
                }
            }
        }
    }};
}

/// The property-test entry macro (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_body!($cfg; $($arg in $strat),* ; $body ; $name)
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum E {
        A(u8),
        B,
    }

    fn e_strategy() -> impl Strategy<Value = E> {
        prop_oneof![(0..10u8).prop_map(E::A), Just(E::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1..5u64, pair in (0..3u8, 10..20usize)) {
            prop_assert!((1..5).contains(&x));
            prop_assert!(pair.0 < 3 && (10..20).contains(&pair.1));
        }

        #[test]
        fn vecs_and_unions(v in collection::vec(e_strategy(), 0..4)) {
            prop_assert!(v.len() < 4);
            for e in &v {
                if let E::A(n) = e {
                    prop_assert!(*n < 10, "bad A payload {}", n);
                }
            }
        }

        #[test]
        fn assume_rejects(x in 0..100u32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        #[allow(unused)]
        fn inner() {
            crate::__proptest_body!(
                ProptestConfig::with_cases(10);
                x in 0..4u8 ;
                { prop_assert!(x < 2, "x was {}", x); } ;
                failing_property_panics
            )
        }
        inner();
    }
}
