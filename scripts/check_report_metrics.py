#!/usr/bin/env python3
"""Regression floors for the report's redundancy-elimination metrics.

Reads the ``report --json`` output on stdin and asserts that the
model-checking sweeps keep eliminating redundant work:

* trace dedup rate  = dedup_hits / schedules        (observed ~0.98)
* memo hit rate     = shared_memo.hits / lookups    (observed ~0.50)
* the matched-model zoo covers >= 6 registry models x 5 STMs

Floors are committed at roughly half the observed rates so routine
drift doesn't flake CI, while a broken dedup key or an unshared memo
(both of which drop a rate to ~0) fails loudly.
"""

import json
import sys

DEDUP_RATE_FLOOR = 0.50
MEMO_HIT_RATE_FLOOR = 0.25
MIN_ZOO_MODELS = 6
MIN_ZOO_ALGOS = 5


def fail(msg: str) -> None:
    print(f"check_report_metrics: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    report = json.load(sys.stdin)

    mc = report["metrics"]["mc"]
    schedules = mc["schedules"]
    dedup = mc["dedup_hits"]
    if schedules == 0:
        fail("no schedules explored")
    dedup_rate = dedup / schedules
    if dedup_rate < DEDUP_RATE_FLOOR:
        fail(
            f"trace dedup rate {dedup_rate:.3f} below floor {DEDUP_RATE_FLOOR}"
            f" ({dedup}/{schedules})"
        )

    memo = report["shared_memo"]
    if memo["lookups"] == 0:
        fail("shared verdict memo was never consulted")
    memo_rate = memo["hits"] / memo["lookups"]
    if memo_rate < MEMO_HIT_RATE_FLOOR:
        fail(
            f"memo hit rate {memo_rate:.3f} below floor {MEMO_HIT_RATE_FLOOR}"
            f" ({memo['hits']}/{memo['lookups']})"
        )

    zoo = [r for r in report["rows"] if r["section"] == "zoo"]
    models = {r["id"].split("/")[2] for r in zoo}
    algos = {r["id"].split("/")[1] for r in zoo}
    if len(models) < MIN_ZOO_MODELS:
        fail(f"zoo covers {len(models)} models, need >= {MIN_ZOO_MODELS}: {sorted(models)}")
    if len(algos) < MIN_ZOO_ALGOS:
        fail(f"zoo covers {len(algos)} STMs, need >= {MIN_ZOO_ALGOS}: {sorted(algos)}")

    print(
        "check_report_metrics: OK "
        f"(dedup {dedup_rate:.3f} >= {DEDUP_RATE_FLOOR}, "
        f"memo {memo_rate:.3f} >= {MEMO_HIT_RATE_FLOOR}, "
        f"zoo {len(algos)} STMs x {len(models)} models)"
    )


if __name__ == "__main__":
    main()
