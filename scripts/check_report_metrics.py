#!/usr/bin/env python3
"""Regression floors for the report's redundancy-elimination metrics.

Reads the ``report --json`` output on stdin and asserts that the
model-checking sweeps keep eliminating redundant work:

* trace dedup rate  = dedup_hits / schedules        (observed ~0.98)
* memo hit rate     = shared_memo.hits / lookups    (observed ~0.50)
* the matched-model zoo covers >= 6 registry models x 5 STMs

Floors are committed at roughly half the observed rates so routine
drift doesn't flake CI, while a broken dedup key or an unshared memo
(both of which drop a rate to ~0) fails loudly.

When the report carries a ``replay`` section (``report --record``), it
is validated too: every recorded schedule log must replay to the
recorded fingerprint, every shrunk log must still violate with no more
decisions than the original, and the Theorem 1 class must survive
minimization.

Extra modes:

* ``--trace-file out.json`` additionally validates a Chrome-trace-event
  file written by ``report --trace``: parseable JSON, a non-empty
  ``traceEvents`` array whose events carry the required fields, with
  per-thread timestamps sorted and B/E duration events balanced, and
  all four instrumentation layers (checker / mc / memsim / stm)
  represented.
* ``--require-replay`` makes a missing ``replay`` section an error
  (use in CI after ``report --record``).
* ``--require-monitor`` makes a missing ``monitor`` section an error
  (use in CI after ``report --monitor``).
* ``--require-profile`` makes a missing ``profile`` section an error
  (use in CI after ``report --profile``). When the section is present
  (with or without the flag), the exploration profile's invariants are
  enforced: every phase-tree node keeps ``self <= total`` and
  ``p50 <= p90 <= p99 <= p999 <= max`` on its latency histogram, the
  DPOR blocked-probe attribution reconciles **exactly**
  (``sum(blocked_by_depth) == profile.dpor.blocked ==
  profile.dpor_blocked``, where ``dpor_blocked`` is independently
  summed from the explorers' plain counters), the race-pair heat table
  sums to ``race_total``, worker utilization stays above
  ``WORKER_BUSY_FRAC_FLOOR``, and the ledger's profiler fields mirror
  the section.
* ``--require-sat`` makes a missing ``sat`` section an error (use in
  CI after ``report --sat``). When the section is present (with or
  without the flag), the SAT backend's contracts are enforced: zero
  DFS-vs-SAT disagreements, every positive verdict certified through
  the DFS leaf (``witness_certified == positives``), a recorded
  wide-UNSAT crossover size where SAT beats DFS wall-clock, solver
  totals consistent with the check count, and the ledger's ``sat_*``
  fields mirroring the section.
* ``--require-dpor`` makes a missing ``dpor`` section an error. When
  the section is present (with or without the flag), every exhaustive
  experiment must keep the partial-order-reduction contracts: class-key
  set identical to brute-force enumeration, verdict/witness stable at
  1/2/4 workers, >= ``DPOR_REDUCTION_FLOOR``x fewer executed runs than
  enumeration, and at most ``DPOR_COMPLETED_PER_CLASS_CEILING``
  complete runs per distinct class. A ``dpor`` section also lowers the
  dedup-rate floor to ``DEDUP_RATE_FLOOR_DPOR``: the reduction now
  prevents duplicate schedules from running at all rather than
  deduplicating them afterwards.
* ``--self-test`` runs the checker against built-in golden inputs (one
  passing, several failing with a *named* key or floor) and exits 0 iff
  every case behaves as expected. No stdin is read.

When the report carries a ``monitor`` section (``report --monitor``),
the streaming monitor's invariants are enforced: at least
``MONITOR_OPS_FLOOR`` operations ingested, tier accounting exact
(``triage_cleared + escalated == windows_sealed``), the escalation rate
under ``MONITOR_ESCALATION_CEILING`` (the triage tier must carry the
stream), **zero silent loss** (the report's sweep uses the blocking
tap, so ``events_dropped`` must be exactly 0 — any nonzero value means
backpressure accounting broke), no violations, and the ledger entry's
``monitor_*`` fields mirroring the section totals.

A missing key anywhere in the expected schema fails with a message that
names both the key and the section it was expected in, e.g.
``missing key 'dedup_hits' in section 'metrics.mc'`` — never a bare
KeyError traceback.
"""

import json
import sys

DEDUP_RATE_FLOOR = 0.50
# With the DPOR explorer in place most structurally-duplicate schedules
# are never executed at all, so the in-sweep dedup rate drops by design;
# the reduction itself is enforced by check_dpor instead.
DEDUP_RATE_FLOOR_DPOR = 0.25
MEMO_HIT_RATE_FLOOR = 0.25
DPOR_REDUCTION_FLOOR = 10  # brute runs / dpor runs, observed ~94x
DPOR_COMPLETED_PER_CLASS_CEILING = 2.0  # observed 1.00 (optimal)
MIN_ZOO_MODELS = 6
MIN_ZOO_ALGOS = 5
MONITOR_OPS_FLOOR = 1_000_000
MONITOR_ESCALATION_CEILING = 0.05
WORKER_BUSY_FRAC_FLOOR = 0.5  # observed ~0.93 at 4 DPOR workers
THEOREM1_CLASSES = {"Mrr", "Mrw", "Mwr", "Mww"}
TRACE_CATEGORIES = {"checker", "dpor", "mc", "memsim", "sat", "stm"}
TRACE_EVENT_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


class CheckFailure(Exception):
    """A named, human-readable check failure."""


def fail(msg: str) -> None:
    raise CheckFailure(msg)


def need(obj: dict, key: str, section: str):
    """``obj[key]``, failing with the key *and* section named."""
    if not isinstance(obj, dict):
        fail(f"section '{section}' is {type(obj).__name__}, expected object")
    if key not in obj:
        fail(f"missing key '{key}' in section '{section}'")
    return obj[key]


def check_replay(report: dict) -> str:
    """Validate the ``replay`` section written by ``report --record``."""
    replay = need(report, "replay", "report")
    recorded = need(replay, "recorded", "replay")
    logs = need(replay, "logs", "replay")
    if not isinstance(logs, list) or recorded == 0 or not logs:
        fail("replay section recorded no schedule logs")
    if recorded != len(logs):
        fail(f"replay 'recorded' {recorded} != {len(logs)} log entries")
    rounds_total = 0
    for i, log in enumerate(logs):
        section = f"replay.logs[{i}]"
        log_id = need(log, "id", section)
        decisions = need(log, "decisions", section)
        shrunk = need(log, "shrunk_decisions", section)
        if shrunk > decisions:
            fail(f"{log_id}: shrunk log has {shrunk} decisions, original {decisions}")
        if not need(log, "replay_matches", section):
            fail(f"{log_id}: recorded log did not replay to its fingerprint")
        if not need(log, "shrunk_replay_matches", section):
            fail(f"{log_id}: shrunk log did not replay to its fingerprint")
        if not need(log, "shrunk_violating", section):
            fail(f"{log_id}: shrunk log no longer violates")
        if not need(log, "class_matches", section):
            fail(f"{log_id}: minimization changed the Theorem 1 class")
        cls = need(log, "class", section)
        if cls not in THEOREM1_CLASSES:
            fail(f"{log_id}: class {cls!r} is not a Theorem 1 class")
        rounds_total += need(log, "shrink_rounds", section)
    if need(replay, "shrink_rounds", "replay") != rounds_total:
        fail(f"replay 'shrink_rounds' disagrees with per-log sum {rounds_total}")
    ledger = report.get("ledger_entry")
    if isinstance(ledger, dict) and ledger.get("replay_logs") != recorded:
        fail(
            f"ledger replay_logs {ledger.get('replay_logs')} != "
            f"recorded {recorded}"
        )
    return f"replay {recorded} logs verified, {rounds_total} shrink rounds"


def check_monitor(report: dict) -> str:
    """Validate the ``monitor`` section written by ``report --monitor``."""
    monitor = need(report, "monitor", "report")
    total = need(monitor, "total", "monitor")
    ops = need(total, "ops_ingested", "monitor.total")
    dropped = need(total, "events_dropped", "monitor.total")
    sealed = need(total, "windows_sealed", "monitor.total")
    cleared = need(total, "triage_cleared", "monitor.total")
    escalated = need(total, "escalated", "monitor.total")
    violations = need(total, "violations", "monitor.total")
    if ops < MONITOR_OPS_FLOOR:
        fail(f"monitor ingested {ops} ops, floor is {MONITOR_OPS_FLOOR}")
    if dropped != 0:
        fail(
            f"monitor dropped {dropped} events under the blocking tap —"
            " silent loss is forbidden"
        )
    if violations != 0:
        fail(f"monitor reported {violations} violations on a clean workload")
    if sealed == 0:
        fail("monitor sealed no windows")
    if cleared + escalated != sealed:
        fail(
            f"monitor tier accounting broken: cleared {cleared} +"
            f" escalated {escalated} != sealed {sealed}"
        )
    rate = escalated / sealed
    if rate > MONITOR_ESCALATION_CEILING:
        fail(
            f"monitor escalation rate {rate:.4f} above ceiling"
            f" {MONITOR_ESCALATION_CEILING} ({escalated}/{sealed})"
        )
    stms = need(monitor, "stms", "monitor")
    if not isinstance(stms, list) or not stms:
        fail("monitor section lists no per-STM entries")
    for i, entry in enumerate(stms):
        section = f"monitor.stms[{i}]"
        stm = need(entry, "stm", section)
        stats = need(entry, "stats", section)
        if need(stats, "events_dropped", section) != 0:
            fail(f"monitor/{stm}: dropped events under the blocking tap")
        if need(stats, "violations", section) != 0:
            fail(f"monitor/{stm}: violations on a clean workload")
    # The aggregate in metrics.monitor and the ledger fields must
    # mirror the section totals — three views of one run.
    metrics_mon = need(report, "metrics", "report").get("monitor")
    if isinstance(metrics_mon, dict) and metrics_mon.get("ops_ingested") != ops:
        fail(
            f"metrics.monitor ops_ingested {metrics_mon.get('ops_ingested')}"
            f" != monitor.total {ops}"
        )
    ledger = report.get("ledger_entry")
    if isinstance(ledger, dict):
        for key, want in [
            ("monitor_ops", ops),
            ("monitor_windows", sealed),
            ("monitor_escalated", escalated),
        ]:
            if key in ledger and ledger[key] != want:
                fail(f"ledger {key} {ledger[key]} != monitor section {want}")
    return (
        f"monitor {ops} ops, {sealed} windows,"
        f" escalation {rate:.4f} <= {MONITOR_ESCALATION_CEILING}, 0 dropped"
    )


def check_dpor(report: dict) -> str:
    """Validate the ``dpor`` section: partial-order reduction must keep
    its two contracts — the enumeration oracle (identical class-key
    sets) and worker-count determinism — while actually reducing work.
    """
    entries = need(report, "dpor", "report")
    if not isinstance(entries, list) or not entries:
        fail("dpor section lists no exhaustive experiments")
    worst_reduction = None
    for i, e in enumerate(entries):
        section = f"dpor[{i}]"
        exp_id = need(e, "id", section)
        brute = need(e, "brute_executed", section)
        executed = need(e, "dpor_executed", section)
        completed = need(e, "dpor_completed", section)
        classes = need(e, "classes", section)
        if not need(e, "oracle_match", section):
            fail(f"dpor/{exp_id}: class-key set diverges from enumeration oracle")
        if not need(e, "workers_deterministic", section):
            fail(f"dpor/{exp_id}: verdict or witness varies with worker count")
        if executed == 0 or classes == 0:
            fail(f"dpor/{exp_id}: explored nothing ({executed} runs, {classes} classes)")
        if completed < classes:
            fail(f"dpor/{exp_id}: {completed} complete runs < {classes} classes")
        per_class = completed / classes
        if per_class > DPOR_COMPLETED_PER_CLASS_CEILING:
            fail(
                f"dpor/{exp_id}: {per_class:.2f} complete runs per class, ceiling"
                f" {DPOR_COMPLETED_PER_CLASS_CEILING} ({completed}/{classes})"
            )
        reduction = brute / executed
        if reduction < DPOR_REDUCTION_FLOOR:
            fail(
                f"dpor/{exp_id}: reduction {reduction:.1f}x below floor"
                f" {DPOR_REDUCTION_FLOOR}x ({brute} brute / {executed} dpor)"
            )
        if worst_reduction is None or reduction < worst_reduction:
            worst_reduction = reduction
    ledger = report.get("ledger_entry")
    if isinstance(ledger, dict):
        for key in ("dpor_executed", "dpor_classes"):
            if key in ledger and ledger[key] == 0:
                fail(f"ledger {key} is 0 despite a populated dpor section")
    return (
        f"dpor {len(entries)} experiments, worst reduction"
        f" {worst_reduction:.0f}x >= {DPOR_REDUCTION_FLOOR}x"
    )


def check_sat(report: dict) -> str:
    """Validate the ``sat`` section written by ``report --sat``: the
    CDCL backend must agree with DFS everywhere, certify every positive
    verdict, and win the wide-UNSAT crossover at some size."""
    sat = need(report, "sat", "report")
    checked = need(sat, "checked", "sat")
    disagreements = need(sat, "disagreements", "sat")
    positives = need(sat, "positives", "sat")
    certified = need(sat, "witness_certified", "sat")
    if checked == 0:
        fail("sat section checked nothing")
    if disagreements != 0 or not need(sat, "agreement", "sat"):
        fail(f"sat backend disagreed with DFS on {disagreements} checks")
    if certified != positives:
        fail(
            f"sat certified {certified} of {positives} positive verdicts —"
            " every SAT 'yes' must re-validate through the DFS leaf"
        )
    if not need(sat, "crossover", "sat"):
        fail("sat backend never beat DFS on the wide-UNSAT family")
    crossover_at = need(sat, "crossover_at", "sat")
    points = need(sat, "crossover_points", "sat")
    if not isinstance(points, list) or not points:
        fail("sat section lists no crossover points")
    for i, p in enumerate(points):
        section = f"sat.crossover_points[{i}]"
        for key in ("p", "dfs_ns", "sat_ns"):
            need(p, key, section)
    stats = need(sat, "stats", "sat")
    solved = need(stats, "solved", "sat.stats")
    # The crossover benchmark solves on top of the agreement sweep.
    if solved < checked:
        fail(f"sat.stats solved {solved} < checked {checked}")
    if need(stats, "certified", "sat.stats") < certified:
        fail(
            f"sat.stats certified {stats['certified']} <"
            f" section witness_certified {certified}"
        )
    check_hist(need(stats, "wall", "sat.stats"), "sat.stats.wall")
    ledger = report.get("ledger_entry")
    if isinstance(ledger, dict):
        for key, want in [
            ("sat_solved", solved),
            ("sat_conflicts", need(stats, "conflicts", "sat.stats")),
            ("sat_wall_ns_p99", need(stats["wall"], "p99", "sat.stats.wall")),
        ]:
            if key in ledger and ledger[key] != want:
                fail(f"ledger {key} {ledger[key]} != sat section {want}")
    return (
        f"sat {checked} checks agree, {certified}/{positives} certified,"
        f" crossover at p={crossover_at}"
    )


def check_hist(hist: dict, section: str) -> None:
    """A serialized ``HistSnapshot`` must be internally consistent:
    bucket counts sum to ``count`` and percentiles are monotone."""
    count = need(hist, "count", section)
    buckets = need(hist, "buckets", section)
    if sum(n for _, n in buckets) != count:
        fail(f"{section}: bucket counts do not sum to count {count}")
    p50 = need(hist, "p50", section)
    p90 = need(hist, "p90", section)
    p99 = need(hist, "p99", section)
    p999 = need(hist, "p999", section)
    maxv = need(hist, "max", section)
    if not p50 <= p90 <= p99 <= p999 <= maxv:
        fail(
            f"{section}: percentiles not monotone:"
            f" p50 {p50}, p90 {p90}, p99 {p99}, p999 {p999}, max {maxv}"
        )


def check_phase_node(node: dict, section: str) -> int:
    """Recursively validate one phase-tree node; returns nodes seen."""
    total = need(node, "total_ns", section)
    self_ns = need(node, "self_ns", section)
    name = need(node, "name", section)
    if self_ns > total:
        fail(f"{section} ({name}): self_ns {self_ns} > total_ns {total}")
    children = need(node, "children", section)
    child_total = sum(need(c, "total_ns", f"{section}.children") for c in children)
    if child_total > total:
        fail(f"{section} ({name}): children total {child_total} > total_ns {total}")
    if "hist" in node and need(node, "calls", section) > 0:
        check_hist(node["hist"], f"{section}.hist")
    seen = 1
    for i, c in enumerate(children):
        seen += check_phase_node(c, f"{section}.children[{i}]")
    return seen


def check_profile(report: dict) -> str:
    """Validate the ``profile`` section written by ``report --profile``."""
    profile = need(report, "profile", "report")
    phases = need(profile, "phases", "profile")
    nodes = check_phase_node(phases, "profile.phases")

    dpor = need(profile, "dpor", "profile")
    blocked = need(dpor, "blocked", "profile.dpor")
    by_depth = need(dpor, "blocked_by_depth", "profile.dpor")
    independent = need(profile, "dpor_blocked", "profile")
    # The acceptance contract: attribution is exhaustive. The per-depth
    # histogram, the attributed total, and the independently summed
    # plain counters must agree exactly — no tolerance.
    if sum(by_depth) != blocked:
        fail(
            f"profile.dpor blocked attribution leaks: sum(blocked_by_depth)"
            f" {sum(by_depth)} != blocked {blocked}"
        )
    if blocked != independent:
        fail(
            f"profile.dpor.blocked {blocked} != independently counted"
            f" dpor_blocked {independent}"
        )
    heat = need(dpor, "race_heat", "profile.dpor")
    race_total = need(dpor, "race_total", "profile.dpor")
    heat_sum = sum(need(h, "races", "profile.dpor.race_heat[]") for h in heat)
    if heat_sum != race_total:
        fail(f"profile.dpor race heat sums to {heat_sum}, race_total is {race_total}")
    busy = need(dpor, "worker_busy_frac", "profile.dpor")
    workers = need(dpor, "workers", "profile.dpor")
    if workers and busy < WORKER_BUSY_FRAC_FLOOR:
        fail(
            f"profile.dpor worker_busy_frac {busy:.3f} below floor"
            f" {WORKER_BUSY_FRAC_FLOOR}"
        )
    check_hist(need(dpor, "run_ns", "profile.dpor"), "profile.dpor.run_ns")

    if "monitor" in report:
        check_hist(
            need(profile, "monitor_window_ns", "profile"),
            "profile.monitor_window_ns",
        )

    ledger = report.get("ledger_entry")
    if isinstance(ledger, dict):
        mode = need(dpor, "blocked_depth_mode", "profile.dpor")
        for key, want in [
            ("blocked_depth_mode", mode),
            ("worker_busy_frac", busy),
        ]:
            if key in ledger and ledger[key] != want:
                fail(f"ledger {key} {ledger[key]} != profile section {want}")
    return (
        f"profile {nodes} phase nodes, {blocked} blocked probes reconciled,"
        f" busy {busy:.2f} >= {WORKER_BUSY_FRAC_FLOOR}"
    )


def check_flight(report: dict) -> str:
    """Validate the ``flight`` section: every recorded and dropped
    event must be attributed to a category — drops are only acceptable
    when counted, never silent."""
    flight = need(report, "flight", "report")
    recorded = need(flight, "recorded", "flight")
    dropped = need(flight, "dropped", "flight")
    cats = need(flight, "categories", "flight")
    rec_sum = sum(need(c, "recorded", f"flight.categories.{k}") for k, c in cats.items())
    drop_sum = sum(need(c, "dropped", f"flight.categories.{k}") for k, c in cats.items())
    if rec_sum != recorded:
        fail(f"flight category recorded sums to {rec_sum}, total is {recorded}")
    if dropped > 0 and drop_sum == 0:
        fail(
            f"flight dropped {dropped} events with no category attribution —"
            " silent loss is forbidden"
        )
    return f"flight {recorded} events recorded, {dropped} dropped (attributed)"


def check_report(report: dict) -> str:
    metrics = need(report, "metrics", "report")
    mc = need(metrics, "mc", "metrics")
    schedules = need(mc, "schedules", "metrics.mc")
    dedup = need(mc, "dedup_hits", "metrics.mc")
    if schedules == 0:
        fail("no schedules explored")
    dedup_rate = dedup / schedules
    dedup_floor = DEDUP_RATE_FLOOR_DPOR if "dpor" in report else DEDUP_RATE_FLOOR
    if dedup_rate < dedup_floor:
        fail(
            f"trace dedup rate {dedup_rate:.3f} below floor {dedup_floor}"
            f" ({dedup}/{schedules})"
        )

    memo = need(report, "shared_memo", "report")
    lookups = need(memo, "lookups", "shared_memo")
    hits = need(memo, "hits", "shared_memo")
    if lookups == 0:
        fail("shared verdict memo was never consulted")
    memo_rate = hits / lookups
    if memo_rate < MEMO_HIT_RATE_FLOOR:
        fail(
            f"memo hit rate {memo_rate:.3f} below floor {MEMO_HIT_RATE_FLOOR}"
            f" ({hits}/{lookups})"
        )
    # Cross-run provenance, when present, must be consistent: every
    # cross-run hit is a hit, and in-run + cross-run = hits.
    if "cross_run_hits" in memo:
        cross = memo["cross_run_hits"]
        in_run = need(memo, "in_run_hits", "shared_memo")
        if cross + in_run != hits:
            fail(
                f"memo hit provenance inconsistent: cross {cross} + in-run"
                f" {in_run} != hits {hits}"
            )

    rows = need(report, "rows", "report")
    zoo = [r for r in rows if need(r, "section", "rows[]") == "zoo"]
    models = {need(r, "id", "rows[]").split("/")[2] for r in zoo}
    algos = {need(r, "id", "rows[]").split("/")[1] for r in zoo}
    if len(models) < MIN_ZOO_MODELS:
        fail(f"zoo covers {len(models)} models, need >= {MIN_ZOO_MODELS}: {sorted(models)}")
    if len(algos) < MIN_ZOO_ALGOS:
        fail(f"zoo covers {len(algos)} STMs, need >= {MIN_ZOO_ALGOS}: {sorted(algos)}")

    summary = (
        f"dedup {dedup_rate:.3f} >= {DEDUP_RATE_FLOOR}, "
        f"memo {memo_rate:.3f} >= {MEMO_HIT_RATE_FLOOR}, "
        f"zoo {len(algos)} STMs x {len(models)} models"
    )
    if "dpor" in report:
        summary += "; " + check_dpor(report)
    if "replay" in report:
        summary += "; " + check_replay(report)
    if "monitor" in report:
        summary += "; " + check_monitor(report)
    if "sat" in report:
        summary += "; " + check_sat(report)
    if "profile" in report:
        summary += "; " + check_profile(report)
    if "flight" in report:
        summary += "; " + check_flight(report)
    return summary


def check_trace(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except OSError as e:
        fail(f"cannot read trace file {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"trace file {path} is not valid JSON: {e}")
    events = need(trace, "traceEvents", "trace")
    if not isinstance(events, list) or not events:
        fail("trace 'traceEvents' is empty — recorder captured nothing")

    last_ts = {}
    depth = {}
    cats = set()
    for i, ev in enumerate(events):
        for field in TRACE_EVENT_FIELDS:
            if field not in ev:
                fail(f"missing key '{field}' in section 'traceEvents[{i}]'")
        tid = ev["tid"]
        if ev["ts"] < last_ts.get(tid, 0):
            fail(f"traceEvents[{i}]: ts {ev['ts']} not sorted within tid {tid}")
        last_ts[tid] = ev["ts"]
        ph = ev["ph"]
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            if depth.get(tid, 0) == 0:
                fail(f"traceEvents[{i}]: E without matching B on tid {tid}")
            depth[tid] -= 1
        elif ph != "i":
            fail(f"traceEvents[{i}]: unexpected phase {ph!r}")
        cats.add(ev["cat"])
    open_tids = sorted(t for t, d in depth.items() if d != 0)
    if open_tids:
        fail(f"unbalanced B/E durations left open on tids {open_tids}")
    missing = TRACE_CATEGORIES - cats
    if missing:
        fail(f"trace is missing event categories: {sorted(missing)}")

    # Drop accounting: the ring is allowed to wrap (it is a bounded
    # flight recorder), but never silently — every dropped event must
    # be attributed to a per-category counter.
    dropped = need(trace, "dropped", "trace")
    categories = need(trace, "categories", "trace")
    drop_sum = sum(
        need(c, "dropped", f"trace.categories.{k}") for k, c in categories.items()
    )
    if dropped > 0 and drop_sum == 0:
        fail(
            f"trace dropped {dropped} events with no category attribution —"
            " silent loss is forbidden"
        )
    return f"trace {len(events)} events, layers {sorted(cats)}, {dropped} dropped (attributed)"


# ── self-test golden inputs ──────────────────────────────────────────

def golden_hist(count: int, value: int) -> dict:
    """A degenerate but internally consistent serialized HistSnapshot:
    `count` samples all landing in one bucket whose low bound is `value`."""
    return {
        "count": count,
        "sum": count * value,
        "max": value,
        "p50": value,
        "p90": value,
        "p99": value,
        "p999": value,
        "buckets": [[17, count]] if count else [],
    }


def golden_phase(name: str, calls: int, total: int, self_ns: int, children=None) -> dict:
    return {
        "name": name,
        "calls": calls,
        "total_ns": total,
        "self_ns": self_ns,
        "hist": golden_hist(calls, total // calls if calls else 0),
        "children": children or [],
    }


def golden_report() -> dict:
    return {
        "rows": [
            {"section": "zoo", "id": f"zoo/{a}/{m}", "pass": True}
            for a in ["gl", "wt", "v", "s", "tl2"]
            for m in ["SC", "TSO", "TSO+fwd", "PSO", "RMO", "Alpha", "Relaxed", "Junk-SC"]
        ],
        "metrics": {"mc": {"schedules": 1000, "dedup_hits": 980}},
        "dpor": [
            {
                "id": "thm3-litmus",
                "brute_executed": 170_544,
                "dpor_executed": 1_820,
                "dpor_completed": 299,
                "classes": 299,
                "truncated": 0,
                "completed_per_class": 1.0,
                "oracle_match": True,
                "workers_deterministic": True,
                "frontier_steals": 122,
            }
        ],
        "shared_memo": {
            "hits": 500,
            "lookups": 1000,
            "cross_run_hits": 200,
            "in_run_hits": 300,
        },
        "ledger_entry": {
            "replay_logs": 1,
            "shrink_rounds": 2,
            "dpor_executed": 5_460,
            "dpor_classes": 897,
            "monitor_ops": 1_056_000,
            "monitor_windows": 4_128,
            "monitor_escalated": 0,
            "p99_window_ns": 27_648,
            "sat_solved": 549,
            "sat_conflicts": 0,
            "sat_wall_ns_p99": 2_048,
            "blocked_depth_mode": 21,
            "worker_busy_frac": 0.92,
        },
        "profile": {
            "phases": golden_phase(
                "<root>",
                0,
                5_000_000_000,
                0,
                [
                    golden_phase(
                        "report.dpor",
                        1,
                        4_500_000_000,
                        4_000_000_000,
                        [golden_phase("memsim.choose", 11_000_000, 400_000_000, 400_000_000)],
                    ),
                    golden_phase("report.monitor", 1, 400_000_000, 400_000_000),
                ],
            ),
            "dpor": {
                "blocked": 22_815,
                "blocked_by_depth": [0, 1_000, 21_815],
                "blocked_depth_mode": 21,
                "race_heat": [
                    {"a": "boundary", "b": "boundary", "races": 19_350},
                    {"a": "write", "b": "read", "races": 3_360},
                ],
                "race_total": 22_710,
                "workers": [
                    {
                        "busy_ns": 344_800_000,
                        "idle_ns": 522_000,
                        "steal_ns": 933_000,
                        "runs": 20_389,
                        "steals": 181,
                    }
                ],
                "worker_busy_frac": 0.92,
                "run_ns": golden_hist(27_300, 15_000),
            },
            "dpor_blocked": 22_815,
            "monitor_window_ns": golden_hist(4_128, 11_776),
        },
        "flight": {
            "recorded": 9_000_000,
            "dropped": 8_900_000,
            "categories": {
                "checker": {"recorded": 1_000_000, "dropped": 950_000},
                "dpor": {"recorded": 8_000_000, "dropped": 7_950_000},
            },
        },
        "monitor": {
            "stms": [
                {
                    "stm": name,
                    "stats": {
                        "ops_ingested": 176_000,
                        "events_dropped": 0,
                        "windows_sealed": 688,
                        "triage_cleared": 688,
                        "escalated": 0,
                        "violations": 0,
                    },
                }
                for name in ["gl", "wt", "v", "s", "tl2", "strong"]
            ],
            "total": {
                "ops_ingested": 1_056_000,
                "events_dropped": 0,
                "windows_sealed": 4_128,
                "triage_cleared": 4_128,
                "escalated": 0,
                "violations": 0,
            },
        },
        "sat": {
            "checked": 544,
            "disagreements": 0,
            "agreement": True,
            "positives": 369,
            "witness_certified": 369,
            "crossover": True,
            "crossover_at": 2,
            "crossover_points": [
                {"p": 2, "dfs_ns": 6_163, "sat_ns": 4_332},
                {"p": 6, "dfs_ns": 1_530_688, "sat_ns": 595_591},
            ],
            "stats": {
                "solved": 549,
                "certified": 369,
                "cegar_rounds": 180,
                "vars": 371,
                "clauses": 622,
                "decisions": 35,
                "conflicts": 0,
                "propagations": 0,
                "restarts": 0,
                "learned": 0,
                "wall": golden_hist(549, 2_048),
            },
        },
        "replay": {
            "dir": "/tmp/schedules",
            "recorded": 1,
            "shrink_rounds": 2,
            "logs": [
                {
                    "id": "thm1-case3/PSO",
                    "model": "PSO",
                    "decisions": 37,
                    "shrunk_decisions": 19,
                    "replay_matches": True,
                    "shrunk_replay_matches": True,
                    "shrunk_violating": True,
                    "class_matches": True,
                    "class": "Mrw",
                    "shrink_rounds": 2,
                }
            ],
        },
    }


def self_test() -> int:
    cases = []

    ok = golden_report()
    cases.append(("golden passes", ok, None))

    broken = golden_report()
    del broken["metrics"]["mc"]["dedup_hits"]
    cases.append(
        ("missing dedup_hits named", broken, "missing key 'dedup_hits' in section 'metrics.mc'")
    )

    broken = golden_report()
    del broken["shared_memo"]
    cases.append(
        ("missing shared_memo named", broken, "missing key 'shared_memo' in section 'report'")
    )

    broken = golden_report()
    broken["metrics"]["mc"]["dedup_hits"] = 10
    cases.append(("low dedup rate fails", broken, "trace dedup rate"))

    broken = golden_report()
    broken["shared_memo"]["in_run_hits"] = 999
    cases.append(("provenance mismatch fails", broken, "provenance inconsistent"))

    broken = golden_report()
    broken["rows"] = broken["rows"][:8]  # one algo only
    cases.append(("zoo coverage fails", broken, "zoo covers"))

    broken = golden_report()
    broken["dpor"][0]["oracle_match"] = False
    cases.append(
        ("dpor oracle mismatch fails", broken, "diverges from enumeration oracle")
    )

    broken = golden_report()
    broken["dpor"][0]["workers_deterministic"] = False
    cases.append(("dpor worker divergence fails", broken, "varies with worker count"))

    broken = golden_report()
    broken["dpor"][0]["dpor_executed"] = 100_000
    broken["dpor"][0]["dpor_completed"] = 299
    cases.append(("dpor weak reduction fails", broken, "below floor 10x"))

    broken = golden_report()
    broken["dpor"][0]["dpor_completed"] = 900
    cases.append(("dpor duplicate classes fail", broken, "complete runs per class"))

    broken = golden_report()
    del broken["dpor"][0]["dpor_completed"]
    cases.append(
        (
            "missing dpor_completed named",
            broken,
            "missing key 'dpor_completed' in section 'dpor[0]'",
        )
    )

    broken = golden_report()
    broken["ledger_entry"]["dpor_executed"] = 0
    cases.append(("ledger dpor zero fails", broken, "ledger dpor_executed is 0"))

    # A dedup rate legal only under the relaxed DPOR floor must fail
    # once the dpor section is absent (pre-reduction semantics).
    broken = golden_report()
    broken["metrics"]["mc"]["dedup_hits"] = 300
    del broken["dpor"]
    cases.append(("dedup floor tightens without dpor", broken, "below floor 0.5"))

    ok_relaxed = golden_report()
    ok_relaxed["metrics"]["mc"]["dedup_hits"] = 300
    cases.append(("dpor section relaxes dedup floor", ok_relaxed, None))

    broken = golden_report()
    broken["sat"]["disagreements"] = 2
    cases.append(("sat disagreement fails", broken, "disagreed with DFS on 2"))

    broken = golden_report()
    broken["sat"]["witness_certified"] = 368
    cases.append(("sat uncertified positive fails", broken, "must re-validate through the DFS leaf"))

    broken = golden_report()
    broken["sat"]["crossover"] = False
    cases.append(("sat missing crossover fails", broken, "never beat DFS"))

    broken = golden_report()
    del broken["sat"]["witness_certified"]
    cases.append(
        (
            "missing witness_certified named",
            broken,
            "missing key 'witness_certified' in section 'sat'",
        )
    )

    broken = golden_report()
    broken["sat"]["stats"]["solved"] = 100
    broken["ledger_entry"]["sat_solved"] = 100
    cases.append(("sat solved undercount fails", broken, "solved 100 < checked 544"))

    broken = golden_report()
    broken["ledger_entry"]["sat_solved"] = 1
    cases.append(("ledger sat mirror fails", broken, "ledger sat_solved"))

    broken = golden_report()
    del broken["replay"]["logs"][0]["shrunk_decisions"]
    cases.append(
        (
            "missing shrunk_decisions named",
            broken,
            "missing key 'shrunk_decisions' in section 'replay.logs[0]'",
        )
    )

    broken = golden_report()
    broken["replay"]["logs"][0]["shrunk_decisions"] = 99
    cases.append(("grown shrunk log fails", broken, "shrunk log has 99 decisions"))

    broken = golden_report()
    broken["replay"]["logs"][0]["shrunk_violating"] = False
    cases.append(("non-violating shrunk log fails", broken, "no longer violates"))

    broken = golden_report()
    broken["replay"]["logs"][0]["class_matches"] = False
    cases.append(("changed class fails", broken, "changed the Theorem 1 class"))

    broken = golden_report()
    broken["ledger_entry"]["replay_logs"] = 7
    cases.append(("ledger replay count mismatch fails", broken, "ledger replay_logs"))

    broken = golden_report()
    broken["monitor"]["total"]["ops_ingested"] = 999
    cases.append(("monitor ops below floor fails", broken, "floor is 1000000"))

    broken = golden_report()
    broken["monitor"]["total"]["events_dropped"] = 3
    cases.append(("monitor drop fails", broken, "dropped 3 events"))

    broken = golden_report()
    broken["monitor"]["total"]["triage_cleared"] = 3_000
    broken["monitor"]["total"]["escalated"] = 1_128
    broken["ledger_entry"]["monitor_escalated"] = 1_128
    cases.append(("monitor escalation ceiling fails", broken, "escalation rate"))

    broken = golden_report()
    broken["monitor"]["total"]["triage_cleared"] = 4_000
    cases.append(("monitor tier accounting fails", broken, "tier accounting broken"))

    broken = golden_report()
    del broken["monitor"]["total"]["windows_sealed"]
    cases.append(
        (
            "missing windows_sealed named",
            broken,
            "missing key 'windows_sealed' in section 'monitor.total'",
        )
    )

    broken = golden_report()
    broken["monitor"]["stms"][2]["stats"]["events_dropped"] = 1
    cases.append(("per-stm drop fails", broken, "monitor/v: dropped"))

    broken = golden_report()
    broken["ledger_entry"]["monitor_ops"] = 5
    cases.append(("ledger monitor_ops mismatch fails", broken, "ledger monitor_ops"))

    broken = golden_report()
    broken["profile"]["dpor"]["blocked_by_depth"][1] = 999
    cases.append(
        ("profile depth attribution leak fails", broken, "blocked attribution leaks")
    )

    broken = golden_report()
    broken["profile"]["dpor_blocked"] = 22_814
    cases.append(
        (
            "profile reconciliation mismatch fails",
            broken,
            "independently counted dpor_blocked 22814",
        )
    )

    broken = golden_report()
    broken["profile"]["dpor"]["worker_busy_frac"] = 0.4
    broken["ledger_entry"]["worker_busy_frac"] = 0.4
    cases.append(("profile busy-frac floor fails", broken, "below floor 0.5"))

    broken = golden_report()
    broken["profile"]["dpor"]["race_heat"][0]["races"] = 1
    cases.append(("profile heat/total mismatch fails", broken, "race heat sums to"))

    broken = golden_report()
    hist = broken["profile"]["monitor_window_ns"]
    hist["p50"] = hist["p99"] + 1
    cases.append(
        ("profile hist percentile inversion fails", broken, "percentiles not monotone")
    )

    broken = golden_report()
    node = broken["profile"]["phases"]["children"][0]
    node["self_ns"] = node["total_ns"] + 1
    cases.append(("profile self>total fails", broken, "self_ns"))

    broken = golden_report()
    del broken["profile"]["dpor"]["run_ns"]
    cases.append(
        (
            "missing run_ns named",
            broken,
            "missing key 'run_ns' in section 'profile.dpor'",
        )
    )

    broken = golden_report()
    broken["ledger_entry"]["blocked_depth_mode"] = 3
    cases.append(("ledger profile mirror fails", broken, "ledger blocked_depth_mode"))

    broken = golden_report()
    broken["flight"]["categories"]["checker"]["dropped"] = 0
    broken["flight"]["categories"]["dpor"]["dropped"] = 0
    cases.append(("flight silent drop fails", broken, "silent loss is forbidden"))

    broken = golden_report()
    broken["flight"]["categories"]["checker"]["recorded"] = 1
    cases.append(("flight recorded accounting fails", broken, "category recorded sums"))

    failures = 0
    for name, report, want in cases:
        try:
            check_report(report)
            got = None
        except CheckFailure as e:
            got = str(e)
        if want is None:
            if got is not None:
                print(f"self-test: {name}: unexpected failure: {got}", file=sys.stderr)
                failures += 1
        elif got is None or want not in got:
            print(f"self-test: {name}: wanted {want!r} in message, got {got!r}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"check_report_metrics: self-test FAILED ({failures} cases)", file=sys.stderr)
        return 1
    print(f"check_report_metrics: self-test OK ({len(cases)} cases)")
    return 0


def main() -> None:
    argv = sys.argv[1:]
    if "--self-test" in argv:
        sys.exit(self_test())

    trace_file = None
    if "--trace-file" in argv:
        i = argv.index("--trace-file")
        if i + 1 >= len(argv):
            print("check_report_metrics: --trace-file requires a path", file=sys.stderr)
            sys.exit(2)
        trace_file = argv[i + 1]

    try:
        report = json.load(sys.stdin)
        if "--require-replay" in argv and "replay" not in report:
            fail("missing key 'replay' in section 'report' (--require-replay)")
        if "--require-monitor" in argv and "monitor" not in report:
            fail("missing key 'monitor' in section 'report' (--require-monitor)")
        if "--require-dpor" in argv and "dpor" not in report:
            fail("missing key 'dpor' in section 'report' (--require-dpor)")
        if "--require-sat" in argv and "sat" not in report:
            fail("missing key 'sat' in section 'report' (--require-sat)")
        if "--require-profile" in argv and "profile" not in report:
            fail("missing key 'profile' in section 'report' (--require-profile)")
        summary = check_report(report)
        if trace_file is not None:
            summary += "; " + check_trace(trace_file)
    except CheckFailure as e:
        print(f"check_report_metrics: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_report_metrics: OK ({summary})")


if __name__ == "__main__":
    main()
