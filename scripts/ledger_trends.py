#!/usr/bin/env python3
"""Trend report over the persistent run ledger.

Reads ``.jungle/ledger.jsonl`` (one JSON object per ``report`` run,
appended by the ``report`` binary) and renders the headline counters as
trends across runs:

* wall-clock per run (``wall_ms``)
* trace dedup rate (``dedup_hits / schedules``)
* verdict-memo hit rate (``memo_hits / memo_lookups``)
* streaming-monitor ops ingested per run (``monitor_ops``)
* streaming-monitor escalation rate (``monitor_escalated /
  monitor_windows`` — how often the triage tier failed to clear a
  window and the batch checker ran)
* DPOR class yield (``dpor_classes / dpor_executed`` — what fraction of
  partial-order-reduced runs discovered a new history class; 0 for
  entries predating the reduction)
* monitor window-check tail latency (``p99_window_ns`` — the p99 of
  per-window triage+escalate time from the profiler histograms; 0 for
  entries predating the profiler)
* DPOR worker utilization (``worker_busy_frac`` — busy wall-clock over
  total wall-clock across frontier workers; 0 for pre-profiler entries)
* SAT-backend conflicts (``sat_conflicts`` — CDCL conflict count from
  the ``--sat`` cross-validation sweep; 0 for entries predating the
  backend or runs without ``--sat``)
* SAT-backend check tail latency (``sat_wall_ns_p99`` — p99 of
  per-check solver+certify wall time; 0 as above)

Output is a single self-contained SVG (hand-rolled polylines — no
plotting dependency) plus a text summary table on stdout, so CI can
upload the SVG as an artifact and the log still tells the story.

Usage::

    python3 scripts/ledger_trends.py [--ledger .jungle/ledger.jsonl]
                                     [--out ledger-trends.svg]
                                     [--source report]

Entries that fail to parse are skipped with a warning (the ledger is
append-only across versions; old entries may predate newer fields).
"""

import json
import sys

WIDTH = 720
PANEL_H = 150
PAD_L, PAD_R, PAD_T, PAD_B = 60, 20, 28, 20
COLORS = {
    "wall_ms": "#d62728",
    "dedup_rate": "#1f77b4",
    "memo_rate": "#2ca02c",
    "monitor_ops": "#9467bd",
    "monitor_esc_rate": "#8c564b",
    "dpor_yield": "#e377c2",
    "p99_window_ns": "#17becf",
    "worker_busy_frac": "#bcbd22",
    "sat_conflicts": "#ff7f0e",
    "sat_wall_p99": "#7f7f7f",
}


def load_entries(path, source):
    entries = []
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.readlines()
    except OSError as e:
        print(f"ledger_trends: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            e = json.loads(line)
        except json.JSONDecodeError as err:
            print(f"ledger_trends: skipping line {i + 1}: {err}", file=sys.stderr)
            continue
        if source and e.get("source") != source:
            continue
        entries.append(e)
    return entries


def series(entries):
    """Extract the three plotted series, one point per ledger entry."""
    out = {
        "wall_ms": [],
        "dedup_rate": [],
        "memo_rate": [],
        "monitor_ops": [],
        "monitor_esc_rate": [],
        "dpor_yield": [],
        "p99_window_ns": [],
        "worker_busy_frac": [],
        "sat_conflicts": [],
        "sat_wall_p99": [],
    }
    for e in entries:
        out["wall_ms"].append(float(e.get("wall_ms", 0)))
        sched = e.get("schedules", 0)
        out["dedup_rate"].append(e.get("dedup_hits", 0) / sched if sched else 0.0)
        lookups = e.get("memo_lookups", 0)
        out["memo_rate"].append(e.get("memo_hits", 0) / lookups if lookups else 0.0)
        out["monitor_ops"].append(float(e.get("monitor_ops", 0)))
        windows = e.get("monitor_windows", 0)
        out["monitor_esc_rate"].append(
            e.get("monitor_escalated", 0) / windows if windows else 0.0
        )
        executed = e.get("dpor_executed", 0)
        out["dpor_yield"].append(
            e.get("dpor_classes", 0) / executed if executed else 0.0
        )
        out["p99_window_ns"].append(float(e.get("p99_window_ns", 0)))
        out["worker_busy_frac"].append(float(e.get("worker_busy_frac", 0)))
        out["sat_conflicts"].append(float(e.get("sat_conflicts", 0)))
        out["sat_wall_p99"].append(float(e.get("sat_wall_ns_p99", 0)))
    return out


def polyline(values, y_off, vmax):
    """SVG points string for one panel, x spread over the plot width."""
    n = len(values)
    plot_w = WIDTH - PAD_L - PAD_R
    plot_h = PANEL_H - PAD_T - PAD_B
    pts = []
    for i, v in enumerate(values):
        x = PAD_L + (plot_w * i / (n - 1) if n > 1 else plot_w / 2)
        frac = v / vmax if vmax else 0.0
        y = y_off + PAD_T + plot_h * (1.0 - frac)
        pts.append(f"{x:.1f},{y:.1f}")
    return " ".join(pts)


def fmt(key, v):
    if key == "wall_ms":
        return f"{v:.0f} ms"
    if key == "monitor_ops":
        return f"{v / 1e6:.2f}M" if v >= 1e6 else f"{v:.0f}"
    if key in ("p99_window_ns", "sat_wall_p99"):
        return f"{v / 1000:.1f}µs" if v >= 1000 else f"{v:.0f}ns"
    if key == "sat_conflicts":
        return f"{v:.0f}"
    return f"{v:.3f}"


def render_svg(entries, data):
    labels = {
        "wall_ms": "wall-clock per run",
        "dedup_rate": "trace dedup rate",
        "memo_rate": "memo hit rate",
        "monitor_ops": "monitor ops ingested",
        "monitor_esc_rate": "monitor escalation rate",
        "dpor_yield": "DPOR class yield",
        "p99_window_ns": "monitor p99 window latency",
        "worker_busy_frac": "DPOR worker utilization",
        "sat_conflicts": "SAT backend conflicts",
        "sat_wall_p99": "SAT p99 check latency",
    }
    keys = [
        "wall_ms",
        "dedup_rate",
        "memo_rate",
        "monitor_ops",
        "monitor_esc_rate",
        "dpor_yield",
        "p99_window_ns",
        "worker_busy_frac",
        "sat_conflicts",
        "sat_wall_p99",
    ]
    panels = []
    for p, key in enumerate(keys):
        values = data[key]
        y_off = p * PANEL_H
        vmax = max(values) or 1.0
        # Rates get a fixed 0..1 axis so runs are comparable at a glance.
        if key not in (
            "wall_ms",
            "monitor_ops",
            "p99_window_ns",
            "sat_conflicts",
            "sat_wall_p99",
        ):
            vmax = 1.0
        first, last = values[0], values[-1]
        panels.append(
            f'<rect x="{PAD_L}" y="{y_off + PAD_T}" '
            f'width="{WIDTH - PAD_L - PAD_R}" height="{PANEL_H - PAD_T - PAD_B}" '
            f'fill="none" stroke="#ccc"/>'
            f'<text x="{PAD_L}" y="{y_off + PAD_T - 8}" font-size="13" '
            f'fill="#333">{labels[key]}: {fmt(key, first)} → {fmt(key, last)} '
            f"({len(values)} runs)</text>"
            f'<text x="{PAD_L - 6}" y="{y_off + PAD_T + 10}" font-size="10" '
            f'fill="#666" text-anchor="end">{fmt(key, vmax)}</text>'
            f'<text x="{PAD_L - 6}" y="{y_off + PANEL_H - PAD_B}" font-size="10" '
            f'fill="#666" text-anchor="end">0</text>'
            f'<polyline points="{polyline(values, y_off, vmax)}" fill="none" '
            f'stroke="{COLORS[key]}" stroke-width="2"/>'
        )
        for i, v in enumerate(values):
            x = PAD_L + (
                (WIDTH - PAD_L - PAD_R) * i / (len(values) - 1)
                if len(values) > 1
                else (WIDTH - PAD_L - PAD_R) / 2
            )
            frac = (v / vmax) if vmax else 0.0
            y = y_off + PAD_T + (PANEL_H - PAD_T - PAD_B) * (1.0 - frac)
            rev = entries[i].get("git_rev", "?")
            panels.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" fill="{COLORS[key]}">'
                f"<title>{rev}: {fmt(key, v)}</title></circle>"
            )
    height = len(keys) * PANEL_H
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{height}" font-family="sans-serif">'
        f'<rect width="{WIDTH}" height="{height}" fill="white"/>'
        + "".join(panels)
        + "</svg>\n"
    )


def arg_value(argv, flag, default):
    if flag in argv:
        i = argv.index(flag)
        if i + 1 >= len(argv):
            print(f"ledger_trends: {flag} requires a value", file=sys.stderr)
            sys.exit(2)
        return argv[i + 1]
    return default


def main():
    argv = sys.argv[1:]
    ledger = arg_value(argv, "--ledger", ".jungle/ledger.jsonl")
    out = arg_value(argv, "--out", "ledger-trends.svg")
    source = arg_value(argv, "--source", "report")

    entries = load_entries(ledger, source)
    if not entries:
        print(f"ledger_trends: no '{source}' entries in {ledger}", file=sys.stderr)
        sys.exit(1)
    data = series(entries)

    print(f"ledger trends over {len(entries)} '{source}' runs from {ledger}:")
    print(
        f"  {'rev':<10} {'wall_ms':>8} {'dedup':>7} {'memo':>7} {'replay':>7}"
        f" {'shrink':>7} {'mon_ops':>9} {'mon_esc':>7} {'dpor':>7} {'yield':>7}"
        f" {'p99_win':>9} {'busy':>6} {'sat_cf':>7} {'sat_p99':>9}"
    )
    for e, w, d, m, mo, me, dy, p99, busy, scf, sp99 in zip(
        entries,
        data["wall_ms"],
        data["dedup_rate"],
        data["memo_rate"],
        data["monitor_ops"],
        data["monitor_esc_rate"],
        data["dpor_yield"],
        data["p99_window_ns"],
        data["worker_busy_frac"],
        data["sat_conflicts"],
        data["sat_wall_p99"],
    ):
        print(
            f"  {e.get('git_rev', '?'):<10} {w:>8.0f} {d:>7.3f} {m:>7.3f}"
            f" {e.get('replay_logs', 0):>7} {e.get('shrink_rounds', 0):>7}"
            f" {fmt('monitor_ops', mo):>9} {me:>7.3f}"
            f" {e.get('dpor_executed', 0):>7} {dy:>7.3f}"
            f" {fmt('p99_window_ns', p99):>9} {busy:>6.3f}"
            f" {fmt('sat_conflicts', scf):>7} {fmt('sat_wall_p99', sp99):>9}"
        )
    with open(out, "w", encoding="utf-8") as f:
        f.write(render_svg(entries, data))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
