//! Legality of (transactionally) sequential histories (§2).
//!
//! The paper defines: a sequential history `s` is *legal* if `s|x ∈ [[x]]`
//! for every object `x`, and an operation `k` is *legal in `s`* if
//! `visible(s′)` is legal, where `s′` is the prefix of `s` ending with
//! `k`. Both checkers ([`check_opacity`](crate::opacity::check_opacity)
//! and [`check_sgla`](crate::sgla::check_sgla)) need to evaluate
//! per-prefix legality incrementally while backtracking, so this module
//! provides two implementations:
//!
//! * [`op_legal_in`] — the direct, replay-based reference semantics
//!   (quadratic; used in tests and as ground truth), and
//! * [`PrefixChecker`] — an incremental state machine equivalent to the
//!   reference on (transactionally) sequential histories, maintaining per
//!   variable a *committed* state and a *live-transaction overlay*, each
//!   stamped with the history position of its latest update so that a
//!   commit merges writes in position order.
//!
//! Interpretation note: `visible(s)` keeps a non-committed transaction
//! `T` exactly when no operation instance outside `T` occurs *after the
//! last operation of `T`* in `s`. For sequential histories this coincides
//! with the paper's wording; for the transactionally sequential histories
//! of SGLA (§6.2), where non-transactional operations interleave *inside*
//! a transaction's span, it is the strictly stronger reading under which
//! a running transaction still sees its own writes. This matches the
//! behaviour of an actual global-lock implementation and is the
//! interpretation used throughout this crate.

use crate::history::History;
use crate::ids::Var;
use crate::op::{Command, Op};
use crate::spec::{SpecRegistry, SpecState};
use std::collections::HashMap;

/// Replay-based reference implementation of "operation `k` (at history
/// index `k_idx`) is legal in `s`": computes `visible` of the prefix
/// ending at `k_idx` and checks `s|x ∈ [[x]]` for every `x`.
pub fn op_legal_in(s: &History, k_idx: usize, specs: &SpecRegistry) -> bool {
    let prefix = s.prefix(k_idx);
    let vis = prefix.visible();
    vis.vars()
        .into_iter()
        .all(|x| specs.spec_of(x).check_sequence(vis.project(x).iter()))
}

/// Replay-based check of the paper's condition 3 ("every operation is
/// legal in s") for a complete history.
pub fn every_op_legal(s: &History, specs: &SpecRegistry) -> bool {
    (0..s.len()).all(|i| op_legal_in(s, i, specs))
}

/// One variable's tracked state: the state after the latest relevant
/// command together with the position (index in the sequence being
/// built) of the latest *state-changing* command.
#[derive(Clone, Copy, Debug)]
struct Slot {
    pos: usize,
    state: SpecState,
}

/// Incremental per-prefix legality checker for sequential and
/// transactionally sequential histories.
///
/// Feed operations in order with [`PrefixChecker::step`]; it returns
/// `false` as soon as an operation would be illegal in the sense of the
/// paper's condition 3. The checker is cheap to [`Clone`], which is how
/// the backtracking searches snapshot it.
#[derive(Clone, Debug)]
pub struct PrefixChecker<'a> {
    specs: &'a SpecRegistry,
    committed: HashMap<Var, Slot>,
    /// Overlay of the currently open transaction (if any).
    overlay: HashMap<Var, Slot>,
    in_txn: bool,
    pos: usize,
}

impl<'a> PrefixChecker<'a> {
    /// New checker with all variables in their initial state.
    pub fn new(specs: &'a SpecRegistry) -> Self {
        PrefixChecker {
            specs,
            committed: HashMap::new(),
            overlay: HashMap::new(),
            in_txn: false,
            pos: 0,
        }
    }

    fn committed_state(&self, var: Var) -> SpecState {
        self.committed
            .get(&var)
            .map(|s| s.state)
            .unwrap_or_else(|| self.specs.spec_of(var).init())
    }

    /// The state a *transactional* access observes: the later (by
    /// position) of the overlay and committed slots.
    fn txn_view(&self, var: Var) -> SpecState {
        match (self.overlay.get(&var), self.committed.get(&var)) {
            (Some(o), Some(c)) => {
                if o.pos >= c.pos {
                    o.state
                } else {
                    c.state
                }
            }
            (Some(o), None) => o.state,
            (None, Some(c)) => c.state,
            (None, None) => self.specs.spec_of(var).init(),
        }
    }

    /// True while a transaction is open (between `start` and
    /// `commit`/`abort`).
    pub fn in_txn(&self) -> bool {
        self.in_txn
    }

    /// Close a *live* transaction (one with no `commit`/`abort`
    /// operation) after its last operation has been applied: its writes
    /// are discarded — they never become visible to anyone else — and
    /// the checker is ready for subsequent operations.
    pub fn suspend_live(&mut self) {
        self.overlay.clear();
        self.in_txn = false;
    }

    /// Apply the next operation of the sequence being built.
    /// `transactional` says whether this operation belongs to the
    /// currently open transaction (`false` for interleaved
    /// non-transactional operations, which only SGLA permits).
    ///
    /// Returns `false` if the operation is illegal; the checker must not
    /// be used further after a `false`.
    pub fn step(&mut self, op: &Op, transactional: bool) -> bool {
        self.pos += 1;
        let pos = self.pos;
        match op {
            Op::Start => {
                debug_assert!(!self.in_txn, "sequential history: no nested txns");
                self.in_txn = true;
                self.overlay.clear();
                true
            }
            Op::Commit => {
                // Merge overlay into committed, position-wise: a
                // non-transactional write that interleaved *after* the
                // transaction's last write to the same variable wins.
                for (var, slot) in self.overlay.drain() {
                    match self.committed.get(&var) {
                        Some(c) if c.pos > slot.pos => {}
                        _ => {
                            self.committed.insert(var, slot);
                        }
                    }
                }
                self.in_txn = false;
                true
            }
            Op::Abort => {
                self.overlay.clear();
                self.in_txn = false;
                true
            }
            Op::Cmd(cmd) => {
                let var = cmd.var();
                let spec = self.specs.spec_of(var);
                if transactional {
                    debug_assert!(self.in_txn);
                    let st = self.txn_view(var);
                    match spec.apply(st, cmd) {
                        Some(next) => {
                            // Reads do not change the state; only record
                            // state-changing commands so that position
                            // stamps reflect writes.
                            if next != st || cmd.is_write() || matches!(cmd, Command::Havoc { .. })
                            {
                                self.overlay.insert(var, Slot { pos, state: next });
                            }
                            true
                        }
                        None => false,
                    }
                } else {
                    // Non-transactional accesses never observe the open
                    // transaction's overlay (its effects are not visible
                    // until commit).
                    let st = self.committed_state(var);
                    match spec.apply(st, cmd) {
                        Some(next) => {
                            if next != st || cmd.is_write() || matches!(cmd, Command::Havoc { .. })
                            {
                                self.committed.insert(var, Slot { pos, state: next });
                            }
                            true
                        }
                        None => false,
                    }
                }
            }
        }
    }
}

/// Incremental legality checker with **critical-section semantics**,
/// used by the SGLA checker (§6.2).
///
/// Under single global lock atomicity a transaction behaves exactly
/// like a critical section with in-place updates: its writes take
/// effect at their positions (interleaved non-transactional reads *do*
/// observe them — this is what makes the Theorem 7 proof go through for
/// the Figure 6 TM), and an abort rolls them back via an undo log, so a
/// non-transactional read may legitimately observe a value that is
/// later undone. For fully sequential histories these semantics
/// coincide with [`PrefixChecker`]'s, which is why parametrized opacity
/// still implies SGLA (Theorem 6).
#[derive(Clone, Debug)]
pub struct CsChecker<'a> {
    specs: &'a SpecRegistry,
    state: HashMap<Var, SpecState>,
    /// Undo log of the open transaction: `(var, state before the
    /// transaction's first write to it)`.
    undo: Vec<(Var, SpecState)>,
    in_txn: bool,
}

impl<'a> CsChecker<'a> {
    /// New checker with all variables in their initial state.
    pub fn new(specs: &'a SpecRegistry) -> Self {
        CsChecker {
            specs,
            state: HashMap::new(),
            undo: Vec::new(),
            in_txn: false,
        }
    }

    fn get(&self, var: Var) -> SpecState {
        self.state
            .get(&var)
            .copied()
            .unwrap_or_else(|| self.specs.spec_of(var).init())
    }

    /// True while a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.in_txn
    }

    /// Close a live (never-completed) transaction: like a lock holder
    /// that never released, its in-place writes simply remain.
    pub fn suspend_live(&mut self) {
        self.undo.clear();
        self.in_txn = false;
    }

    /// Apply the next operation of the transactionally sequential
    /// sequence being built. Returns `false` if it is illegal.
    pub fn step(&mut self, op: &Op, transactional: bool) -> bool {
        match op {
            Op::Start => {
                debug_assert!(!self.in_txn);
                self.in_txn = true;
                self.undo.clear();
                true
            }
            Op::Commit => {
                self.undo.clear();
                self.in_txn = false;
                true
            }
            Op::Abort => {
                // Roll back in reverse order.
                while let Some((var, st)) = self.undo.pop() {
                    self.state.insert(var, st);
                }
                self.in_txn = false;
                true
            }
            Op::Cmd(cmd) => {
                let var = cmd.var();
                let spec = self.specs.spec_of(var);
                let st = self.get(var);
                match spec.apply(st, cmd) {
                    Some(next) => {
                        if next != st || cmd.is_write() || matches!(cmd, Command::Havoc { .. }) {
                            if transactional && self.in_txn {
                                // First transactional mutation of this
                                // var: remember the pre-image.
                                if !self.undo.iter().any(|(v, _)| *v == var) {
                                    self.undo.push((var, st));
                                }
                            }
                            self.state.insert(var, next);
                        }
                        true
                    }
                    None => false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::spec::Spec;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// Run a whole (transactionally sequential) history through the
    /// incremental checker, deriving `transactional` from the history.
    fn run_incremental(h: &History, specs: &SpecRegistry) -> bool {
        let mut c = PrefixChecker::new(specs);
        for (i, oi) in h.ops().iter().enumerate() {
            if !c.step(&oi.op, h.is_transactional(i)) {
                return false;
            }
        }
        true
    }

    #[test]
    fn simple_sequential_legal() {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(2));
        b.read(p(2), X, 1);
        b.write(p(2), Y, 2);
        b.commit(p(2));
        b.read(p(1), Y, 2);
        let h = b.build().unwrap();
        let specs = SpecRegistry::registers();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));
    }

    #[test]
    fn txn_sees_own_writes() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 7);
        b.read(p(1), X, 7);
        b.commit(p(1));
        let h = b.build().unwrap();
        let specs = SpecRegistry::registers();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));
    }

    #[test]
    fn aborted_txn_writes_invisible() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 7);
        b.abort(p(1));
        b.read(p(2), X, 0);
        let h = b.build().unwrap();
        let specs = SpecRegistry::registers();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));

        // Reading the aborted value is illegal.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 7);
        b.abort(p(1));
        b.read(p(2), X, 7);
        let h = b.build().unwrap();
        assert!(!run_incremental(&h, &specs));
        assert!(!every_op_legal(&h, &specs));
    }

    #[test]
    fn aborted_txn_reads_own_writes_before_abort() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 7);
        b.read(p(1), X, 7);
        b.abort(p(1));
        let h = b.build().unwrap();
        let specs = SpecRegistry::registers();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));
    }

    #[test]
    fn nontxn_read_does_not_see_open_txn() {
        // SGLA-style interleaving: the open transaction's write must not
        // be observed by a concurrent non-transactional read.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 5);
        b.read(p(2), X, 0); // interleaved non-transactional read
        b.commit(p(1));
        b.read(p(2), X, 5); // after commit the value is visible
        let h = b.build().unwrap();
        let specs = SpecRegistry::registers();
        assert!(run_incremental(&h, &specs));
        // Known, documented divergence from the strict replay reading:
        // at the commit's prefix, visible() contains both the
        // transactional write of 5 and the earlier non-transactional read
        // of 0, which is jointly illegal as a projected sequence even
        // though each operation was legal at its own prefix. The
        // operational semantics (above) is normative for SGLA; a strict
        // witness exists by placing the read before the write.
        assert!(!every_op_legal(&h, &specs));

        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 5);
        b.read(p(2), X, 5); // illegal: sees uncommitted write
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(!run_incremental(&h, &specs));
        assert!(!every_op_legal(&h, &specs));
    }

    #[test]
    fn commit_merge_respects_position_order() {
        // txn writes x:=1, then a non-transactional write x:=2
        // interleaves; after commit the later (positional) write wins.
        let specs = SpecRegistry::registers();
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(2), X, 2); // interleaved non-transactional write
        b.commit(p(1));
        b.read(p(2), X, 2);
        let h = b.build().unwrap();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));

        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(2), X, 2);
        b.commit(p(1));
        b.read(p(2), X, 1); // stale: the non-txn write came later
        let h = b.build().unwrap();
        assert!(!run_incremental(&h, &specs));
        assert!(!every_op_legal(&h, &specs));
    }

    #[test]
    fn txn_read_sees_interleaved_nontxn_write() {
        // Under SGLA a transaction is not isolated from
        // non-transactional writes that interleave within it.
        let specs = SpecRegistry::registers();
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(2), X, 9); // interleaved non-transactional write
        b.read(p(1), X, 9); // the transaction observes it
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));
    }

    #[test]
    fn counter_in_txn() {
        let specs = SpecRegistry::with_default(Spec::Counter);
        let mut b = HistoryBuilder::new();
        b.fetch_add(p(1), X, 5, 0);
        b.start(p(2));
        b.fetch_add(p(2), X, 3, 5);
        b.read(p(2), X, 8);
        b.commit(p(2));
        b.read(p(1), X, 8);
        let h = b.build().unwrap();
        assert!(run_incremental(&h, &specs));
        assert!(every_op_legal(&h, &specs));
    }

    #[test]
    fn incremental_matches_reference_on_examples() {
        // A couple of tricky shapes, checked against the replay-based
        // reference implementation (extensively cross-validated by the
        // proptest suite at the crate root).
        let specs = SpecRegistry::registers();
        let shapes: Vec<History> = vec![
            {
                let mut b = HistoryBuilder::new();
                b.write(p(1), X, 1);
                b.start(p(1));
                b.read(p(2), Y, 0);
                b.write(p(1), Y, 1);
                b.commit(p(1));
                b.read(p(2), X, 1);
                b.build().unwrap()
            },
            {
                let mut b = HistoryBuilder::new();
                b.start(p(1));
                b.write(p(1), X, 1);
                b.abort(p(1));
                b.start(p(2));
                b.read(p(2), X, 0);
                b.commit(p(2));
                b.build().unwrap()
            },
        ];
        for h in &shapes {
            assert_eq!(run_incremental(h, &specs), every_op_legal(h, &specs));
        }
    }
}
