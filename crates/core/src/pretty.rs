//! Paper-style rendering of histories.
//!
//! The paper draws histories as one column per process, read top to
//! bottom (Figure 3). [`render_columns`] reproduces that layout for
//! debugging and for the litmus-explorer example.

use crate::history::History;
use crate::ids::ProcId;

/// Render a history as per-process columns, one operation per row, in
/// history order (the layout of the paper's Figure 3).
pub fn render_columns(h: &History) -> String {
    let procs: Vec<ProcId> = h.procs();
    if procs.is_empty() {
        return String::from("(empty history)\n");
    }
    let col_of = |p: ProcId| procs.iter().position(|&q| q == p).unwrap();

    // Compute cell text per op.
    let cells: Vec<(usize, String)> = h
        .ops()
        .iter()
        .map(|oi| (col_of(oi.proc), format!("({},{})", oi.op, oi.id)))
        .collect();

    let width = cells
        .iter()
        .map(|(_, s)| s.len())
        .chain(procs.iter().map(|p| p.to_string().len()))
        .max()
        .unwrap_or(4)
        + 2;

    let mut out = String::new();
    for p in &procs {
        let s = p.to_string();
        out.push_str(&format!("{s:^width$}"));
    }
    out.push('\n');
    for (col, text) in &cells {
        for c in 0..procs.len() {
            if c == *col {
                out.push_str(&format!("{text:^width$}"));
            } else {
                out.push_str(&" ".repeat(width));
            }
        }
        out.push('\n');
    }
    out
}

/// Render a history as a horizontal timeline: one row per process, one
/// column per history index, reads left to right in history order.
/// Transactional operations are bracketed (`[wr,x,1]`), non-transactional
/// ones plain (`(rd,x,0)`), so interleavings and txn boundaries are
/// visible at a glance:
///
/// ```text
/// p1 | start  [wr,x,1]  commit  .         .
/// p2 | .      .         .       (rd,y,1)  (rd,x,0)
/// ```
pub fn render_timeline(h: &History) -> String {
    let procs: Vec<ProcId> = h.procs();
    if procs.is_empty() {
        return String::from("(empty history)\n");
    }
    let cells: Vec<(usize, String)> = h
        .ops()
        .iter()
        .enumerate()
        .map(|(i, oi)| {
            let row = procs.iter().position(|&q| q == oi.proc).unwrap();
            let body = match oi.op.command() {
                Some(c) if h.is_transactional(i) => {
                    let s = c.to_string(); // "(wr,x,1)" → "[wr,x,1]"
                    format!("[{}]", &s[1..s.len() - 1])
                }
                _ => oi.op.to_string(),
            };
            (row, body)
        })
        .collect();
    let widths: Vec<usize> = cells.iter().map(|(_, s)| s.len().max(1)).collect();
    let label_w = procs.iter().map(|p| p.to_string().len()).max().unwrap_or(2);

    let mut out = String::new();
    for (row, p) in procs.iter().enumerate() {
        out.push_str(&format!("{:<label_w$} |", p.to_string()));
        for (i, (r, s)) in cells.iter().enumerate() {
            let cell = if *r == row { s.as_str() } else { "." };
            out.push_str(&format!(" {cell:<w$}", w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// Render a history as a single line, e.g. for test failure messages:
/// `p1:start p1:(wr,x,1) p1:commit p2:(rd,x,1)`.
pub fn render_line(h: &History) -> String {
    h.ops()
        .iter()
        .map(|oi| format!("{}:{}", oi.proc, oi.op))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X};

    #[test]
    fn renders_columns_and_line() {
        let mut b = HistoryBuilder::new();
        b.start(ProcId(1));
        b.write(ProcId(1), X, 1);
        b.commit(ProcId(1));
        b.read(ProcId(2), X, 1);
        let h = b.build().unwrap();
        let cols = render_columns(&h);
        assert!(cols.contains("p1"));
        assert!(cols.contains("p2"));
        assert!(cols.contains("(wr,x,1)"));
        assert_eq!(cols.lines().count(), 5); // header + 4 ops
        let line = render_line(&h);
        assert_eq!(line, "p1:start p1:(wr,x,1) p1:commit p2:(rd,x,1)");
    }

    #[test]
    fn empty_history_renders() {
        let h = HistoryBuilder::new().build().unwrap();
        assert_eq!(render_columns(&h), "(empty history)\n");
        assert_eq!(render_line(&h), "");
        assert_eq!(render_timeline(&h), "(empty history)\n");
    }

    #[test]
    fn timeline_has_one_row_per_process_and_one_column_per_op() {
        let mut b = HistoryBuilder::new();
        b.start(ProcId(1));
        b.write(ProcId(1), X, 1);
        b.commit(ProcId(1));
        b.read(ProcId(2), X, 1);
        let h = b.build().unwrap();
        let t = render_timeline(&h);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2, "{t}");
        assert!(lines[0].starts_with("p1 |"), "{t}");
        assert!(lines[1].starts_with("p2 |"), "{t}");
        // Transactional write bracketed; non-transactional read plain.
        assert!(lines[0].contains("[wr,x,1]"), "{t}");
        assert!(lines[1].contains("(rd,x,1)"), "{t}");
        // Each row has a cell (op or ".") for every history index.
        assert!(lines[1].contains('.'), "{t}");
    }
}
