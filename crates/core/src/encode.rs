//! SAT backend for the serialization-order search (CEGAR over CNF).
//!
//! The DFS checkers in [`opacity`](crate::opacity) and
//! [`sgla`](crate::sgla) enumerate transaction serialization orders
//! outer-loop and run an exact witness search per order. This module
//! compiles the *outer* existential — "∃ total order ≺ over the
//! transactions consistent with the real-time (and, for SGLA, program)
//! order" — into CNF for the in-tree CDCL solver
//! ([`jungle_sat`](jungle_sat)) and discharges the *inner* existential
//! (the per-process witness permutations) by counterexample-guided
//! refinement against the DFS leaf routine.
//!
//! ### Encoding
//!
//! One Boolean variable per unordered transaction pair `{i < j}`, true
//! iff `i ≺ j` (a single variable per pair makes totality and
//! antisymmetry structural). For each unordered triple `a < b < c`,
//! exactly two clauses kill the two cyclic assignments of a tournament
//! on three nodes:
//!
//! ```text
//! ¬x_ab ∨ ¬x_bc ∨ x_ac      (forbids a≺b≺c≺a)
//!  x_ab ∨  x_bc ∨ ¬x_ac     (forbids c≺b≺a, a≺c)
//! ```
//!
//! A tournament with no 3-cycle is transitively closed, so every model
//! of the base CNF decodes to a total order. Must-precede constraints
//! (real-time order; for SGLA also per-process program order) become
//! unit clauses. They are consistent with ordering transactions by
//! their first operation, so the base CNF is always satisfiable —
//! `Unsat` only ever arises from learned blocking clauses.
//!
//! ### CEGAR loop
//!
//! Each solver model is decoded to an order and **certified** by the
//! exact DFS leaf search (`try_order` / `witness_for_pairs`). A SAT
//! "yes" is never trusted: a positive verdict always carries a
//! DFS-validated witness. When certification fails, the oracle shrinks
//! the order's adjacent-pair set to a minimal infeasible core `S` by
//! greedy deletion and blocks `⋀_{(a,b)∈S} a ≺ b` with the clause
//! `⋁_{(a,b)∈S} ¬lit(a,b)`.
//!
//! **Soundness of blocking:** the witness search under constraint set
//! `S` places a unit edge per pair (opacity: txn-unit to txn-unit;
//! SGLA: `last(a) → first(b)`, chained through each transaction's
//! program-order edges). For any *total* order whose precedences
//! include `S`, the adjacent-pair edges transitively imply every edge
//! of `S`, so its witness candidates are a subset of those under `S`
//! alone — "no witness under `S`" refutes every such order at once.
//! Because the empty set is tested first, a history with no witness
//! even unconstrained short-circuits to `Unsat` in one round.
//! **Termination:** every blocking clause falsifies the model that
//! produced it, and the model space is finite.
//!
//! Defensively, every clause ever added is mirrored outside the solver
//! and each model is re-checked against the mirror with
//! [`jungle_sat::verify_model`] before decoding.

use crate::history::History;
use crate::ids::{OpId, ProcId};
use crate::model::MemoryModel;
use crate::opacity::{OpacityMemo, OpacityVerdict, Search, ViewCtx};
use crate::par::{Cancel, MEMO_CAP};
use crate::sgla::{SglaMemo, SglaSearch, SglaVerdict};
use crate::spec::SpecRegistry;
use jungle_obs::trace::{self, EventKind};
use jungle_obs::{profile, Counter, SatStats, ScopedSpan, SearchStats};
use jungle_sat::{Lit, Solution, Solver, Var};

/// Which decision procedure answers an opacity/SGLA query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CheckBackend {
    /// The exact DFS over serialization orders (the default).
    #[default]
    Dfs,
    /// The CDCL + CEGAR backend of this module. Positive verdicts are
    /// still certified by the DFS leaf routine.
    Sat,
}

impl CheckBackend {
    /// Parse a CLI spelling (`"dfs"` / `"sat"`).
    pub fn parse(s: &str) -> Option<CheckBackend> {
        match s {
            "dfs" => Some(CheckBackend::Dfs),
            "sat" => Some(CheckBackend::Sat),
            _ => None,
        }
    }

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            CheckBackend::Dfs => "dfs",
            CheckBackend::Sat => "sat",
        }
    }
}

/// The pair-variable order encoding plus a defensive clause mirror.
struct OrderEnc {
    n: usize,
    solver: Solver,
    /// Every clause ever handed to the solver, for [`verify_model`]
    /// re-checks and DIMACS export.
    mirror: Vec<Vec<Lit>>,
}

impl OrderEnc {
    /// Allocate the `n·(n-1)/2` pair variables and add the two
    /// anti-cycle clauses per unordered triple.
    fn new(n: usize) -> OrderEnc {
        let mut solver = Solver::new();
        for _ in 0..n * n.saturating_sub(1) / 2 {
            solver.new_var();
        }
        let mut enc = OrderEnc {
            n,
            solver,
            mirror: Vec::new(),
        };
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let (ab, bc, ac) = (enc.lit(a, b), enc.lit(b, c), enc.lit(a, c));
                    enc.add(vec![ab.negate(), bc.negate(), ac]);
                    enc.add(vec![ab, bc, ac.negate()]);
                }
            }
        }
        enc
    }

    /// The variable for the unordered pair `{i < j}`.
    fn var(&self, i: usize, j: usize) -> Var {
        debug_assert!(i < j && j < self.n);
        (i * (2 * self.n - i - 1) / 2 + (j - i - 1)) as Var
    }

    /// The literal asserting `a ≺ b`.
    fn lit(&self, a: usize, b: usize) -> Lit {
        if a < b {
            Lit::pos(self.var(a, b))
        } else {
            Lit::neg(self.var(b, a))
        }
    }

    fn add(&mut self, lits: Vec<Lit>) {
        self.solver.add_clause(&lits);
        self.mirror.push(lits);
    }

    /// Assert `a ≺ b` unconditionally (a must-precede constraint).
    fn unit(&mut self, a: usize, b: usize) {
        let l = self.lit(a, b);
        self.add(vec![l]);
    }

    /// Forbid every total order whose precedences include all of
    /// `core`.
    fn block(&mut self, core: &[(usize, usize)]) {
        let lits = core.iter().map(|&(a, b)| self.lit(a, b).negate()).collect();
        self.add(lits);
    }

    /// Does the model order `a` before `b`?
    fn before(&self, model: &[bool], a: usize, b: usize) -> bool {
        let l = self.lit(a, b);
        model[l.var() as usize] != l.is_neg()
    }

    /// Decode a model into the total order it represents: a
    /// transaction's position is its predecessor count (well-defined
    /// because the anti-cycle clauses make the tournament transitive).
    fn decode(&self, model: &[bool]) -> Vec<usize> {
        let mut order = vec![usize::MAX; self.n];
        for i in 0..self.n {
            let pos = (0..self.n)
                .filter(|&j| j != i && self.before(model, j, i))
                .count();
            debug_assert_eq!(order[pos], usize::MAX, "model is not a total order");
            order[pos] = i;
        }
        order
    }
}

/// A problem the CEGAR driver can refine: the order-search half is
/// shared; certification and core extraction differ per check kind.
trait OrderOracle {
    /// What a certified positive verdict carries.
    type Witness;

    /// Number of transactions (order-search domain size).
    fn n(&self) -> usize;

    /// Must `a` precede `b` in every admissible order?
    fn must(&self, a: usize, b: usize) -> bool;

    /// Run the exact DFS leaf for `order`; `Some` is a validated
    /// witness.
    fn certify(&mut self, order: &[usize]) -> Option<Self::Witness>;

    /// After a failed [`certify`](Self::certify): a minimal subset of
    /// the order's adjacent pairs that is already infeasible. Empty
    /// means infeasible even unconstrained — no order can ever work.
    fn core(&mut self, order: &[usize]) -> Vec<(usize, usize)>;
}

/// Shrink `pairs` to a minimal infeasible subset by greedy deletion,
/// given `infeasible(subset)` (true when no witness exists under it).
fn shrink_core<F: FnMut(&[(usize, usize)]) -> bool>(
    pairs: &[(usize, usize)],
    mut infeasible: F,
) -> Vec<(usize, usize)> {
    let mut core = pairs.to_vec();
    let mut i = 0;
    while i < core.len() {
        let removed = core.remove(i);
        if infeasible(&core) {
            continue; // redundant pair: keep it out
        }
        core.insert(i, removed);
        i += 1;
    }
    core
}

/// The generic CEGAR driver: encode, solve, certify, block, repeat.
fn cegar<O: OrderOracle>(oracle: &mut O, sat: &mut SatStats) -> Option<(Vec<usize>, O::Witness)> {
    let n = oracle.n();
    let mut enc = OrderEnc::new(n);
    for a in 0..n {
        for b in 0..n {
            if a != b && oracle.must(a, b) {
                enc.unit(a, b);
            }
        }
    }
    trace::emit(
        EventKind::SatSolveBegin,
        u64::from(enc.solver.num_vars()),
        enc.mirror.len() as u64,
    );

    let mut rounds = 0u64;
    let result = loop {
        let before = enc.solver.stats();
        let solution = enc.solver.solve();
        let after = enc.solver.stats();
        if after.conflicts > before.conflicts {
            trace::emit(
                EventKind::SatConflict,
                after.conflicts - before.conflicts,
                after.learned - before.learned,
            );
        }
        if after.restarts > before.restarts {
            trace::emit(EventKind::SatRestart, after.restarts - before.restarts, 0);
        }
        let model = match solution {
            Solution::Model(m) => m,
            Solution::Unsat => break None,
        };
        // Never trust the solver: re-check the model against the
        // clause mirror before acting on it.
        assert!(
            jungle_sat::verify_model(&enc.mirror, &model),
            "CDCL model violates its own clause set"
        );
        let order = enc.decode(&model);
        if let Some(w) = oracle.certify(&order) {
            break Some((order, w));
        }
        rounds += 1;
        let core = oracle.core(&order);
        if core.is_empty() {
            break None; // no witness even unconstrained
        }
        enc.block(&core);
    };

    let st = enc.solver.stats();
    sat.vars += u64::from(enc.solver.num_vars());
    sat.clauses += enc.mirror.len() as u64;
    sat.decisions += st.decisions;
    sat.conflicts += st.conflicts;
    sat.propagations += st.propagations;
    sat.restarts += st.restarts;
    sat.learned += st.learned;
    sat.cegar_rounds += rounds;
    trace::emit(EventKind::SatSolveEnd, result.is_some() as u64, rounds);
    result
}

/// Opacity instance: certification is `Search::try_order`; cores are
/// minimized against the first viewer-constraint set that failed.
struct OpacityOracle<'a> {
    search: &'a Search<'a>,
    ctx: &'a ViewCtx,
    stats: SearchStats,
    memo: OpacityMemo,
    /// Distinct-viewer index from the latest failed certification.
    failed: Option<usize>,
}

impl OrderOracle for OpacityOracle<'_> {
    type Witness = Vec<(ProcId, Vec<OpId>)>;

    fn n(&self) -> usize {
        self.search.n_txns()
    }

    fn must(&self, a: usize, b: usize) -> bool {
        self.search.must_precede(a, b)
    }

    fn certify(&mut self, order: &[usize]) -> Option<Self::Witness> {
        match self.search.try_order(
            order,
            self.ctx,
            &mut self.stats,
            &Cancel::never(),
            &mut self.memo,
        ) {
            Ok(w) => {
                self.failed = None;
                Some(w)
            }
            Err(d) => {
                self.failed = Some(d);
                None
            }
        }
    }

    fn core(&mut self, order: &[usize]) -> Vec<(usize, usize)> {
        let d = self.failed.expect("core queried without a failed certify");
        let (search, ctx) = (self.search, self.ctx);
        let (stats, memo) = (&mut self.stats, &mut self.memo);
        let mut probe = |pairs: &[(usize, usize)]| {
            search
                .witness_for_pairs(ctx, d, pairs, stats, &Cancel::never(), memo)
                .is_none()
        };
        if probe(&[]) {
            return Vec::new();
        }
        let pairs: Vec<(usize, usize)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        shrink_core(&pairs, probe)
    }
}

/// SGLA instance: one viewer-independent witness search per order.
struct SglaOracle<'a> {
    search: &'a SglaSearch<'a>,
    stats: SearchStats,
    memo: SglaMemo,
}

impl OrderOracle for SglaOracle<'_> {
    type Witness = Vec<OpId>;

    fn n(&self) -> usize {
        self.search.n_txns()
    }

    fn must(&self, a: usize, b: usize) -> bool {
        self.search.txn_must_precede(a, b)
    }

    fn certify(&mut self, order: &[usize]) -> Option<Self::Witness> {
        let pairs: Vec<(usize, usize)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        self.search
            .witness_for_pairs(&pairs, &mut self.stats, &Cancel::never(), &mut self.memo)
    }

    fn core(&mut self, order: &[usize]) -> Vec<(usize, usize)> {
        let mut probe = |pairs: &[(usize, usize)]| {
            self.search
                .witness_for_pairs(pairs, &mut self.stats, &Cancel::never(), &mut self.memo)
                .is_none()
        };
        if probe(&[]) {
            return Vec::new();
        }
        let pairs: Vec<(usize, usize)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        shrink_core(&pairs, probe)
    }
}

/// [`check_opacity`](crate::opacity::check_opacity) via the SAT
/// backend. Verdicts agree with the DFS checker by construction:
/// positive answers carry a DFS-certified witness; negative answers
/// are `Unsat` proofs over DFS-refuted cores.
pub fn check_opacity_sat(h: &History, model: &dyn MemoryModel) -> OpacityVerdict {
    check_opacity_sat_with_traced(h, model, &SpecRegistry::registers()).0
}

/// Like [`check_opacity_sat`], additionally returning the solver and
/// refinement counters (wall time included).
pub fn check_opacity_sat_traced(
    h: &History,
    model: &dyn MemoryModel,
) -> (OpacityVerdict, SatStats) {
    check_opacity_sat_with_traced(h, model, &SpecRegistry::registers())
}

/// [`check_opacity_sat`] under explicit sequential specifications.
pub fn check_opacity_sat_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> OpacityVerdict {
    check_opacity_sat_with_traced(h, model, specs).0
}

/// Like [`check_opacity_sat_with`], additionally returning counters.
pub fn check_opacity_sat_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> (OpacityVerdict, SatStats) {
    let _phase = profile::enter("check.opacity_sat");
    let wall = Counter::new();
    let mut sat = SatStats::default();
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        let search = Search::new(&th, model, specs);
        let ctx = search.view_ctx();
        let mut oracle = OpacityOracle {
            search: &search,
            ctx: &ctx,
            stats: SearchStats::default(),
            memo: OpacityMemo::new(MEMO_CAP),
            failed: None,
        };
        let result = cegar(&mut oracle, &mut sat);
        sat.solved += 1;
        if result.is_some() {
            sat.certified += 1;
        }
        Search::verdict(result)
    };
    sat.wall.record(wall.get());
    (verdict, sat)
}

/// [`check_sgla`](crate::sgla::check_sgla) via the SAT backend. Same
/// certification discipline as [`check_opacity_sat`].
pub fn check_sgla_sat(h: &History, model: &dyn MemoryModel) -> SglaVerdict {
    check_sgla_sat_with_traced(h, model, &SpecRegistry::registers()).0
}

/// Like [`check_sgla_sat`], additionally returning the solver and
/// refinement counters (wall time included).
pub fn check_sgla_sat_traced(h: &History, model: &dyn MemoryModel) -> (SglaVerdict, SatStats) {
    check_sgla_sat_with_traced(h, model, &SpecRegistry::registers())
}

/// [`check_sgla_sat`] under explicit sequential specifications.
pub fn check_sgla_sat_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> SglaVerdict {
    check_sgla_sat_with_traced(h, model, specs).0
}

/// Like [`check_sgla_sat_with`], additionally returning counters.
pub fn check_sgla_sat_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> (SglaVerdict, SatStats) {
    let _phase = profile::enter("check.sgla_sat");
    let wall = Counter::new();
    let mut sat = SatStats::default();
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        let search = SglaSearch::new(&th, model, specs);
        let mut oracle = SglaOracle {
            search: &search,
            stats: SearchStats::default(),
            memo: SglaMemo::new(MEMO_CAP),
        };
        let result = cegar(&mut oracle, &mut sat);
        sat.solved += 1;
        if result.is_some() {
            sat.certified += 1;
        }
        search.verdict(result)
    };
    sat.wall.record(wall.get());
    (verdict, sat)
}

/// A base CNF instance in exportable form (the encoding *before* any
/// CEGAR blocking clauses — the part derivable from the history alone).
pub struct CnfDoc {
    comments: Vec<String>,
    vars: u32,
    clauses: Vec<Vec<i64>>,
}

impl CnfDoc {
    fn from_enc(enc: &OrderEnc) -> CnfDoc {
        CnfDoc {
            comments: Vec::new(),
            vars: enc.solver.num_vars(),
            clauses: enc
                .mirror
                .iter()
                .map(|c| c.iter().map(|l| l.dimacs()).collect())
                .collect(),
        }
    }

    /// Add a `c `-prefixed header line (experiment id, model key, …).
    pub fn comment(&mut self, line: impl Into<String>) {
        self.comments.push(line.into());
    }

    /// Number of variables in the instance.
    pub fn vars(&self) -> u32 {
        self.vars
    }

    /// Number of clauses in the instance.
    pub fn clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Render as standard DIMACS CNF.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        for c in &self.comments {
            out.push_str("c ");
            out.push_str(c);
            out.push('\n');
        }
        out.push_str(&format!("p cnf {} {}\n", self.vars, self.clauses.len()));
        for clause in &self.clauses {
            for (i, l) in clause.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&l.to_string());
            }
            out.push_str(" 0\n");
        }
        out
    }
}

fn base_cnf(n: usize, must: impl Fn(usize, usize) -> bool) -> CnfDoc {
    let mut enc = OrderEnc::new(n);
    for a in 0..n {
        for b in 0..n {
            if a != b && must(a, b) {
                enc.unit(a, b);
            }
        }
    }
    CnfDoc::from_enc(&enc)
}

/// The base CNF of the opacity order search for `h` under `model`.
pub fn opacity_cnf(h: &History, model: &dyn MemoryModel) -> CnfDoc {
    let th = model.transform(h);
    let specs = SpecRegistry::registers();
    let search = Search::new(&th, model, &specs);
    base_cnf(search.n_txns(), |a, b| search.must_precede(a, b))
}

/// The base CNF of the SGLA order search for `h` under `model`.
pub fn sgla_cnf(h: &History, model: &dyn MemoryModel) -> CnfDoc {
    let th = model.transform(h);
    let specs = SpecRegistry::registers();
    let search = SglaSearch::new(&th, model, &specs);
    base_cnf(search.n_txns(), |a, b| search.txn_must_precede(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::model::{all_models, Rmo, Sc, Tso};
    use crate::opacity::check_opacity;
    use crate::sgla::check_sgla;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// Figure 1 shape: transactional double write, racing plain reads.
    fn fig1(r_y: u64, r_x: u64) -> History {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, r_y);
        b.read(p(2), X, r_x);
        b.build().unwrap()
    }

    /// Three committed transactions across two processes, the middle
    /// one observing a snapshot.
    fn fig2a(x_obs: u64, y_obs: u64) -> History {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), X, 2);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, x_obs);
        b.read(p(2), Y, y_obs);
        b.commit(p(2));
        b.start(p(1));
        b.write(p(1), Y, 2);
        b.commit(p(1));
        b.build().unwrap()
    }

    fn corpus() -> Vec<History> {
        vec![
            fig1(1, 0),
            fig1(1, 1),
            fig1(0, 0),
            fig2a(1, 0),
            fig2a(2, 0),
            fig2a(2, 2),
            fig2a(0, 0),
        ]
    }

    #[test]
    fn sat_agrees_with_dfs_on_opacity() {
        for h in corpus() {
            for m in all_models() {
                let dfs = check_opacity(&h, m);
                let (sat, stats) = check_opacity_sat_with_traced(&h, m, &SpecRegistry::registers());
                assert_eq!(
                    dfs.is_opaque(),
                    sat.is_opaque(),
                    "backend disagreement under {}",
                    m.name()
                );
                assert_eq!(stats.solved, 1);
                assert_eq!(stats.certified, u64::from(sat.is_opaque()));
            }
        }
    }

    #[test]
    fn sat_agrees_with_dfs_on_sgla() {
        for h in corpus() {
            for m in all_models() {
                let dfs = check_sgla(&h, m);
                let (sat, _) = check_sgla_sat_with_traced(&h, m, &SpecRegistry::registers());
                assert_eq!(
                    dfs.is_sgla(),
                    sat.is_sgla(),
                    "backend disagreement under {}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn positive_sat_verdict_carries_dfs_grade_witness() {
        let h = fig1(1, 1);
        let v = check_opacity_sat(&h, &Sc);
        assert!(v.is_opaque());
        assert_eq!(v.witnesses().len(), 2);
        for (_, w) in v.witnesses() {
            assert_eq!(w.len(), 6); // permutation of all six operations
        }
        // The order respects real time: the only committed txn is first.
        assert_eq!(v.txn_order(), &[0]);
    }

    #[test]
    fn negative_histories_report_empty_witness() {
        let v = check_opacity_sat(&fig1(1, 0), &Sc);
        assert!(!v.is_opaque());
        assert!(v.witnesses().is_empty());
        assert!(v.txn_order().is_empty());
    }

    #[test]
    fn model_discriminates_like_dfs() {
        // The classic fig1 relaxation split: forbidden under SC/TSO,
        // allowed under RMO.
        assert!(!check_opacity_sat(&fig1(1, 0), &Sc).is_opaque());
        assert!(!check_opacity_sat(&fig1(1, 0), &Tso).is_opaque());
        assert!(check_opacity_sat(&fig1(1, 0), &Rmo).is_opaque());
    }

    #[test]
    fn stats_count_encoding_and_refinement() {
        // fig2a(2, 2) is non-opaque under SC but has witnesses for some
        // unconstrained orders, forcing at least one CEGAR round.
        let (v, stats) =
            check_opacity_sat_with_traced(&fig2a(2, 2), &Sc, &SpecRegistry::registers());
        assert!(!v.is_opaque());
        assert!(stats.vars >= 3, "three txns need three pair variables");
        assert!(stats.clauses > 0);
        assert_eq!(stats.certified, 0);
        assert_eq!(stats.wall.count, 1);
    }

    #[test]
    fn empty_history_is_trivially_opaque() {
        let h = HistoryBuilder::new().build().unwrap();
        assert!(check_opacity_sat(&h, &Sc).is_opaque());
        assert!(check_sgla_sat(&h, &Sc).is_sgla());
    }

    #[test]
    fn dimacs_export_is_well_formed() {
        let mut doc = opacity_cnf(&fig2a(2, 0), &Sc);
        doc.comment("experiment=unit-test model=SC kind=Opacity");
        let text = doc.to_dimacs();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "c experiment=unit-test model=SC kind=Opacity"
        );
        let header = lines.next().unwrap();
        assert!(header.starts_with("p cnf "));
        let parts: Vec<&str> = header.split_whitespace().collect();
        let vars: i64 = parts[2].parse().unwrap();
        let clauses: usize = parts[3].parse().unwrap();
        assert_eq!(vars, i64::from(doc.vars()));
        assert_eq!(clauses, doc.clauses());
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), clauses);
        for line in body {
            assert!(line.ends_with(" 0"));
            for tok in line.split_whitespace() {
                let v: i64 = tok.parse().unwrap();
                assert!(v.unsigned_abs() <= vars.unsigned_abs());
            }
        }
    }

    #[test]
    fn backend_parses_cli_spellings() {
        assert_eq!(CheckBackend::parse("dfs"), Some(CheckBackend::Dfs));
        assert_eq!(CheckBackend::parse("sat"), Some(CheckBackend::Sat));
        assert_eq!(CheckBackend::parse("smt"), None);
        assert_eq!(CheckBackend::default(), CheckBackend::Dfs);
        assert_eq!(CheckBackend::Sat.name(), "sat");
    }
}
