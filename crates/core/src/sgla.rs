//! Single global lock atomicity — SGLA (§6.2).
//!
//! SGLA is the weaker correctness notion under which transactions behave
//! like critical sections of one global lock: transactions are isolated
//! from *each other*, but **not** from non-transactional operations. A
//! history `h` ensures SGLA parametrized by `M = (τ, R)` iff there is a
//! view `v` in a *well-formed extension* of `R` applied to `τ(h)` such
//! that for every process there is a **transactionally sequential**
//! permutation of `τ(h)` (transactions do not overlap one another, but
//! non-transactional operations may interleave within them) respecting
//! `v(p)` in which every operation is legal.
//!
//! ### The extension chosen here
//!
//! The paper constrains well-formed extensions of `R` by lock ("roach
//! motel") semantics of `start` (lock) and `commit`/`abort` (unlock) but
//! leaves the exact extension open. This checker uses the *most
//! permissive* extension satisfying the paper's conditions (i)–(iii),
//! plus real-time consistency of the global lock:
//!
//! * one total order over all transactions, shared by every process
//!   (condition (i)), enumerated existentially; it must extend both the
//!   per-process program order of transactions and the cross-process
//!   real-time order (a global lock can only be acquired in real-time
//!   consistent order);
//! * a non-transactional operation preceding its own process's
//!   transaction `T` may migrate *into* `T`'s critical section but not
//!   past its end (conditions (ii)/(iii)): it must precede `T`'s last
//!   operation; symmetrically an operation following `T` must follow
//!   `T`'s `start`;
//! * between non-transactional operations, the base model's required
//!   pairs apply unchanged.
//!
//! Legality uses **critical-section semantics**
//! ([`CsChecker`](crate::legal::CsChecker)): a transaction's writes take
//! effect in place at their positions — interleaved non-transactional
//! reads observe them — and aborts roll back via an undo log. This is
//! the reading under which the paper's Theorem 7 proof goes through:
//! the Figure 6 TM's commit-time updates are observable mid-commit by
//! uninstrumented reads, and SGLA (unlike opacity) deems that correct.
//!
//! Because every constraint above is implied by the constraints of
//! parametrized opacity, and the two legality semantics coincide on
//! fully sequential histories, Theorem 6 (*parametrized opacity implies
//! SGLA*) holds by construction — and is property-tested in the crate's
//! test suite. Theorem 7 (an uninstrumented global-lock TM guarantees
//! SGLA for **every** memory model) is exercised end-to-end in
//! `jungle-mc`.

use crate::history::{History, TxnStatus};
use crate::ids::{OpId, ProcId};
use crate::legal::CsChecker;
use crate::model::MemoryModel;
use crate::par::{run_order_pool, Cancel, ParallelConfig, WitnessMemo, MEMO_CAP};
use crate::spec::SpecRegistry;
use jungle_obs::{profile, Counter, ScopedSpan, SearchStats};

/// The verdict of an SGLA check.
#[derive(Clone, Debug)]
pub struct SglaVerdict {
    ok: bool,
    witnesses: Vec<(ProcId, Vec<OpId>)>,
    txn_order: Vec<usize>,
}

impl SglaVerdict {
    /// Did the history ensure SGLA parametrized by the model?
    pub fn is_sgla(&self) -> bool {
        self.ok
    }

    /// Witness transactionally sequential histories (one per process),
    /// as operation-id sequences over the transformed history.
    pub fn witnesses(&self) -> &[(ProcId, Vec<OpId>)] {
        &self.witnesses
    }

    /// The shared transaction order used by the witnesses.
    pub fn txn_order(&self) -> &[usize] {
        &self.txn_order
    }
}

/// Check SGLA parametrized by `model` with register semantics.
pub fn check_sgla(h: &History, model: &dyn MemoryModel) -> SglaVerdict {
    check_sgla_with(h, model, &SpecRegistry::registers())
}

/// Like [`check_sgla`], additionally returning counters describing the
/// search (including wall time, which the untraced entry points never
/// measure).
pub fn check_sgla_traced(h: &History, model: &dyn MemoryModel) -> (SglaVerdict, SearchStats) {
    check_sgla_with_traced(h, model, &SpecRegistry::registers())
}

/// Check SGLA parametrized by `model` under explicit sequential
/// specifications.
pub fn check_sgla_with(h: &History, model: &dyn MemoryModel, specs: &SpecRegistry) -> SglaVerdict {
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let th = model.transform(h);
    SglaSearch {
        h: &th,
        model,
        specs,
    }
    .run(&mut stats)
}

/// Like [`check_sgla_with`], additionally returning search stats.
pub fn check_sgla_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> (SglaVerdict, SearchStats) {
    let _phase = profile::enter("check.sgla");
    let wall = Counter::new();
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        SglaSearch {
            h: &th,
            model,
            specs,
        }
        .run(&mut stats)
    };
    stats.wall_ns = wall.get();
    (verdict, stats)
}

/// Parallel variant of [`check_sgla`]: fans the transaction-order
/// enumeration over a scoped worker pool. Verdict **and** witness are
/// exactly those of the serial checker for every thread count (see the
/// [`par`](crate::par) module docs); falls back to the serial path
/// below `cfg.min_units` operations.
pub fn check_sgla_par(h: &History, model: &dyn MemoryModel, cfg: &ParallelConfig) -> SglaVerdict {
    check_sgla_par_with(h, model, &SpecRegistry::registers(), cfg)
}

/// Like [`check_sgla_par`], additionally returning search stats
/// (per-worker counters merged; `workers`/`stolen_prefixes`/`cache_hits`
/// describe the pool).
pub fn check_sgla_par_traced(
    h: &History,
    model: &dyn MemoryModel,
    cfg: &ParallelConfig,
) -> (SglaVerdict, SearchStats) {
    check_sgla_par_with_traced(h, model, &SpecRegistry::registers(), cfg)
}

/// Parallel variant of [`check_sgla_with`].
pub fn check_sgla_par_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
    cfg: &ParallelConfig,
) -> SglaVerdict {
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let th = model.transform(h);
    SglaSearch {
        h: &th,
        model,
        specs,
    }
    .run_par(cfg, &mut stats)
}

/// Like [`check_sgla_par_with`], additionally returning search stats.
pub fn check_sgla_par_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
    cfg: &ParallelConfig,
) -> (SglaVerdict, SearchStats) {
    let _phase = profile::enter("check.sgla_par");
    let wall = Counter::new();
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        SglaSearch {
            h: &th,
            model,
            specs,
        }
        .run_par(cfg, &mut stats)
    };
    stats.wall_ns = wall.get();
    (verdict, stats)
}

/// Per-worker memo of inner witness searches, keyed by the exact
/// deduplicated op-level edge set (the only varying input).
pub(crate) type SglaMemo = WitnessMemo<Vec<(usize, usize)>, Option<Vec<OpId>>>;

pub(crate) struct SglaSearch<'a> {
    h: &'a History,
    model: &'a dyn MemoryModel,
    specs: &'a SpecRegistry,
}

/// Node metadata for the op-level topological search.
struct Node {
    /// History index of the operation.
    idx: usize,
    /// Transaction (index into `History::txns`) if transactional.
    txn: Option<usize>,
    /// True if this is the last operation of a live transaction (the
    /// legality checker suspends the overlay after it).
    last_of_live: bool,
}

impl<'a> SglaSearch<'a> {
    pub(crate) fn new(h: &'a History, model: &'a dyn MemoryModel, specs: &'a SpecRegistry) -> Self {
        SglaSearch { h, model, specs }
    }

    /// Number of transactions in the (transformed) history.
    pub(crate) fn n_txns(&self) -> usize {
        self.h.txns().len()
    }

    fn run(&self, stats: &mut SearchStats) -> SglaVerdict {
        // SGLA schedules at operation granularity: every op is a unit.
        stats.units += self.h.len() as u64;
        let n_txn = self.h.txns().len();

        // Enumerate transaction total orders consistent with program
        // order and real-time order.
        let mut order = Vec::with_capacity(n_txn);
        let mut used = vec![false; n_txn];
        let mut result: Option<(Vec<usize>, Vec<OpId>)> = None;
        self.enum_orders(
            &mut order,
            &mut used,
            &mut result,
            stats,
            &Cancel::never(),
            &mut SglaMemo::disabled(),
        );
        self.verdict(result)
    }

    /// Parallel counterpart of [`SglaSearch::run`]: feed the
    /// transaction-order enumeration to a work-stealing frontier of
    /// scoped workers. Returns exactly what `run` would.
    fn run_par(&self, cfg: &ParallelConfig, stats: &mut SearchStats) -> SglaVerdict {
        if cfg.serial_for(self.h.len()) {
            return self.run(stats);
        }
        let threads = cfg.effective_threads();
        stats.units += self.h.len() as u64;
        stats.workers = stats.workers.max(threads as u64);
        let n_txn = self.h.txns().len();
        let result = run_order_pool(
            threads,
            n_txn,
            |prefix| self.valid_extensions(prefix),
            || SglaMemo::new(MEMO_CAP),
            |prefix, cancel, memo, local| {
                let mut order = prefix.to_vec();
                let mut used = vec![false; n_txn];
                for &t in prefix {
                    used[t] = true;
                }
                let mut result: Option<(Vec<usize>, Vec<OpId>)> = None;
                self.enum_orders(&mut order, &mut used, &mut result, local, cancel, memo);
                result
            },
            stats,
        );
        self.verdict(result)
    }

    pub(crate) fn verdict(&self, result: Option<(Vec<usize>, Vec<OpId>)>) -> SglaVerdict {
        match result {
            Some((txn_order, seq)) => {
                let witnesses = self
                    .h
                    .procs()
                    .into_iter()
                    .map(|p| (p, seq.clone()))
                    .collect();
                SglaVerdict {
                    ok: true,
                    witnesses,
                    txn_order,
                }
            }
            None => SglaVerdict {
                ok: false,
                witnesses: Vec::new(),
                txn_order: Vec::new(),
            },
        }
    }

    /// Must transaction `a` come before transaction `b` in the shared
    /// total order? (Program order on one process; real-time order
    /// across processes.)
    pub(crate) fn txn_must_precede(&self, a: usize, b: usize) -> bool {
        let txns = self.h.txns();
        if txns[a].proc == txns[b].proc {
            return txns[a].first() < txns[b].first();
        }
        txns[a].status.is_completed() && txns[a].last() < txns[b].first()
    }

    /// May transaction `t` come next, given the already-placed `used`?
    fn can_place(&self, t: usize, used: &[bool]) -> bool {
        let n_txn = self.h.txns().len();
        (0..n_txn).all(|u| u == t || used[u] || !self.txn_must_precede(u, t))
    }

    /// The transactions that may validly extend `prefix`, in ascending
    /// index order — the serial DFS candidate order.
    pub(crate) fn valid_extensions(&self, prefix: &[usize]) -> Vec<usize> {
        let n_txn = self.h.txns().len();
        let mut used = vec![false; n_txn];
        for &t in prefix {
            used[t] = true;
        }
        (0..n_txn)
            .filter(|&t| !used[t] && self.can_place(t, &used))
            .collect()
    }

    fn enum_orders(
        &self,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        result: &mut Option<(Vec<usize>, Vec<OpId>)>,
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut SglaMemo,
    ) {
        if result.is_some() || cancel.hit() {
            return;
        }
        let n_txn = self.h.txns().len();
        if order.len() == n_txn {
            stats.txn_orders += 1;
            if let Some(seq) = self.find_witness(order, stats, cancel, memo) {
                *result = Some((order.clone(), seq));
            }
            return;
        }
        for t in 0..n_txn {
            if used[t] || !self.can_place(t, used) {
                continue;
            }
            used[t] = true;
            order.push(t);
            self.enum_orders(order, used, result, stats, cancel, memo);
            order.pop();
            used[t] = false;
        }
    }

    /// Build op-level edges for the fixed transaction order and run the
    /// topological/legality search. The constraints are
    /// viewer-independent for all bundled models, so a single search
    /// covers every process's view.
    fn find_witness(
        &self,
        txn_order: &[usize],
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut SglaMemo,
    ) -> Option<Vec<OpId>> {
        let pairs: Vec<(usize, usize)> = txn_order.windows(2).map(|w| (w[0], w[1])).collect();
        self.witness_for_pairs(&pairs, stats, cancel, memo)
    }

    /// Like [`Self::find_witness`], but under an arbitrary set of
    /// transaction-precedence `pairs` (block edges `last(a) → first(b)`)
    /// rather than a full order's adjacent pairs. A subset of pairs is a
    /// weaker constraint set, so "no witness" refutes every total order
    /// whose precedences include the pairs (the SAT backend's
    /// blocking-core query).
    pub(crate) fn witness_for_pairs(
        &self,
        pairs: &[(usize, usize)],
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut SglaMemo,
    ) -> Option<Vec<OpId>> {
        let h = self.h;
        let n = h.len();
        let txns = h.txns();

        let nodes: Vec<Node> = (0..n)
            .map(|i| {
                let txn = h.txn_of(i);
                let last_of_live = txn
                    .map(|t| txns[t].status == TxnStatus::Live && txns[t].last() == i)
                    .unwrap_or(false);
                Node {
                    idx: i,
                    txn,
                    last_of_live,
                }
            })
            .collect();

        let mut edges: Vec<(usize, usize)> = Vec::new();

        // Program order within each transaction.
        for t in txns {
            for w in t.op_indices.windows(2) {
                edges.push((w[0], w[1]));
            }
        }
        // Block order between transactions constrained by `pairs`.
        for &(a, b) in pairs {
            edges.push((txns[a].last(), txns[b].first()));
        }
        // Roach-motel edges between a process's non-transactional ops
        // and its own transactions.
        for i in 0..n {
            if h.is_transactional(i) {
                continue;
            }
            for t in txns {
                if t.proc != h.ops()[i].proc {
                    continue;
                }
                if i < t.first() {
                    // May enter the critical section, not cross its end.
                    edges.push((i, t.last()));
                } else if i > t.last() {
                    edges.push((t.first(), i));
                }
            }
        }
        // Base-model view edges between non-transactional ops of the
        // same process.
        let ops = h.ops();
        for i in 0..n {
            if h.is_transactional(i) || ops[i].op.command().is_none() {
                continue;
            }
            for j in (i + 1)..n {
                if h.is_transactional(j)
                    || ops[j].op.command().is_none()
                    || ops[i].proc != ops[j].proc
                {
                    continue;
                }
                if self.model.required(h, i, j) {
                    edges.push((i, j));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        // Distinct txn orders can collapse to the same op-level edge
        // set (block edges shadowed by program order); replay those.
        if let Some(hit) = memo.get(&edges) {
            stats.cache_hits += 1;
            return hit.clone();
        }

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &(a, b) in &edges {
            succs[a].push(b);
            indeg[b] += 1;
        }

        let mut seq = Vec::with_capacity(n);
        let checker = CsChecker::new(self.specs);
        let result = if self.dfs(
            &nodes, &succs, &mut indeg, &mut seq, &checker, None, stats, cancel,
        ) {
            Some(seq.into_iter().map(|i| h.ops()[i].id).collect())
        } else {
            None
        };
        // A cancelled search may report "no witness" spuriously — never
        // memoize it.
        if !cancel.hit() {
            memo.put(edges, result.clone());
        }
        result
    }

    /// `open` is the transaction whose critical section is currently
    /// entered (a txn has started but not yet committed/aborted/been
    /// suspended). With a full order's chain of block edges this guard
    /// never fires — other transactions' ops are edge-blocked anyway —
    /// but under a *subset* of block pairs (the SAT backend's core
    /// probes) it is what keeps critical sections from interleaving.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        nodes: &[Node],
        succs: &[Vec<usize>],
        indeg: &mut Vec<usize>,
        seq: &mut Vec<usize>,
        checker: &CsChecker<'_>,
        open: Option<usize>,
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
    ) -> bool {
        let n = nodes.len();
        if seq.len() == n {
            return true;
        }
        if cancel.hit() {
            return false;
        }
        let mut placed = vec![false; n];
        for &i in seq.iter() {
            placed[i] = true;
        }
        for u in 0..n {
            if placed[u] || indeg[u] != 0 {
                continue;
            }
            let node = &nodes[u];
            if let (Some(o), Some(t)) = (open, node.txn) {
                if o != t {
                    continue; // one critical section at a time
                }
            }
            stats.nodes += 1;
            let mut c = checker.clone();
            if !c.step(&self.h.ops()[node.idx].op, node.txn.is_some()) {
                stats.prune_hits += 1;
                continue;
            }
            if node.last_of_live {
                c.suspend_live();
            }
            let next_open = if c.in_txn() { node.txn.or(open) } else { None };
            for &s in &succs[u] {
                indeg[s] -= 1;
            }
            seq.push(u);
            stats.note_depth(seq.len());
            if self.dfs(nodes, succs, indeg, seq, &c, next_open, stats, cancel) {
                return true;
            }
            seq.pop();
            stats.backtracks += 1;
            for &s in &succs[u] {
                indeg[s] += 1;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::model::{all_models, Relaxed, Rmo, Sc};
    use crate::opacity::check_opacity;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    #[test]
    fn sgla_weaker_than_opacity_fig1() {
        // Figure 1 outcome (y=1, x=0) is not SC-opaque, and it is not
        // SGLA/SC either (the reads are still PO-ordered and the txn is
        // a critical section)…
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, 1);
        b.read(p(2), X, 0);
        let h = b.build().unwrap();
        assert!(!check_sgla(&h, &Sc).is_sgla());
        // …but under RMO both are allowed.
        assert!(check_sgla(&h, &Rmo).is_sgla());
    }

    #[test]
    fn sgla_allows_nontxn_interleaving_opacity_forbids() {
        // A non-transactional write lands between two transactional
        // reads of the same variable: forbidden by opacity (isolation),
        // allowed by SGLA (no isolation from non-transactional ops).
        let mut b = HistoryBuilder::new();
        b.start(p(2));
        b.read(p(2), X, 0);
        b.write(p(1), X, 5);
        b.read(p(2), X, 5);
        b.commit(p(2));
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(check_sgla(&h, &Sc).is_sgla());
    }

    #[test]
    fn sgla_still_isolates_transactions_from_each_other() {
        // T2 reads x twice around T1's committed write: transactions
        // are critical sections, so the torn read is forbidden even
        // under SGLA.
        let mut b = HistoryBuilder::new();
        b.start(p(2));
        b.read(p(2), X, 0);
        b.start(p(1));
        b.write(p(1), X, 5);
        b.commit(p(1));
        b.read(p(2), X, 5);
        b.commit(p(2));
        let h = b.build().unwrap();
        assert!(!check_sgla(&h, &Sc).is_sgla());
        assert!(!check_sgla(&h, &Relaxed).is_sgla());
    }

    #[test]
    fn theorem6_opaque_implies_sgla_examples() {
        // Theorem 6 on a few concrete histories (the proptest suite
        // covers random ones).
        let histories: Vec<crate::history::History> = vec![
            {
                let mut b = HistoryBuilder::new();
                b.start(p(1));
                b.write(p(1), X, 1);
                b.write(p(1), Y, 1);
                b.commit(p(1));
                b.read(p(2), Y, 1);
                b.read(p(2), X, 1);
                b.build().unwrap()
            },
            {
                let mut b = HistoryBuilder::new();
                b.write(p(1), X, 1);
                b.start(p(2));
                b.read(p(2), X, 1);
                b.commit(p(2));
                b.build().unwrap()
            },
        ];
        for h in &histories {
            for m in all_models() {
                if check_opacity(h, m).is_opaque() {
                    assert!(
                        check_sgla(h, m).is_sgla(),
                        "opaque but not SGLA under {} — Theorem 6 violated",
                        m.name()
                    );
                }
            }
        }
    }

    #[test]
    fn roach_motel_allows_entering_critical_section() {
        // p1: non-txn write of x, then a transaction reading y.
        // p2's transaction writes y before p1's txn starts… the point:
        // p1's non-txn write may slide into its own transaction's
        // critical section but not past its end.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(1));
        b.read(p(1), X, 1);
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(check_sgla(&h, &Sc).is_sgla());
    }

    #[test]
    fn nontxn_op_cannot_cross_own_txn_end() {
        // p1 writes x non-transactionally *before* its transaction, and
        // the transaction reads x: the write cannot be deferred past the
        // transaction's end, so reading the old value inside the txn
        // with no other writer is illegal — under SC, where the
        // program-order pair (write x, read x within txn) is… note the
        // read is transactional, so only the roach-motel edge applies:
        // write must precede the txn's last op. Reading x=0 inside the
        // txn then requires the write to come after the read but before
        // commit — which IS permitted by the chosen extension.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(1));
        b.read(p(1), X, 0); // old value: write slid between read & commit
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(check_sgla(&h, &Sc).is_sgla());

        // But it cannot cross the commit: a *later* observer of the
        // same process must see the write ordered before anything after
        // the transaction.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(1));
        b.commit(p(1));
        b.read(p(1), X, 0); // PO + roach motel: write before commit < read
        let h = b.build().unwrap();
        assert!(!check_sgla(&h, &Sc).is_sgla());
    }

    #[test]
    fn same_process_transactions_keep_program_order() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.commit(p(1));
        b.start(p(1));
        b.read(p(1), X, 0); // would need T2 before T1
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(!check_sgla(&h, &Relaxed).is_sgla());
    }

    #[test]
    fn live_txn_supported() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 9);
        b.read(p(2), X, 0); // must not see live txn's write
        let h = b.build().unwrap();
        assert!(check_sgla(&h, &Sc).is_sgla());

        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 9);
        b.read(p(2), X, 9);
        let h = b.build().unwrap();
        // Critical-section semantics: the open transaction's in-place
        // write IS observable by a concurrent non-transactional read
        // (think of a global-lock TM with in-place updates). SGLA
        // allows it; opacity (tested elsewhere) forbids it.
        assert!(check_sgla(&h, &Sc).is_sgla());
    }

    #[test]
    fn empty_history_sgla() {
        let h = HistoryBuilder::new().build().unwrap();
        for m in all_models() {
            assert!(check_sgla(&h, m).is_sgla());
        }
    }
}
