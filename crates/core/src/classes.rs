//! Classification of memory models by the reorderings they forbid
//! (§3.2, *Classes of memory models*).
//!
//! The paper defines four classes over memory models with identity
//! transformation:
//!
//! * `Mrr = M^i_rr ∪ M^c_rr ∪ M^d_rr` — *read-read restrictive*: every
//!   view must order a read before a later (independent / control-
//!   dependent / data-dependent) read of a different variable by the
//!   same process.
//! * `Mrw = M^i_rw ∪ M^c_rw ∪ M^d_rw` — *read-write restrictive*.
//! * `Mwr` — *write-read restrictive*.
//! * `Mww` — *write-write restrictive*.
//!
//! [`ClassSet`] records membership in the eight primitive classes; the
//! union classes are derived ([`ClassSet::in_mrr`] etc.). The key
//! theorems quantify over these unions: Theorem 1 shows uninstrumented
//! parametrized opacity is impossible whenever the model is in *any* of
//! the four, Theorem 4 needs `M ∉ Mrr`, and Theorem 5 needs
//! `M ∉ Mrr ∪ Mwr`.
//!
//! Membership is a semantic property (a universally quantified statement
//! about `required` pairs over all histories); each
//! [`MemoryModel`](crate::model::MemoryModel) *declares* its membership,
//! and [`probe_classes`] checks the declaration against the model's
//! `required` function on a family of witness histories — positive
//! claims are spot-checked on canonical pattern pairs, negative claims
//! are confirmed by a concrete counterexample pair.

use crate::builder::HistoryBuilder;
use crate::history::History;
use crate::ids::{ProcId, Var};
use crate::model::MemoryModel;
use crate::op::DepKind;

/// Membership in the paper's eight primitive reorder-restriction
/// classes. `rr_i` is `M^i_rr`, `rr_c` is `M^c_rr`, and so on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[allow(missing_docs)]
pub struct ClassSet {
    pub rr_i: bool,
    pub rr_c: bool,
    pub rr_d: bool,
    pub rw_i: bool,
    pub rw_c: bool,
    pub rw_d: bool,
    pub wr: bool,
    pub ww: bool,
}

impl ClassSet {
    /// `M ∈ Mrr = M^i_rr ∪ M^c_rr ∪ M^d_rr`.
    pub fn in_mrr(&self) -> bool {
        self.rr_i || self.rr_c || self.rr_d
    }

    /// `M ∈ Mrw = M^i_rw ∪ M^c_rw ∪ M^d_rw`.
    pub fn in_mrw(&self) -> bool {
        self.rw_i || self.rw_c || self.rw_d
    }

    /// `M ∈ Mwr`.
    pub fn in_mwr(&self) -> bool {
        self.wr
    }

    /// `M ∈ Mww`.
    pub fn in_mww(&self) -> bool {
        self.ww
    }

    /// `M ∈ Mrr ∪ Mrw ∪ Mwr ∪ Mww` — the hypothesis of Theorem 1:
    /// uninstrumented TM implementations cannot guarantee opacity
    /// parametrized by any such model.
    pub fn in_any(&self) -> bool {
        self.in_mrr() || self.in_mrw() || self.in_mwr() || self.in_mww()
    }
}

/// The canonical same-process, different-variable operation pattern for
/// each primitive class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// read x; read y (independent).
    RrIndep,
    /// read x; control-dependent read y.
    RrCtrl,
    /// read x; data-dependent read y.
    RrData,
    /// read x; write y (independent).
    RwIndep,
    /// read x; control-dependent write y.
    RwCtrl,
    /// read x; data-dependent write y.
    RwData,
    /// write x; read y.
    WrPat,
    /// write x; write y.
    WwPat,
}

/// Build the two-operation witness history for a pattern.
pub fn pattern_history(pat: Pattern) -> History {
    let p = ProcId(1);
    let (x, y) = (Var(0), Var(1));
    let mut b = HistoryBuilder::new();
    match pat {
        Pattern::RrIndep => {
            b.read(p, x, 0);
            b.read(p, y, 0);
        }
        Pattern::RrCtrl => {
            let r = b.read(p, x, 0);
            b.dep_read(p, y, 0, DepKind::Control, vec![r]);
        }
        Pattern::RrData => {
            let r = b.read(p, x, 0);
            b.dep_read(p, y, 0, DepKind::Data, vec![r]);
        }
        Pattern::RwIndep => {
            b.read(p, x, 0);
            b.write(p, y, 1);
        }
        Pattern::RwCtrl => {
            let r = b.read(p, x, 0);
            b.dep_write(p, y, 1, DepKind::Control, vec![r]);
        }
        Pattern::RwData => {
            let r = b.read(p, x, 0);
            b.dep_write(p, y, 1, DepKind::Data, vec![r]);
        }
        Pattern::WrPat => {
            b.write(p, x, 1);
            b.read(p, y, 0);
        }
        Pattern::WwPat => {
            b.write(p, x, 1);
            b.write(p, y, 1);
        }
    }
    b.build().unwrap()
}

/// Variant of [`pattern_history`] in which the pattern's first
/// operation (a read of `x`) is preceded by the process's own write of
/// the same value, making it a *store-forwarded* read. Class membership
/// quantifies over all histories, and models such as
/// [`TsoForwarding`](crate::model::TsoForwarding) treat forwarded reads
/// specially, so read-first patterns are probed in both contexts.
pub fn pattern_history_forwarded(pat: Pattern) -> Option<History> {
    let p = ProcId(1);
    let (x, y) = (Var(0), Var(1));
    let mut b = HistoryBuilder::new();
    b.write(p, x, 0); // makes the subsequent read of x forwarded
    match pat {
        Pattern::RrIndep => {
            b.read(p, x, 0);
            b.read(p, y, 0);
        }
        Pattern::RrCtrl => {
            let r = b.read(p, x, 0);
            b.dep_read(p, y, 0, DepKind::Control, vec![r]);
        }
        Pattern::RrData => {
            let r = b.read(p, x, 0);
            b.dep_read(p, y, 0, DepKind::Data, vec![r]);
        }
        Pattern::RwIndep => {
            b.read(p, x, 0);
            b.write(p, y, 1);
        }
        Pattern::RwCtrl => {
            let r = b.read(p, x, 0);
            b.dep_write(p, y, 1, DepKind::Control, vec![r]);
        }
        Pattern::RwData => {
            let r = b.read(p, x, 0);
            b.dep_write(p, y, 1, DepKind::Data, vec![r]);
        }
        Pattern::WrPat | Pattern::WwPat => return None,
    }
    Some(b.build().unwrap())
}

/// Probe a model's `required` function on the eight canonical patterns
/// (each read-first pattern in both the plain and the store-forwarded
/// context), returning the observed [`ClassSet`].
///
/// For the paper's models (whose ordering requirements depend only on
/// the local shape of the operation pair), the observed set coincides
/// with the semantic class membership; the crate's tests assert it
/// equals the declared [`MemoryModel::classes`].
pub fn probe_classes(model: &dyn MemoryModel) -> ClassSet {
    let probe = |pat: Pattern| {
        let h = pattern_history(pat);
        let plain = model.required(&h, 0, 1);
        let fwd = match pattern_history_forwarded(pat) {
            Some(h) => model.required(&h, 1, 2),
            None => true,
        };
        plain && fwd
    };
    ClassSet {
        rr_i: probe(Pattern::RrIndep),
        rr_c: probe(Pattern::RrCtrl),
        rr_d: probe(Pattern::RrData),
        rw_i: probe(Pattern::RwIndep),
        rw_c: probe(Pattern::RwCtrl),
        rw_d: probe(Pattern::RwData),
        wr: probe(Pattern::WrPat),
        ww: probe(Pattern::WwPat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{all_models, Alpha, Pso, Relaxed, Rmo, Sc, Tso};

    #[test]
    fn declared_classes_match_probed() {
        for m in all_models() {
            assert_eq!(
                m.classes(),
                probe_classes(m),
                "declared vs probed classes disagree for {}",
                m.name()
            );
        }
    }

    #[test]
    fn paper_classification_table() {
        // §3.2: "We classify some well-known memory models…"
        let sc = Sc.classes();
        assert!(sc.rr_i && sc.rw_i && sc.wr && sc.ww);

        let tso = Tso.classes();
        assert!(tso.rr_i && tso.rw_i && tso.ww && !tso.wr);

        let pso = Pso.classes();
        assert!(pso.rr_i && pso.rw_i && !pso.ww && !pso.wr);

        let rmo = Rmo.classes();
        assert!(rmo.rr_d && rmo.in_mrw() && !rmo.ww && !rmo.wr);
        assert!(!rmo.rr_i && !rmo.rw_i);

        let alpha = Alpha.classes();
        assert!(alpha.in_mrw() && !alpha.in_mrr() && !alpha.wr && !alpha.ww);

        let relaxed = Relaxed.classes();
        assert!(!relaxed.in_any());
    }

    #[test]
    fn union_class_helpers() {
        let c = ClassSet {
            rr_d: true,
            ..ClassSet::default()
        };
        assert!(c.in_mrr() && !c.in_mrw() && c.in_any());
        let c = ClassSet {
            wr: true,
            ..ClassSet::default()
        };
        assert!(c.in_mwr() && c.in_any());
        assert!(!ClassSet::default().in_any());
    }

    #[test]
    fn implication_rr_i_subsumes_dependent_variants_for_identity_models() {
        // "Generally, if a memory model M is in M^i_rr, then M ∈ M^c_rr
        // and M ∈ M^d_rr": dependent reads are reads, so a model that
        // orders all read→read pairs orders dependent ones too. Verify
        // for the declared sets of all bundled models.
        for m in all_models() {
            let c = m.classes();
            if c.rr_i {
                assert!(
                    c.rr_c && c.rr_d,
                    "{} violates M^i_rr ⊆ M^c_rr ∩ M^d_rr",
                    m.name()
                );
            }
            if c.rw_i {
                assert!(
                    c.rw_c && c.rw_d,
                    "{} violates M^i_rw ⊆ M^c_rw ∩ M^d_rw",
                    m.name()
                );
            }
        }
    }
}
