//! Histories, transactions, the real-time order `≺h`, and `visible(s)`
//! (§2 *Preliminaries*).
//!
//! A [`History`] is a sequence of [`OpInstance`]s with unique operation
//! identifiers. On construction it is checked for *well-formedness*
//! (matching `start`/`commit`/`abort`, no nested transactions, dependency
//! sets referring only to preceding operations of the same process) and
//! its transactions are parsed once, so that queries such as
//! [`History::is_transactional`] and [`History::precedes_rt`] (the
//! paper's `≺h`) are cheap.

use crate::fingerprint::{fold_op, Fnv1a};
use crate::ids::{OpId, ProcId, Var};
use crate::op::{Command, Op};
use std::collections::{HashMap, HashSet};

/// An operation instance `(o, p, k)`: operation `o` issued by process `p`
/// with history-unique identifier `k`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OpInstance {
    /// The operation.
    pub op: Op,
    /// The issuing process.
    pub proc: ProcId,
    /// The unique identifier of this instance.
    pub id: OpId,
}

/// Completion status of a transaction in a history.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxnStatus {
    /// Ends with a `commit` operation.
    Committed,
    /// Ends with an `abort` operation.
    Aborted,
    /// Still running: its last operation is the last operation of its
    /// process in the history ("live" transaction).
    Live,
}

impl TxnStatus {
    /// A transaction is *completed* if it is committed or aborted.
    pub fn is_completed(self) -> bool {
        !matches!(self, TxnStatus::Live)
    }
}

/// A parsed transaction: a maximal `start … (commit|abort)` subsequence of
/// one process (or a trailing live transaction).
#[derive(Clone, Debug)]
pub struct Txn {
    /// The process executing the transaction.
    pub proc: ProcId,
    /// Indices (into [`History::ops`]) of the transaction's operation
    /// instances, in history order; the first is always the `start`.
    pub op_indices: Vec<usize>,
    /// Completion status.
    pub status: TxnStatus,
}

impl Txn {
    /// Index of the transaction's first operation instance in the history.
    pub fn first(&self) -> usize {
        self.op_indices[0]
    }

    /// Index of the transaction's last operation instance in the history.
    pub fn last(&self) -> usize {
        *self.op_indices.last().unwrap()
    }
}

/// Errors detected when validating a history for well-formedness.
#[derive(Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // field names are self-describing
pub enum HistoryError {
    /// Two operation instances share an identifier.
    DuplicateOpId(OpId),
    /// A `start` was issued while the process already had a live
    /// transaction (nested transactions are not allowed).
    NestedStart { proc: ProcId, id: OpId },
    /// A `commit` or `abort` without a matching `start`.
    UnmatchedEnd { proc: ProcId, id: OpId },
    /// A dependent command refers to an operation that does not precede
    /// it in the history, is not by the same process, or does not exist.
    BadDependency { id: OpId, dep: OpId },
}

impl std::fmt::Display for HistoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryError::DuplicateOpId(id) => write!(f, "duplicate operation id {id}"),
            HistoryError::NestedStart { proc, id } => {
                write!(f, "nested start {id} by {proc}")
            }
            HistoryError::UnmatchedEnd { proc, id } => {
                write!(f, "commit/abort {id} by {proc} without matching start")
            }
            HistoryError::BadDependency { id, dep } => {
                write!(
                    f,
                    "operation {id} depends on {dep}, which does not precede it"
                )
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// A well-formed history: a sequence of operation instances with parsed
/// transaction structure.
#[derive(Clone, Debug)]
pub struct History {
    ops: Vec<OpInstance>,
    txns: Vec<Txn>,
    /// For each operation index, the index of its transaction in `txns`
    /// (or `None` for non-transactional operations).
    txn_of: Vec<Option<usize>>,
    /// Map from `OpId` to index in `ops`.
    index_of: HashMap<OpId, usize>,
}

impl History {
    /// Validate and construct a history from raw operation instances.
    ///
    /// Checks the paper's well-formedness conditions: unique identifiers,
    /// every `commit`/`abort` matching a `start`, no nested transactions,
    /// and dependency sets of `cdrd`/`ddrd`/`cdwr`/`ddwr` commands naming
    /// only operations of the same process that precede them.
    pub fn new(ops: Vec<OpInstance>) -> Result<Self, HistoryError> {
        let mut index_of = HashMap::with_capacity(ops.len());
        for (i, oi) in ops.iter().enumerate() {
            if index_of.insert(oi.id, i).is_some() {
                return Err(HistoryError::DuplicateOpId(oi.id));
            }
        }

        // Parse transactions per process.
        let mut txns: Vec<Txn> = Vec::new();
        let mut txn_of: Vec<Option<usize>> = vec![None; ops.len()];
        let mut open: HashMap<ProcId, usize> = HashMap::new(); // proc -> txn index
        for (i, oi) in ops.iter().enumerate() {
            match &oi.op {
                Op::Start => {
                    if open.contains_key(&oi.proc) {
                        return Err(HistoryError::NestedStart {
                            proc: oi.proc,
                            id: oi.id,
                        });
                    }
                    let t = txns.len();
                    txns.push(Txn {
                        proc: oi.proc,
                        op_indices: vec![i],
                        status: TxnStatus::Live,
                    });
                    txn_of[i] = Some(t);
                    open.insert(oi.proc, t);
                }
                Op::Commit | Op::Abort => {
                    let Some(&t) = open.get(&oi.proc) else {
                        return Err(HistoryError::UnmatchedEnd {
                            proc: oi.proc,
                            id: oi.id,
                        });
                    };
                    txns[t].op_indices.push(i);
                    txns[t].status = if matches!(oi.op, Op::Commit) {
                        TxnStatus::Committed
                    } else {
                        TxnStatus::Aborted
                    };
                    txn_of[i] = Some(t);
                    open.remove(&oi.proc);
                }
                Op::Cmd(c) => {
                    if let Some(&t) = open.get(&oi.proc) {
                        txns[t].op_indices.push(i);
                        txn_of[i] = Some(t);
                    }
                    // Dependency well-formedness: each dep must be an
                    // earlier operation of the same process.
                    if let Some((_, deps)) = c.deps() {
                        for d in deps {
                            match index_of.get(d) {
                                Some(&j) if j < i && ops[j].proc == oi.proc => {}
                                _ => {
                                    return Err(HistoryError::BadDependency { id: oi.id, dep: *d })
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(History {
            ops,
            txns,
            txn_of,
            index_of,
        })
    }

    /// The operation instances, in history order.
    pub fn ops(&self) -> &[OpInstance] {
        &self.ops
    }

    /// Number of operation instances.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the history contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The parsed transactions, in order of their `start` operations.
    pub fn txns(&self) -> &[Txn] {
        &self.txns
    }

    /// The transaction containing the operation at history index `i`, if
    /// that operation is transactional.
    pub fn txn_of(&self, i: usize) -> Option<usize> {
        self.txn_of[i]
    }

    /// True iff the operation at history index `i` is part of a
    /// transaction.
    pub fn is_transactional(&self, i: usize) -> bool {
        self.txn_of[i].is_some()
    }

    /// History index of the operation with identifier `id`.
    pub fn index_of(&self, id: OpId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// The set of processes appearing in the history, sorted.
    pub fn procs(&self) -> Vec<ProcId> {
        let mut set: Vec<ProcId> = self
            .ops
            .iter()
            .map(|o| o.proc)
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        set
    }

    /// The set of variables accessed in the history, sorted.
    pub fn vars(&self) -> Vec<Var> {
        let mut set: Vec<Var> = self
            .ops
            .iter()
            .filter_map(|o| o.op.command().map(Command::var))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        set.sort();
        set
    }

    /// The *generating* relation of the real-time partial order `≺h` on
    /// history indices (§2): `i → j` iff
    ///
    /// 1. `i` and `j` belong to transactions `T` and `T'` where `T` is
    ///    completed and the last operation of `T` precedes the first
    ///    operation of `T'`, or
    /// 2. `i` precedes `j` in the history, both are by the same process,
    ///    and at least one of them is transactional.
    ///
    /// `≺h` itself is the transitive closure of this relation (it is a
    /// partial order); see [`History::rt_closure`]. A sequence respects
    /// `≺h` iff it respects the generating relation, so the checkers use
    /// this cheaper form directly.
    pub fn precedes_rt(&self, i: usize, j: usize) -> bool {
        // Case 2: same-process program order, at least one transactional.
        if i < j
            && self.ops[i].proc == self.ops[j].proc
            && (self.is_transactional(i) || self.is_transactional(j))
        {
            return true;
        }
        // Case 1: cross-transaction real-time order.
        if let (Some(t1), Some(t2)) = (self.txn_of[i], self.txn_of[j]) {
            if t1 != t2 {
                let t1 = &self.txns[t1];
                let t2 = &self.txns[t2];
                if t1.status.is_completed() && t1.last() < t2.first() {
                    return true;
                }
            }
        }
        false
    }

    /// The full real-time partial order `≺h` (transitive closure of
    /// [`History::precedes_rt`]) as a boolean matrix indexed by history
    /// position. Quadratic in space; intended for tests and diagnostics.
    #[allow(clippy::needless_range_loop)] // index-matrix code reads clearer with i/j/k
    pub fn rt_closure(&self) -> Vec<Vec<bool>> {
        let n = self.ops.len();
        let mut m = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j && self.precedes_rt(i, j) {
                    m[i][j] = true;
                }
            }
        }
        // Floyd–Warshall transitive closure.
        for k in 0..n {
            for i in 0..n {
                if m[i][k] {
                    for j in 0..n {
                        if m[k][j] {
                            m[i][j] = true;
                        }
                    }
                }
            }
        }
        m
    }

    /// True iff the history is *sequential*: no transaction overlaps
    /// another transaction or a non-transactional operation instance.
    pub fn is_sequential(&self) -> bool {
        self.txns.iter().all(|t| {
            let (first, last) = (t.first(), t.last());
            (first..=last).all(|i| self.txn_of[i] == self.txn_of[first])
        })
    }

    /// True iff the history is *transactionally sequential* (§6.2, used
    /// by SGLA): between the first and last operation of any transaction
    /// only that transaction's operations and non-transactional
    /// operations occur (transactions do not overlap each other, but
    /// non-transactional operations may interleave).
    pub fn is_transactionally_sequential(&self) -> bool {
        self.txns.iter().all(|t| {
            let (first, last) = (t.first(), t.last());
            (first..=last).all(|i| self.txn_of[i].is_none() || self.txn_of[i] == self.txn_of[first])
        })
    }

    /// The paper's `visible(s)`: the longest subsequence of `self` that
    /// contains no operation instance of a non-committed transaction `T`,
    /// *except* if `T` is not followed by any other transaction or
    /// non-transactional operation instance (i.e. `T` is the trailing,
    /// still-pending transaction).
    pub fn visible(&self) -> History {
        // Determine, for each transaction, whether it survives.
        let mut keep_txn = vec![false; self.txns.len()];
        for (ti, t) in self.txns.iter().enumerate() {
            if t.status == TxnStatus::Committed {
                keep_txn[ti] = true;
            } else {
                // Keep a non-committed T only if nothing follows it other
                // than its own operations.
                let last = t.last();
                let followed = self.ops[last + 1..]
                    .iter()
                    .enumerate()
                    .any(|(off, _)| self.txn_of[last + 1 + off] != Some(ti));
                keep_txn[ti] = !followed;
            }
        }
        let ops: Vec<OpInstance> = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| match self.txn_of[*i] {
                Some(t) => keep_txn[t],
                None => true,
            })
            .map(|(_, o)| o.clone())
            .collect();
        History::new(ops).expect("visible() preserves well-formedness")
    }

    /// The subsequence `s|x` of commands on variable `x` (boundary
    /// operations are excluded, matching the paper's definition of `s|x`
    /// as a sequence of *commands*).
    pub fn project(&self, x: Var) -> Vec<Command> {
        self.ops
            .iter()
            .filter_map(|o| o.op.command())
            .filter(|c| c.var() == x)
            .cloned()
            .collect()
    }

    /// The prefix of the history ending with (and including) index `i`.
    pub fn prefix(&self, i: usize) -> History {
        History::new(self.ops[..=i].to_vec()).expect("prefix of well-formed is well-formed")
    }

    /// A stable 64-bit structural fingerprint of the history: FNV-1a
    /// over the operation sequence (process, identifier, operation kind,
    /// variable, values, dependency sets).
    ///
    /// Two histories with the same fingerprint are — modulo the
    /// vanishingly unlikely 64-bit collision — the *same* sequence of
    /// operation instances, so any checker verdict computed for one
    /// applies to the other. The model-checking sweeps use this as the
    /// memoization key for checker verdicts; the deduplicated schedule
    /// exploration keys its seen-set on the analogous trace fingerprint.
    /// The hash is independent of platform, allocation, and process run,
    /// so fingerprints are comparable across runs and machines.
    pub fn cache_key(&self) -> u64 {
        let mut f = Fnv1a::new();
        for oi in &self.ops {
            f.word(u64::from(oi.proc.0));
            f.word(u64::from(oi.id.0));
            fold_op(&mut f, &oi.op);
        }
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{X, Y};

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// Figure 3(a) of the paper: p1 writes `x` non-transactionally and
    /// runs the transaction writing `y`; p2 reads `y` then `x`
    /// non-transactionally (its read of `y` interleaves inside p1's
    /// transaction region); p3 runs an empty transaction and reads `x`.
    fn fig3a() -> History {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1); // id 1
        b.start(p(1)); // id 2
        b.read(p(2), Y, 1); // id 3
        b.write(p(1), Y, 1); // id 4
        b.commit(p(1)); // id 5
        b.read(p(2), X, 7); // id 6 (value v arbitrary)
        b.start(p(3)); // id 7
        b.commit(p(3)); // id 8
        b.read(p(3), X, 7); // id 9 (value v' arbitrary)
        b.build().unwrap()
    }

    #[test]
    fn parses_transactions() {
        let h = fig3a();
        assert_eq!(h.txns().len(), 2);
        assert_eq!(h.txns()[0].proc, p(1));
        assert_eq!(h.txns()[0].status, TxnStatus::Committed);
        assert_eq!(h.txns()[1].proc, p(3));
        // Non-transactional ops.
        assert!(!h.is_transactional(0)); // (wr,x,1) by p1
        assert!(h.is_transactional(1)); // start by p1
        assert!(!h.is_transactional(2)); // (rd,y,1) by p2
        assert!(!h.is_transactional(5)); // (rd,x,v) by p2
    }

    #[test]
    fn cache_key_stable_and_structure_sensitive() {
        let h = fig3a();
        assert_eq!(h.cache_key(), fig3a().cache_key());
        // Changing any structural detail changes the fingerprint.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 2); // differs in the written value only
        b.start(p(1));
        b.read(p(2), Y, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), X, 7);
        b.start(p(3));
        b.commit(p(3));
        b.read(p(3), X, 7);
        let h2 = b.build().unwrap();
        assert_ne!(h.cache_key(), h2.cache_key());
    }

    #[test]
    fn realtime_order_matches_paper_example() {
        // The paper: "≺h consists of elements (1,2), (5,7), and (1,9).
        // On the other hand, (1,6) and (6,9) are not in ≺h."
        // (≺h is a partial order, i.e. the transitive closure of the
        // generating relation; the paper lists representative pairs.)
        let h = fig3a();
        let ix = |id: u32| h.index_of(OpId(id)).unwrap();
        let m = h.rt_closure();
        assert!(m[ix(1)][ix(2)]); // same process, start transactional
        assert!(m[ix(5)][ix(7)]); // T(p1) completed before T(p3)
        assert!(m[ix(1)][ix(9)]); // via 1 ≺ 2 ≺ 7 ≺ 9
        assert!(!m[ix(1)][ix(6)]); // cross-process non-transactional
        assert!(!m[ix(6)][ix(9)]); // cross-process non-transactional
    }

    #[test]
    fn nested_start_rejected() {
        let ops = vec![
            OpInstance {
                op: Op::Start,
                proc: p(1),
                id: OpId(1),
            },
            OpInstance {
                op: Op::Start,
                proc: p(1),
                id: OpId(2),
            },
        ];
        assert!(matches!(
            History::new(ops),
            Err(HistoryError::NestedStart { .. })
        ));
    }

    #[test]
    fn unmatched_commit_rejected() {
        let ops = vec![OpInstance {
            op: Op::Commit,
            proc: p(1),
            id: OpId(1),
        }];
        assert!(matches!(
            History::new(ops),
            Err(HistoryError::UnmatchedEnd { .. })
        ));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let ops = vec![
            OpInstance {
                op: Op::Start,
                proc: p(1),
                id: OpId(1),
            },
            OpInstance {
                op: Op::Commit,
                proc: p(1),
                id: OpId(1),
            },
        ];
        assert!(matches!(
            History::new(ops),
            Err(HistoryError::DuplicateOpId(_))
        ));
    }

    #[test]
    fn bad_dependency_rejected() {
        use crate::op::DepKind;
        let ops = vec![OpInstance {
            op: Op::Cmd(Command::DepRead {
                var: X,
                val: 0,
                kind: DepKind::Data,
                deps: vec![OpId(99)],
            }),
            proc: p(1),
            id: OpId(1),
        }];
        assert!(matches!(
            History::new(ops),
            Err(HistoryError::BadDependency { .. })
        ));
    }

    #[test]
    fn sequential_detection() {
        // Fig. 3(a) is not sequential: p2's read of y (id 3) interleaves
        // inside p1's transaction region.
        let h = fig3a();
        assert!(!h.is_sequential());
        assert!(h.is_transactionally_sequential());
        // A properly sequentialized variant is sequential.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(2));
        b.write(p(2), Y, 1);
        b.commit(p(2));
        b.read(p(1), X, 1);
        let s = b.build().unwrap();
        assert!(s.is_sequential());
    }

    #[test]
    fn transactionally_sequential_allows_interleaved_nontxn() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.read(p(2), Y, 0); // non-transactional op inside p1's txn region
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(!h.is_sequential());
        assert!(h.is_transactionally_sequential());
    }

    #[test]
    fn overlapping_txns_not_transactionally_sequential() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.start(p(2));
        b.commit(p(1));
        b.commit(p(2));
        let h = b.build().unwrap();
        assert!(!h.is_transactionally_sequential());
    }

    #[test]
    fn visible_drops_aborted_followed() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.abort(p(1));
        b.read(p(2), X, 0);
        let h = b.build().unwrap();
        let v = h.visible();
        assert_eq!(v.len(), 1); // only the non-transactional read remains
        assert!(matches!(v.ops()[0].op, Op::Cmd(Command::Read { .. })));
    }

    #[test]
    fn visible_keeps_trailing_live_txn() {
        let mut b = HistoryBuilder::new();
        b.read(p(2), X, 0);
        b.start(p(1));
        b.write(p(1), X, 1);
        let h = b.build().unwrap();
        let v = h.visible();
        assert_eq!(v.len(), 3); // live trailing transaction is kept
    }

    #[test]
    fn visible_keeps_committed() {
        let h = fig3a();
        let v = h.visible();
        assert_eq!(v.len(), h.len()); // both txns committed/none trailing-dropped
    }

    #[test]
    fn project_selects_var_commands() {
        let h = fig3a();
        let px = h.project(X);
        assert_eq!(px.len(), 3); // wr x 1, rd x v (p1), rd x v (p3)
        let py = h.project(Y);
        assert_eq!(py.len(), 2);
    }

    #[test]
    fn procs_and_vars() {
        let h = fig3a();
        assert_eq!(h.procs(), vec![p(1), p(2), p(3)]);
        assert_eq!(h.vars(), vec![X, Y]);
    }
}
