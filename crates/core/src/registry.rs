//! The model registry: one source of truth for memory-model semantics.
//!
//! The paper uses each memory model `M = (τ, R)` twice: as the
//! *specification* a checker enforces (the view of required pairs, see
//! [`crate::model`]) and as the *hardware* a TM implementation executes
//! on. Historically this workspace kept those two facades apart — the
//! checkers in [`crate::model`] covered the full §3.2 zoo while the
//! simulator's ad-hoc `HwModel` enum could execute only SC/TSO/PSO, and
//! nothing tied a checker model to the machine discipline that realizes
//! it. This module unifies them: a [`ModelEntry`] bundles the
//! checker-side [`MemoryModel`] with the execution-side
//! [`ExecSemantics`] the simulated machine must implement, and
//! [`registry`] enumerates the canonical pairings.
//!
//! ## Execution disciplines
//!
//! [`ExecSemantics`] describes a machine, not a view. Its fields map
//! onto the §3.2 table as follows (mirrored in `DESIGN.md`, "One model,
//! two facades"):
//!
//! | entry     | stores             | forwarding | load window | dep loads ordered |
//! |-----------|--------------------|------------|-------------|-------------------|
//! | `SC`      | immediate          | —          | 0           | yes               |
//! | `TSO`     | FIFO buffer        | no         | 0           | yes               |
//! | `TSO+fwd` | FIFO buffer        | yes        | 0           | yes               |
//! | `PSO`     | per-address queues | no         | 0           | yes               |
//! | `RMO`     | per-address queues | yes        | 2           | yes               |
//! | `Alpha`   | per-address queues | yes        | 2           | no                |
//! | `Relaxed` | per-address queues | yes        | 3           | no                |
//! | `Junk-SC` | immediate          | —          | 0           | yes               |
//!
//! Store-side relaxations come from the buffer discipline (what may
//! drain next); load-side relaxations come from a bounded *staleness
//! window*: a CPU may read one of the last `load_window` overwritten
//! values of an address, provided per-CPU coherence floors are
//! respected (own writes and previously observed values are never
//! un-seen). Reading a stale value is exactly a load that *performed
//! early* — the machine-level realization of read→read reordering.
//! Every discipline preserves per-address store order, because **every**
//! model in §3.2 requires same-variable program order (coherence); a
//! "fully free" drain that inverted same-address stores would produce
//! executions even the fully relaxed model rejects.
//!
//! Two honest caveats, both documented sound *under*-approximations
//! (the machine produces a subset of the model-allowed executions, so
//! positive verdicts over machine traces never overclaim):
//!
//! * read→write reordering (load-buffering shapes) is not realizable in
//!   a reactive simulator without value speculation;
//! * `Junk-SC`'s `havoc` transformation is checker-side only — the
//!   machine executes plain SC.

use crate::model::{Alpha, JunkSc, MemoryModel, Pso, Relaxed, Rmo, Sc, Tso, TsoForwarding};

/// When a buffered store may leave a CPU's reorder engine for global
/// memory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StoreDiscipline {
    /// No buffering: stores apply to global memory immediately (SC).
    Immediate,
    /// One FIFO queue: only the oldest buffered store may drain (TSO).
    Fifo,
    /// FIFO per address: the oldest store *per address* may drain, so
    /// stores to different addresses reorder freely while same-address
    /// order (coherence) is preserved (PSO, RMO, Alpha, Relaxed).
    PerAddress,
}

/// The execution-side semantics of a memory model: the buffer/reorder
/// discipline a simulated machine implements.
///
/// This is the machine-facing half of a [`ModelEntry`]; the
/// checker-facing half is the [`MemoryModel`]. The old `jungle-memsim`
/// `HwModel` enum is now a type alias for this struct, with the
/// historical variants available as the [`ExecSemantics::Sc`],
/// [`ExecSemantics::Tso`] and [`ExecSemantics::Pso`] compatibility
/// constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ExecSemantics {
    /// Display name, e.g. `"RMO"`; recorded in machine statistics.
    pub name: &'static str,
    /// Store-buffer drain discipline.
    pub stores: StoreDiscipline,
    /// May a load be served from the CPU's own buffered store to the
    /// same address (store-to-load forwarding)? When `false`, a load
    /// whose address has buffered stores first drains them (the load
    /// *waits* for the store to become globally visible, as the plain
    /// formal TSO/PSO models demand).
    pub forwarding: bool,
    /// How many overwritten values of an address a load may still
    /// observe (0 = loads always read the current value). This is the
    /// load/store reorder window: a stale read is a load that performed
    /// early.
    pub load_window: u8,
    /// Must dependency-marked loads (`LoadDep`) read the current value
    /// even when `load_window > 0`? `true` models RMO (dependent loads
    /// are ordered), `false` models Alpha (even data-dependent loads
    /// reorder).
    pub order_dep_loads: bool,
}

impl ExecSemantics {
    /// Linearizable memory: the paper's baseline hardware assumption.
    pub const SC: ExecSemantics = ExecSemantics {
        name: "SC",
        stores: StoreDiscipline::Immediate,
        forwarding: false,
        load_window: 0,
        order_dep_loads: true,
    };

    /// Plain formal TSO: FIFO store buffer, **no** forwarding. Matches
    /// the checker-side [`Tso`] (which keeps read→read order; a
    /// forwarded early read would violate it — see `TSO_FWD`).
    pub const TSO: ExecSemantics = ExecSemantics {
        name: "TSO",
        stores: StoreDiscipline::Fifo,
        forwarding: false,
        load_window: 0,
        order_dep_loads: true,
    };

    /// TSO with store-to-load forwarding (x86-style). Matches the
    /// checker-side [`TsoForwarding`], which relaxes read→read order
    /// for forwarded reads.
    pub const TSO_FWD: ExecSemantics = ExecSemantics {
        name: "TSO+fwd",
        stores: StoreDiscipline::Fifo,
        forwarding: true,
        load_window: 0,
        order_dep_loads: true,
    };

    /// Plain formal PSO: per-address store queues, no forwarding.
    pub const PSO: ExecSemantics = ExecSemantics {
        name: "PSO",
        stores: StoreDiscipline::PerAddress,
        forwarding: false,
        load_window: 0,
        order_dep_loads: true,
    };

    /// PSO with store-to-load forwarding — what the pre-registry
    /// simulator executed under the name "PSO". Not paired with a
    /// checker in the [`registry`]: forwarding admits read→read
    /// reorderings that the formal [`Pso`] (which is read-read
    /// restrictive) rejects; only the RMO-and-weaker checkers absolve
    /// them.
    pub const PSO_FWD: ExecSemantics = ExecSemantics {
        name: "PSO+fwd",
        stores: StoreDiscipline::PerAddress,
        forwarding: true,
        load_window: 0,
        order_dep_loads: true,
    };

    /// SPARC RMO: per-address store queues, forwarding, a load reorder
    /// window of 2, and dependency-ordered loads.
    pub const RMO: ExecSemantics = ExecSemantics {
        name: "RMO",
        stores: StoreDiscipline::PerAddress,
        forwarding: true,
        load_window: 2,
        order_dep_loads: true,
    };

    /// Alpha: as RMO, but even dependency-marked loads may read stale
    /// values.
    pub const ALPHA: ExecSemantics = ExecSemantics {
        name: "Alpha",
        stores: StoreDiscipline::PerAddress,
        forwarding: true,
        load_window: 2,
        order_dep_loads: false,
    };

    /// The idealized fully relaxed machine: free drains across
    /// addresses and the widest staleness window.
    pub const RELAXED: ExecSemantics = ExecSemantics {
        name: "Relaxed",
        stores: StoreDiscipline::PerAddress,
        forwarding: true,
        load_window: 3,
        order_dep_loads: false,
    };

    /// Compatibility constant mirroring the old `HwModel::Sc` variant.
    #[allow(non_upper_case_globals)]
    pub const Sc: ExecSemantics = Self::SC;

    /// Compatibility constant mirroring the old `HwModel::Tso` variant.
    /// The pre-registry machine always forwarded, so this is
    /// [`ExecSemantics::TSO_FWD`] — the machine honestly named. The
    /// checker it matches is [`TsoForwarding`], not plain [`Tso`]; see
    /// the registry's `"TSO"` vs `"TSO+fwd"` entries.
    #[allow(non_upper_case_globals)]
    pub const Tso: ExecSemantics = Self::TSO_FWD;

    /// Compatibility constant mirroring the old `HwModel::Pso` variant
    /// (forwarding always on): [`ExecSemantics::PSO_FWD`].
    #[allow(non_upper_case_globals)]
    pub const Pso: ExecSemantics = Self::PSO_FWD;

    /// Largest admissible [`ExecSemantics::load_window`] across the
    /// registry — bounds how much per-address value history a machine
    /// must retain.
    pub const MAX_LOAD_WINDOW: u8 = 3;
}

/// One registry entry: a memory model's two facades plus a provenance
/// note.
#[derive(Clone, Copy)]
pub struct ModelEntry {
    /// Registry key, e.g. `"RMO"` (equals `model.name()` for canonical
    /// entries).
    pub key: &'static str,
    /// The checker-side model `M = (τ, R)`.
    pub model: &'static dyn MemoryModel,
    /// The execution-side discipline realizing `M` on the simulator.
    pub exec: ExecSemantics,
    /// Short provenance / soundness note.
    pub note: &'static str,
}

impl ModelEntry {
    /// Construct an entry (for custom pairings outside the canonical
    /// [`registry`]).
    pub const fn new(
        key: &'static str,
        model: &'static dyn MemoryModel,
        exec: ExecSemantics,
        note: &'static str,
    ) -> Self {
        ModelEntry {
            key,
            model,
            exec,
            note,
        }
    }

    /// The paper's game for the negative constructions: check traces of
    /// an **SC execution** against an arbitrary model's view. (The
    /// paper's TM implementations assume linearizable hardware; the
    /// memory model parametrizes only the *property*.) The entry's key
    /// is the model's name.
    pub fn checker_game(model: &'static dyn MemoryModel) -> Self {
        ModelEntry {
            key: model.name(),
            model,
            exec: ExecSemantics::SC,
            note: "checker-side game over SC executions (paper's setting)",
        }
    }
}

impl std::fmt::Debug for ModelEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelEntry")
            .field("key", &self.key)
            .field("model", &self.model.name())
            .field("exec", &self.exec)
            .finish()
    }
}

/// The canonical model zoo: every §3.2 checker model paired with the
/// execution discipline that realizes it.
static REGISTRY: [ModelEntry; 8] = [
    ModelEntry::new(
        "SC",
        &Sc,
        ExecSemantics::SC,
        "linearizable memory; the paper's baseline hardware",
    ),
    ModelEntry::new(
        "TSO",
        &Tso,
        ExecSemantics::TSO,
        "formal TSO keeps read-read order, so the machine must not forward",
    ),
    ModelEntry::new(
        "TSO+fwd",
        &TsoForwarding,
        ExecSemantics::TSO_FWD,
        "x86-style TSO; forwarded reads may reorder with later reads",
    ),
    ModelEntry::new(
        "PSO",
        &Pso,
        ExecSemantics::PSO,
        "per-address store queues; no forwarding (PSO is read-read restrictive)",
    ),
    ModelEntry::new(
        "RMO",
        &Rmo,
        ExecSemantics::RMO,
        "store queues + load window; dependency-marked loads stay ordered",
    ),
    ModelEntry::new(
        "Alpha",
        &Alpha,
        ExecSemantics::ALPHA,
        "as RMO but even dependent loads may read stale values",
    ),
    ModelEntry::new(
        "Relaxed",
        &Relaxed,
        ExecSemantics::RELAXED,
        "idealized fully relaxed model (Theorem 3); widest load window",
    ),
    ModelEntry::new(
        "Junk-SC",
        &JunkSc,
        ExecSemantics::SC,
        "havoc is checker-side (τ); the machine executes SC — a sound subset",
    ),
];

/// The canonical registry, in the paper's §3.2 order (strongest first).
pub fn registry() -> &'static [ModelEntry] {
    &REGISTRY
}

/// Look up a canonical entry by key (`"SC"`, `"TSO"`, `"TSO+fwd"`,
/// `"PSO"`, `"RMO"`, `"Alpha"`, `"Relaxed"`, `"Junk-SC"`).
pub fn entry(key: &str) -> Option<&'static ModelEntry> {
    REGISTRY.iter().find(|e| e.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_keys_are_unique_and_resolvable() {
        let keys: std::collections::HashSet<_> = registry().iter().map(|e| e.key).collect();
        assert_eq!(keys.len(), registry().len());
        for e in registry() {
            assert!(std::ptr::eq(entry(e.key).unwrap(), e));
        }
        assert!(entry("no-such-model").is_none());
    }

    #[test]
    fn canonical_entries_pair_matching_names() {
        // Every canonical entry's key equals its checker model's name;
        // the exec name may differ only where documented (Junk-SC
        // executes SC).
        for e in registry() {
            assert_eq!(e.key, e.model.name());
            if e.key != "Junk-SC" {
                assert_eq!(e.exec.name, e.key);
            } else {
                assert_eq!(e.exec, ExecSemantics::SC);
            }
        }
    }

    #[test]
    fn windows_are_bounded_by_max() {
        for e in registry() {
            assert!(e.exec.load_window <= ExecSemantics::MAX_LOAD_WINDOW);
        }
    }

    #[test]
    fn strong_models_have_no_load_window() {
        for key in ["SC", "TSO", "TSO+fwd", "PSO", "Junk-SC"] {
            assert_eq!(entry(key).unwrap().exec.load_window, 0, "{key}");
        }
        for key in ["RMO", "Alpha", "Relaxed"] {
            assert!(entry(key).unwrap().exec.load_window > 0, "{key}");
        }
    }

    #[test]
    fn forwarding_only_where_the_view_absolves_it() {
        // A forwarding machine is paired only with checkers that relax
        // read→read order for forwarded reads (TSO+fwd) or in general
        // (RMO and weaker) — never with the read-read restrictive
        // SC/TSO/PSO/Junk-SC views.
        for e in registry() {
            if e.exec.forwarding {
                assert!(
                    !e.model.classes().rr_i,
                    "{}: forwarding paired with a read-read restrictive model",
                    e.key
                );
            }
        }
    }

    #[test]
    fn compat_constants_mirror_the_old_enum() {
        assert_eq!(ExecSemantics::Sc, ExecSemantics::SC);
        assert_eq!(ExecSemantics::Tso, ExecSemantics::TSO_FWD);
        assert_eq!(ExecSemantics::Pso, ExecSemantics::PSO_FWD);
        // The old machine always forwarded once it buffered.
        const { assert!(ExecSemantics::Tso.forwarding) };
        const { assert!(ExecSemantics::Pso.forwarding) };
    }

    #[test]
    fn checker_game_executes_sc() {
        let e = ModelEntry::checker_game(&Relaxed);
        assert_eq!(e.key, "Relaxed");
        assert_eq!(e.exec, ExecSemantics::SC);
    }
}
