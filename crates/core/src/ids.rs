//! Identifiers for processes, shared objects, and operation instances.
//!
//! The paper ranges over a set `P` of processes, a set `Obj` of shared
//! objects, and identifies operation *instances* by natural numbers that
//! are unique within a history. All three are small newtype wrappers so
//! that they cannot be confused with one another or with plain integers.

use std::fmt;

/// A value stored in a shared object.
///
/// The paper works with natural-number values; we use `u64`, which is also
/// what the executable STMs in `jungle-stm` store in their atomic cells.
pub type Val = u64;

/// A process (thread) identifier — an element of the paper's set `P`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ProcId(pub u32);

/// A shared object (variable) identifier — an element of the set `Obj`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

/// The unique identifier of an operation instance within a history.
///
/// The paper writes an operation instance as `(o, p, k)` where `k ∈ ℕ` is
/// unique in the history; `OpId` is that `k`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct OpId(pub u32);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the first few variables with the paper's letters.
        match self.0 {
            0 => write!(f, "x"),
            1 => write!(f, "y"),
            2 => write!(f, "z"),
            n => write!(f, "v{n}"),
        }
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Conventional name for variable 0, used throughout tests and examples.
pub const X: Var = Var(0);
/// Conventional name for variable 1.
pub const Y: Var = Var(1);
/// Conventional name for variable 2.
pub const Z: Var = Var(2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "p3");
        assert_eq!(Var(0).to_string(), "x");
        assert_eq!(Var(1).to_string(), "y");
        assert_eq!(Var(2).to_string(), "z");
        assert_eq!(Var(7).to_string(), "v7");
        assert_eq!(OpId(12).to_string(), "#12");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(OpId(1) < OpId(2));
        assert!(ProcId(0) < ProcId(1));
        assert!(Var(5) > Var(4));
    }
}
