//! Shared machinery for the parallel checker entry points.
//!
//! Both exponential searches ([`opacity`](crate::opacity) and
//! [`sgla`](crate::sgla)) have the same top-level shape: enumerate
//! transaction serialization orders consistent with a partial order,
//! and run an inner witness search for each complete order. The
//! parallel entry points exploit that shape:
//!
//! 1. The serialization-order enumeration is split into **prefixes** of
//!    a small fixed depth, generated serially in exactly the order the
//!    serial DFS would visit them, and indexed `0, 1, 2, …`.
//! 2. A scoped worker pool ([`run_prefix_pool`]) pulls prefix indices
//!    from a shared atomic counter; each worker exhausts its prefix's
//!    subtree (the same DFS the serial checker runs, restricted to
//!    orders extending the prefix).
//! 3. The first success is published by storing the prefix index in an
//!    atomic `found_at` cell via `fetch_min`. Workers consult the cell
//!    through a [`Cancel`] token: a worker on prefix `i` aborts as soon
//!    as some prefix `j < i` has succeeded, because its own answer can
//!    no longer affect the result.
//!
//! **Determinism.** The returned witness is the one from the *lowest*
//! successful prefix index, and within a prefix each worker searches
//! completions in serial DFS order and stops at the first success — so
//! the parallel result (verdict *and* witness) is exactly the serial
//! result, independent of thread count and scheduling. Cancellation
//! cannot break this: a prefix is only ever cancelled by a strictly
//! lower-indexed success, in which case the serial search would have
//! stopped before reaching it anyway.
//!
//! Workers also keep a bounded per-worker [`WitnessMemo`] mapping inner
//! witness-search inputs (deduplicated edge sets) to their results —
//! sound because the inner search depends only on the fixed history,
//! model, and specs plus the edge set. Hits are reported as
//! `SearchStats::cache_hits`.
//!
//! The pool uses `std::thread::scope` — no external thread-pool crate —
//! so borrowing the search state from the caller's stack is safe and
//! the whole machinery is dependency-free.

use jungle_obs::trace::{self, EventKind};
use jungle_obs::SearchStats;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tuning knobs for the parallel checker entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means "ask the OS"
    /// (`std::thread::available_parallelism`). With an effective count
    /// of 1 the serial path runs directly — no threads are spawned.
    pub threads: usize,
    /// Histories with fewer schedulable units than this take the serial
    /// path unconditionally, so litmus-sized inputs pay zero overhead.
    pub min_units: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            min_units: 12,
        }
    }
}

impl ParallelConfig {
    /// A config pinned to exactly `threads` workers (still subject to
    /// the `min_units` serial fallback).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Self::default()
        }
    }

    /// The worker count after resolving `0` to the OS-reported
    /// parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Should a history with `units` schedulable units run serially?
    pub fn serial_for(&self, units: usize) -> bool {
        units < self.min_units || self.effective_threads() <= 1
    }
}

/// Cancellation token for one unit of pool work: signals when a
/// strictly lower-indexed prefix has already succeeded.
pub(crate) struct Cancel<'a> {
    gate: Option<(&'a AtomicUsize, usize)>,
}

impl<'a> Cancel<'a> {
    /// A token that never fires (serial search).
    pub(crate) fn never() -> Self {
        Cancel { gate: None }
    }

    /// A token for prefix `index`, watching `found_at`.
    pub(crate) fn below(found_at: &'a AtomicUsize, index: usize) -> Self {
        Cancel {
            gate: Some((found_at, index)),
        }
    }

    /// Has this work item become irrelevant?
    #[inline]
    pub(crate) fn hit(&self) -> bool {
        match self.gate {
            Some((found_at, index)) => found_at.load(Ordering::Relaxed) < index,
            None => false,
        }
    }
}

/// A bounded memo of inner witness-search results, keyed by the exact
/// search input (no hashing-based identification, so hits are always
/// sound). Once full it stops admitting new entries rather than
/// evicting — the searches revisit recent edge sets far more often than
/// old ones, and a hard cap keeps worst-case memory flat.
pub(crate) struct WitnessMemo<K, V> {
    cap: usize,
    map: HashMap<K, V>,
}

impl<K: Eq + Hash, V: Clone> WitnessMemo<K, V> {
    /// A memo admitting at most `cap` entries.
    pub(crate) fn new(cap: usize) -> Self {
        WitnessMemo {
            cap,
            map: HashMap::new(),
        }
    }

    /// A memo that never stores anything (serial paths, which must
    /// keep byte-identical behavior to the pre-parallel checker).
    pub(crate) fn disabled() -> Self {
        Self::new(0)
    }

    /// Look up a previously computed result.
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key)
    }

    /// Record a result if there is room.
    pub(crate) fn put(&mut self, key: K, value: V) {
        if self.map.len() < self.cap {
            self.map.insert(key, value);
        }
    }
}

/// How many prefixes [`run_prefix_pool`] wants per worker: enough that
/// an unlucky worker stuck on one hard subtree does not serialize the
/// sweep.
pub(crate) const PREFIXES_PER_WORKER: usize = 8;

/// Per-worker memo capacity for the checker searches.
pub(crate) const MEMO_CAP: usize = 4096;

/// Run `work` over every prefix on `threads` scoped workers and return
/// the result of the lowest-indexed prefix that produced one, exactly
/// as a serial left-to-right scan would.
///
/// `init` builds one mutable worker-local state (e.g. a memo) per
/// worker; `work(i, prefix, cancel, state, stats)` must stop early and
/// return `None` once `cancel.hit()` — its result is discarded in that
/// case anyway. Per-worker [`SearchStats`] are merged into `stats`
/// (including `stolen_prefixes`; the caller sets `workers`).
pub(crate) fn run_prefix_pool<R, S, I, F>(
    threads: usize,
    prefixes: &[Vec<usize>],
    init: I,
    work: F,
    stats: &mut SearchStats,
) -> Option<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &[usize], &Cancel<'_>, &mut S, &mut SearchStats) -> Option<R> + Sync,
{
    let next = AtomicUsize::new(0);
    let found_at = AtomicUsize::new(usize::MAX);
    let slots: Vec<Mutex<Option<R>>> = prefixes.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = SearchStats::default();
                    let mut state = init();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= prefixes.len() {
                            break;
                        }
                        if found_at.load(Ordering::Relaxed) < i {
                            trace::emit(EventKind::PrefixCancel, i as u64, 0);
                            continue; // a lower prefix already won
                        }
                        local.stolen_prefixes += 1;
                        trace::emit(EventKind::PrefixClaim, i as u64, prefixes[i].len() as u64);
                        let cancel = Cancel::below(&found_at, i);
                        if let Some(r) = work(i, &prefixes[i], &cancel, &mut state, &mut local) {
                            *slots[i].lock().unwrap() = Some(r);
                            found_at.fetch_min(i, Ordering::Relaxed);
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("checker worker panicked");
            stats.absorb(&local);
        }
    });

    let winner = found_at.load(Ordering::Relaxed);
    if winner == usize::MAX {
        None
    } else {
        slots[winner].lock().unwrap().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_auto() {
        let cfg = ParallelConfig::default();
        assert_eq!(cfg.threads, 0);
        assert!(cfg.effective_threads() >= 1);
        assert!(cfg.serial_for(0));
        assert!(cfg.serial_for(cfg.min_units - 1));
    }

    #[test]
    fn pinned_config_overrides_auto() {
        let cfg = ParallelConfig::with_threads(4);
        assert_eq!(cfg.effective_threads(), 4);
        assert!(ParallelConfig::with_threads(1).serial_for(usize::MAX));
    }

    #[test]
    fn memo_caps_and_replays() {
        let mut m: WitnessMemo<u32, u32> = WitnessMemo::new(2);
        m.put(1, 10);
        m.put(2, 20);
        m.put(3, 30); // over capacity: dropped
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&3), None);
        assert_eq!(WitnessMemo::<u32, u32>::disabled().get(&1), None);
    }

    #[test]
    fn pool_returns_lowest_successful_prefix() {
        // Prefixes 2, 5 and 7 "succeed"; the pool must report 2's
        // result regardless of completion order.
        let prefixes: Vec<Vec<usize>> = (0..10).map(|i| vec![i]).collect();
        let mut stats = SearchStats::default();
        for threads in [1, 2, 4] {
            let got = run_prefix_pool(
                threads,
                &prefixes,
                || (),
                |i, _p, cancel, _s, _l| {
                    if cancel.hit() {
                        return None;
                    }
                    [2, 5, 7].contains(&i).then_some(i)
                },
                &mut stats,
            );
            assert_eq!(got, Some(2), "threads={threads}");
        }
    }

    #[test]
    fn pool_reports_no_result_when_all_fail() {
        let prefixes: Vec<Vec<usize>> = (0..6).map(|i| vec![i]).collect();
        let mut stats = SearchStats::default();
        let got: Option<usize> = run_prefix_pool(
            2,
            &prefixes,
            || (),
            |_, _, _, _: &mut (), _| None,
            &mut stats,
        );
        assert_eq!(got, None);
        // Every prefix was pulled by some worker.
        assert_eq!(stats.stolen_prefixes, 6);
    }

    #[test]
    fn cancel_token_semantics() {
        let found = AtomicUsize::new(usize::MAX);
        let c5 = Cancel::below(&found, 5);
        assert!(!c5.hit());
        found.store(3, Ordering::Relaxed);
        assert!(c5.hit());
        assert!(!Cancel::below(&found, 2).hit());
        assert!(!Cancel::never().hit());
    }
}
