//! Shared machinery for the parallel checker entry points.
//!
//! Both exponential searches ([`opacity`](crate::opacity) and
//! [`sgla`](crate::sgla)) have the same top-level shape: enumerate
//! transaction serialization orders consistent with a partial order,
//! and run an inner witness search for each complete order. The
//! parallel entry points exploit that shape with a **work-stealing
//! frontier** (the same discipline as the mc layer's DPOR frontier,
//! replicated here because core cannot depend on mc):
//!
//! 1. The frontier is seeded with the empty serialization-order prefix.
//!    A worker that pops a prefix while other workers are starving
//!    **expands** it — pushes every valid one-transaction extension back
//!    onto the frontier — instead of searching it, so work splits
//!    adaptively exactly where the search is struggling. A worker that
//!    pops a prefix while everyone is busy **claims** it and exhausts
//!    its whole subtree (the same DFS the serial checker runs,
//!    restricted to orders extending the prefix).
//! 2. Claimed prefixes form an antichain (a prefix is either expanded
//!    or claimed, never both), so comparing them lexicographically
//!    orders their subtrees exactly as the serial DFS visits them. The
//!    first success from the **lexicographically least** claimed prefix
//!    is the answer; a published success flips a per-worker cancel flag
//!    on every running subtree with a lex-greater prefix, whose result
//!    can no longer matter.
//!
//! **Determinism.** A subtree is only ever cancelled by a success from
//! a lex-smaller prefix, and the published best only ever decreases
//! lexicographically — so every prefix the serial search would have
//! reached before its first success runs to completion, and the final
//! best is exactly the serial result (verdict *and* witness),
//! independent of thread count and scheduling.
//!
//! Workers also keep a bounded per-worker [`WitnessMemo`] mapping inner
//! witness-search inputs (deduplicated edge sets) to their results —
//! sound because the inner search depends only on the fixed history,
//! model, and specs plus the edge set. Hits are reported as
//! `SearchStats::cache_hits`.
//!
//! The pool uses `std::thread::scope` — no external thread-pool crate —
//! so borrowing the search state from the caller's stack is safe and
//! the whole machinery is dependency-free.

use jungle_obs::trace::{self, EventKind};
use jungle_obs::SearchStats;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

/// Tuning knobs for the parallel checker entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means "ask the OS"
    /// (`std::thread::available_parallelism`). With an effective count
    /// of 1 the serial path runs directly — no threads are spawned.
    pub threads: usize,
    /// Histories with fewer schedulable units than this take the serial
    /// path unconditionally, so litmus-sized inputs pay zero overhead.
    pub min_units: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: 0,
            min_units: 12,
        }
    }
}

impl ParallelConfig {
    /// A config pinned to exactly `threads` workers (still subject to
    /// the `min_units` serial fallback).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads,
            ..Self::default()
        }
    }

    /// The worker count after resolving `0` to the OS-reported
    /// parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Should a history with `units` schedulable units run serially?
    pub fn serial_for(&self, units: usize) -> bool {
        units < self.min_units || self.effective_threads() <= 1
    }
}

/// Cancellation token for one unit of pool work: set once the claimed
/// subtree's result can no longer matter (a lex-smaller prefix won).
pub(crate) struct Cancel<'a> {
    flag: Option<&'a AtomicBool>,
}

impl<'a> Cancel<'a> {
    /// A token that never fires (serial search).
    pub(crate) fn never() -> Self {
        Cancel { flag: None }
    }

    /// A token watching `flag`.
    pub(crate) fn flag(flag: &'a AtomicBool) -> Self {
        Cancel { flag: Some(flag) }
    }

    /// Has this work item become irrelevant?
    #[inline]
    pub(crate) fn hit(&self) -> bool {
        match self.flag {
            Some(f) => f.load(Ordering::Relaxed),
            None => false,
        }
    }
}

/// A bounded memo of inner witness-search results, keyed by the exact
/// search input (no hashing-based identification, so hits are always
/// sound). Once full it stops admitting new entries rather than
/// evicting — the searches revisit recent edge sets far more often than
/// old ones, and a hard cap keeps worst-case memory flat.
pub(crate) struct WitnessMemo<K, V> {
    cap: usize,
    map: HashMap<K, V>,
}

impl<K: Eq + Hash, V: Clone> WitnessMemo<K, V> {
    /// A memo admitting at most `cap` entries.
    pub(crate) fn new(cap: usize) -> Self {
        WitnessMemo {
            cap,
            map: HashMap::new(),
        }
    }

    /// A memo that never stores anything (serial paths, which must
    /// keep byte-identical behavior to the pre-parallel checker).
    pub(crate) fn disabled() -> Self {
        Self::new(0)
    }

    /// Look up a previously computed result.
    pub(crate) fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key)
    }

    /// Record a result if there is room.
    pub(crate) fn put(&mut self, key: K, value: V) {
        if self.map.len() < self.cap {
            self.map.insert(key, value);
        }
    }
}

/// Per-worker memo capacity for the checker searches.
pub(crate) const MEMO_CAP: usize = 4096;

/// Pseudo-worker id for the seed prefix.
const SEED_WORKER: usize = usize::MAX;

/// The shared frontier of unexplored serialization-order prefixes:
/// a Mutex/Condvar deque with idle-counting termination. Items carry
/// the pushing worker's id so pops by another worker count as steals.
struct Frontier {
    state: Mutex<FrontierState>,
    available: Condvar,
    workers: usize,
}

struct FrontierState {
    items: VecDeque<(usize, Vec<usize>)>,
    idle: usize,
    done: bool,
}

impl Frontier {
    fn new(workers: usize) -> Self {
        Frontier {
            state: Mutex::new(FrontierState {
                items: VecDeque::new(),
                idle: 0,
                done: false,
            }),
            available: Condvar::new(),
            workers,
        }
    }

    fn push(&self, from: usize, prefix: Vec<usize>) {
        let mut s = self.state.lock().unwrap();
        s.items.push_back((from, prefix));
        drop(s);
        self.available.notify_one();
    }

    /// Pop the oldest pending prefix, blocking while the frontier is
    /// empty but other workers may still push. Returns `None` once all
    /// workers are idle with an empty frontier (the search is over) and
    /// whether the item was stolen from another worker.
    fn pop(&self, me: usize) -> Option<(Vec<usize>, bool)> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.done {
                return None;
            }
            if let Some((from, prefix)) = s.items.pop_front() {
                return Some((prefix, from != me && from != SEED_WORKER));
            }
            s.idle += 1;
            if s.idle == self.workers {
                s.done = true;
                s.idle -= 1;
                self.available.notify_all();
                return None;
            }
            s = self.available.wait(s).unwrap();
            s.idle -= 1;
        }
    }

    /// Is anyone starving? Expanding (rather than claiming) a popped
    /// prefix is only worth the queue traffic when the frontier has run
    /// dry or a sibling is already waiting for work.
    fn hungry(&self) -> bool {
        let s = self.state.lock().unwrap();
        !s.done && (s.items.is_empty() || s.idle > 0)
    }
}

/// Best-so-far publication: the lexicographically least claimed prefix
/// that produced a result, plus what every worker is currently running
/// (so a new best can cancel exactly the now-irrelevant subtrees).
struct BestState<R> {
    best: Option<(Vec<usize>, R)>,
    running: Vec<Option<Vec<usize>>>,
}

/// Run the serialization-order search over `threads` scoped workers
/// feeding from a work-stealing frontier, returning the result of the
/// lexicographically least successful prefix — exactly what a serial
/// left-to-right scan would produce.
///
/// `expand(prefix)` lists the transactions that may validly extend
/// `prefix`, in ascending index order (the serial candidate order);
/// `n_txn` bounds prefix growth. `init` builds one mutable worker-local
/// state (e.g. a memo) per worker; `work(prefix, cancel, state, stats)`
/// exhausts the prefix's subtree in serial DFS order, stopping early
/// once `cancel.hit()` — its result is discarded in that case anyway.
/// Per-worker [`SearchStats`] are merged into `stats` (claimed prefixes
/// count as `stolen_prefixes`; the caller sets `workers`).
pub(crate) fn run_order_pool<R, S, X, I, F>(
    threads: usize,
    n_txn: usize,
    expand: X,
    init: I,
    work: F,
    stats: &mut SearchStats,
) -> Option<R>
where
    R: Send,
    S: Send,
    X: Fn(&[usize]) -> Vec<usize> + Sync,
    I: Fn() -> S + Sync,
    F: Fn(&[usize], &Cancel<'_>, &mut S, &mut SearchStats) -> Option<R> + Sync,
{
    let frontier = Frontier::new(threads);
    frontier.push(SEED_WORKER, Vec::new());
    let shared: Mutex<BestState<R>> = Mutex::new(BestState {
        best: None,
        running: (0..threads).map(|_| None).collect(),
    });
    let flags: Vec<AtomicBool> = (0..threads).map(|_| AtomicBool::new(false)).collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let frontier = &frontier;
                let shared = &shared;
                let flags = &flags;
                let expand = &expand;
                let init = &init;
                let work = &work;
                s.spawn(move || {
                    let mut local = SearchStats::default();
                    let mut state = init();
                    while let Some((prefix, _stolen)) = frontier.pop(w) {
                        // Drop without searching if a lex-smaller
                        // subtree has already won: the serial scan
                        // would have stopped before reaching this one.
                        {
                            let b = shared.lock().unwrap();
                            if matches!(&b.best, Some((bp, _)) if *bp < prefix) {
                                trace::emit(EventKind::PrefixCancel, prefix.len() as u64, 0);
                                continue;
                            }
                        }
                        if prefix.len() < n_txn && frontier.hungry() {
                            for t in expand(&prefix) {
                                let mut child = prefix.clone();
                                child.push(t);
                                frontier.push(w, child);
                            }
                            continue;
                        }
                        // Claim: register the running prefix so a later
                        // best can cancel it, re-checking the best under
                        // the same lock (publication is also locked, so
                        // no cancel can be missed).
                        {
                            let mut b = shared.lock().unwrap();
                            if matches!(&b.best, Some((bp, _)) if *bp < prefix) {
                                trace::emit(EventKind::PrefixCancel, prefix.len() as u64, 0);
                                continue;
                            }
                            b.running[w] = Some(prefix.clone());
                            flags[w].store(false, Ordering::Relaxed);
                        }
                        local.stolen_prefixes += 1;
                        trace::emit(EventKind::PrefixClaim, prefix.len() as u64, w as u64);
                        let cancel = Cancel::flag(&flags[w]);
                        let result = work(&prefix, &cancel, &mut state, &mut local);
                        let mut b = shared.lock().unwrap();
                        b.running[w] = None;
                        if let Some(r) = result {
                            let better = match &b.best {
                                None => true,
                                Some((bp, _)) => prefix < *bp,
                            };
                            if better {
                                b.best = Some((prefix, r));
                                let bp = &b.best.as_ref().unwrap().0;
                                for (i, run) in b.running.iter().enumerate() {
                                    if matches!(run, Some(rp) if rp > bp) {
                                        flags[i].store(true, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("checker worker panicked");
            stats.absorb(&local);
        }
    });

    shared.into_inner().unwrap().best.map(|(_, r)| r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_auto() {
        let cfg = ParallelConfig::default();
        assert_eq!(cfg.threads, 0);
        assert!(cfg.effective_threads() >= 1);
        assert!(cfg.serial_for(0));
        assert!(cfg.serial_for(cfg.min_units - 1));
    }

    #[test]
    fn pinned_config_overrides_auto() {
        let cfg = ParallelConfig::with_threads(4);
        assert_eq!(cfg.effective_threads(), 4);
        assert!(ParallelConfig::with_threads(1).serial_for(usize::MAX));
    }

    #[test]
    fn memo_caps_and_replays() {
        let mut m: WitnessMemo<u32, u32> = WitnessMemo::new(2);
        m.put(1, 10);
        m.put(2, 20);
        m.put(3, 30); // over capacity: dropped
        assert_eq!(m.get(&1), Some(&10));
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&3), None);
        assert_eq!(WitnessMemo::<u32, u32>::disabled().get(&1), None);
    }

    /// The candidate order space for the pool tests: permutations of
    /// `0..n` with no placement constraints.
    fn free_expand(n: usize) -> impl Fn(&[usize]) -> Vec<usize> {
        move |prefix: &[usize]| (0..n).filter(|t| !prefix.contains(t)).collect()
    }

    /// Exhaust `prefix`'s subtree in serial DFS order, returning the
    /// first completion that `hits` accepts.
    fn subtree_first(
        n: usize,
        prefix: &[usize],
        hits: &dyn Fn(&[usize]) -> bool,
    ) -> Option<Vec<usize>> {
        fn rec(
            n: usize,
            order: &mut Vec<usize>,
            hits: &dyn Fn(&[usize]) -> bool,
        ) -> Option<Vec<usize>> {
            if order.len() == n {
                return hits(order).then(|| order.clone());
            }
            for t in 0..n {
                if order.contains(&t) {
                    continue;
                }
                order.push(t);
                if let Some(found) = rec(n, order, hits) {
                    return Some(found);
                }
                order.pop();
            }
            None
        }
        rec(n, &mut prefix.to_vec(), hits)
    }

    #[test]
    fn pool_returns_serial_first_success() {
        // Accepted orders picked so the serial-first one ([1,0,2,3]) is
        // neither the lex-least accepted by chance nor the easiest to
        // find in parallel.
        let n = 4;
        let accepted: Vec<Vec<usize>> = vec![vec![3, 2, 1, 0], vec![1, 0, 2, 3], vec![2, 0, 1, 3]];
        let hits = |o: &[usize]| accepted.iter().any(|a| a == o);
        let serial = subtree_first(n, &[], &hits).unwrap();
        assert_eq!(serial, vec![1, 0, 2, 3]);
        for threads in [1, 2, 4] {
            let mut stats = SearchStats::default();
            let got = run_order_pool(
                threads,
                n,
                free_expand(n),
                || (),
                |prefix, cancel, _s, _l| {
                    if cancel.hit() {
                        return None;
                    }
                    subtree_first(n, prefix, &hits)
                },
                &mut stats,
            );
            assert_eq!(got.as_deref(), Some(serial.as_slice()), "threads={threads}");
        }
    }

    #[test]
    fn pool_reports_no_result_when_all_fail() {
        let mut stats = SearchStats::default();
        let got: Option<Vec<usize>> = run_order_pool(
            2,
            3,
            free_expand(3),
            || (),
            |_, _, _: &mut (), _| None,
            &mut stats,
        );
        assert_eq!(got, None);
        // Every subtree was claimed and exhausted by some worker.
        assert!(stats.stolen_prefixes > 0);
    }

    #[test]
    fn pool_handles_empty_order_space() {
        // Zero transactions: the seed prefix is already complete.
        let mut stats = SearchStats::default();
        let got = run_order_pool(
            2,
            0,
            |_: &[usize]| Vec::new(),
            || (),
            |prefix, _, _: &mut (), _| Some(prefix.to_vec()),
            &mut stats,
        );
        assert_eq!(got, Some(Vec::new()));
        assert_eq!(stats.stolen_prefixes, 1);
    }

    #[test]
    fn cancel_token_semantics() {
        let flag = AtomicBool::new(false);
        let c = Cancel::flag(&flag);
        assert!(!c.hit());
        flag.store(true, Ordering::Relaxed);
        assert!(c.hit());
        assert!(!Cancel::never().hit());
    }
}
