//! Sequential specifications of shared objects (§2 *Object semantics*).
//!
//! The semantics `[[x]]` of an object `x` is the set of command sequences
//! a single process could generate on it. The paper's running example is
//! the read/write register initialized to 0; the framework itself is
//! defined for arbitrary objects ("richer than simple read-write
//! variables"), which we exercise with a fetch-and-add counter.
//!
//! Specifications are given operationally: a state, an initial value, and
//! a partial transition function [`Spec::apply`] that rejects illegal
//! commands. Membership of a finite sequence in `[[x]]` is then just a
//! replay ([`Spec::check_sequence`]).

use crate::ids::{Val, Var};
use crate::op::Command;
use std::collections::HashMap;

/// The sequential specification of one shared object.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Spec {
    /// A read/write register with initial value 0 (the paper's `[[x]]`
    /// for shared variables). Rejects [`Command::FetchAdd`].
    #[default]
    Register,
    /// A register that additionally supports atomic fetch-and-add —
    /// demonstrating that opacity and SGLA are checked against arbitrary
    /// object semantics, not just reads and writes.
    Counter,
}

/// Abstract state of an object while replaying a command sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpecState {
    /// The object holds a definite value.
    Val(Val),
    /// The object's value is unconstrained: a `havoc` command was applied
    /// and no write has overwritten it yet (Junk-SC, §3.2). Any read is
    /// legal in this state.
    Junk,
}

impl Spec {
    /// The initial state (value 0 in the paper).
    pub fn init(&self) -> SpecState {
        SpecState::Val(0)
    }

    /// Apply one command to a state. Returns the successor state, or
    /// `None` if the command is illegal in this state (e.g. a read
    /// returning a value the object does not hold).
    pub fn apply(&self, st: SpecState, cmd: &Command) -> Option<SpecState> {
        match cmd {
            Command::Read { val, .. } | Command::DepRead { val, .. } => match st {
                SpecState::Val(v) if v == *val => Some(st),
                SpecState::Val(_) => None,
                SpecState::Junk => Some(st),
            },
            Command::Write { val, .. } | Command::DepWrite { val, .. } => {
                Some(SpecState::Val(*val))
            }
            Command::Havoc { .. } => Some(SpecState::Junk),
            Command::FetchAdd { add, ret, .. } => match (self, st) {
                (Spec::Register, _) => None,
                (Spec::Counter, SpecState::Val(v)) if v == *ret => {
                    Some(SpecState::Val(v.wrapping_add(*add)))
                }
                (Spec::Counter, SpecState::Val(_)) => None,
                // From junk, the returned value is unconstrained and the
                // successor value remains unconstrained.
                (Spec::Counter, SpecState::Junk) => Some(SpecState::Junk),
            },
        }
    }

    /// Membership test for `[[x]]`: replay a command sequence from the
    /// initial state.
    pub fn check_sequence<'a>(&self, cmds: impl IntoIterator<Item = &'a Command>) -> bool {
        let mut st = self.init();
        for c in cmds {
            match self.apply(st, c) {
                Some(next) => st = next,
                None => return false,
            }
        }
        true
    }
}

/// Assignment of sequential specifications to variables: a default spec
/// with per-variable overrides.
#[derive(Clone, Debug, Default)]
pub struct SpecRegistry {
    default: Spec,
    overrides: HashMap<Var, Spec>,
}

impl SpecRegistry {
    /// All variables are registers (the paper's default setting).
    pub fn registers() -> Self {
        SpecRegistry::default()
    }

    /// All variables use `spec` by default.
    pub fn with_default(spec: Spec) -> Self {
        SpecRegistry {
            default: spec,
            overrides: HashMap::new(),
        }
    }

    /// Override the specification of one variable.
    pub fn set(&mut self, var: Var, spec: Spec) -> &mut Self {
        self.overrides.insert(var, spec);
        self
    }

    /// The specification governing `var`.
    pub fn spec_of(&self, var: Var) -> Spec {
        self.overrides.get(&var).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{X, Y};

    fn rd(val: Val) -> Command {
        Command::Read { var: X, val }
    }

    fn wr(val: Val) -> Command {
        Command::Write { var: X, val }
    }

    #[test]
    fn register_reads_last_written() {
        let s = Spec::Register;
        assert!(s.check_sequence(&[rd(0), wr(5), rd(5), rd(5), wr(2), rd(2)]));
        assert!(!s.check_sequence(&[wr(5), rd(4)]));
        assert!(!s.check_sequence(&[rd(1)])); // initial value is 0
    }

    #[test]
    fn register_rejects_fetch_add() {
        let s = Spec::Register;
        assert!(!s.check_sequence(&[Command::FetchAdd {
            var: X,
            add: 1,
            ret: 0
        }]));
    }

    #[test]
    fn counter_fetch_add() {
        let s = Spec::Counter;
        assert!(s.check_sequence(&[
            Command::FetchAdd {
                var: X,
                add: 2,
                ret: 0
            },
            Command::FetchAdd {
                var: X,
                add: 3,
                ret: 2
            },
            rd(5),
        ]));
        assert!(!s.check_sequence(&[
            Command::FetchAdd {
                var: X,
                add: 2,
                ret: 0
            },
            Command::FetchAdd {
                var: X,
                add: 3,
                ret: 0
            },
        ]));
    }

    #[test]
    fn havoc_makes_any_read_legal() {
        let s = Spec::Register;
        assert!(s.check_sequence(&[Command::Havoc { var: X }, rd(123), rd(9)]));
        // A write after havoc re-constrains the value.
        assert!(!s.check_sequence(&[Command::Havoc { var: X }, wr(1), rd(2)]));
    }

    #[test]
    fn junk_counter_fetch_add_unconstrained() {
        let s = Spec::Counter;
        assert!(s.check_sequence(&[
            Command::Havoc { var: X },
            Command::FetchAdd {
                var: X,
                add: 1,
                ret: 77
            },
            rd(1234),
        ]));
    }

    #[test]
    fn registry_overrides() {
        let mut reg = SpecRegistry::registers();
        reg.set(Y, Spec::Counter);
        assert_eq!(reg.spec_of(X), Spec::Register);
        assert_eq!(reg.spec_of(Y), Spec::Counter);
        let all_counters = SpecRegistry::with_default(Spec::Counter);
        assert_eq!(all_counters.spec_of(X), Spec::Counter);
    }

    #[test]
    fn dependent_commands_behave_like_plain() {
        use crate::ids::OpId;
        use crate::op::DepKind;
        let s = Spec::Register;
        let dw = Command::DepWrite {
            var: X,
            val: 3,
            kind: DepKind::Data,
            deps: vec![OpId(1)],
        };
        let dr = Command::DepRead {
            var: X,
            val: 3,
            kind: DepKind::Control,
            deps: vec![OpId(1)],
        };
        assert!(s.check_sequence(&[dw.clone(), dr.clone()]));
        assert!(!s.check_sequence(&[dr],));
    }
}
