//! Polynomial triage tier for the streaming opacity monitor.
//!
//! The full parametrized-opacity checker ([`check_opacity`]) is an
//! exponential backtracking search — exact, but far too expensive to
//! run on every window of a live event stream. This module provides a
//! **sound fast path**: a polynomial check that either *clears* a
//! history (proving it opaque) or *abstains* (the caller escalates to
//! the full checker). It never claims a violation, so a streaming
//! monitor built on it reports exactly the verdicts the batch checker
//! would.
//!
//! ### Why the fast path is sound for every bundled model
//!
//! The checker's witness is a permutation of *units* (one per
//! transaction, one per non-transactional operation) that respects the
//! generating relation of `≺h`, one viewer's minimal view edges, and a
//! real-time-consistent transaction serialization order — with every
//! operation prefix-legal. Triage proposes two *candidate* unit
//! orders and replays each through the same incremental
//! [`PrefixChecker`] the search uses:
//!
//! 1. units sorted by the history index of their **first** operation;
//! 2. units sorted by the history index of their **last** operation.
//!
//! Both candidates provably respect every constraint edge the search
//! would impose, for *any* of the bundled memory models:
//!
//! * **`≺h` case 1** (completed `T` wholly before `T'`): then
//!   `T.last < T'.first ≤ T'.last` and `T.first < T'.first`, so both
//!   sorts place `T` first.
//! * **`≺h` case 2** (same-process program order, one side
//!   transactional): same-process spans never interleave — a
//!   transaction's span contains no other unit of its process — so the
//!   spans are disjoint and both sorts preserve their order.
//! * **View edges**: [`MemoryModel::required_in_view`] only relates
//!   same-process *non-transactional* command pairs `i < j`; those
//!   units are single operations with `first = last = index`, kept in
//!   index order by both sorts.
//! * **Serialization order**: the transaction order induced by either
//!   sort satisfies the checker's real-time placement rule (a
//!   completed transaction ending before another begins sorts first
//!   under both keys).
//!
//! So if either replay is fully legal, the candidate order *is* a
//! witness for every viewer simultaneously, and [`check_opacity`]
//! would return opaque. By Theorem 6 (parametrized opacity implies
//! SGLA) a cleared history also satisfies SGLA, so one triage pass
//! serves both properties.
//!
//! Cost: `O(n log n)` for the sorts plus two linear [`PrefixChecker`]
//! replays — polynomial, allocation-light, and independent of the
//! model's view structure. On conflict-serializable traffic (what
//! correct STMs produce) the commit-time order is almost always
//! legal, so the monitor's escalation rate stays near zero.

use crate::history::{History, TxnStatus};
use crate::legal::PrefixChecker;
use crate::model::MemoryModel;
use crate::spec::SpecRegistry;

/// Outcome of the polynomial triage tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Triage {
    /// The history is opaque (and, by Theorem 6, SGLA); proved by a
    /// linear witness, no full search needed.
    Cleared,
    /// The fast path could not decide; escalate to the full checker.
    Escalate,
}

impl Triage {
    /// Did triage prove the history opaque?
    pub fn cleared(self) -> bool {
        matches!(self, Triage::Cleared)
    }
}

/// Triage `h` against `model` with register semantics (the paper's
/// default object semantics).
pub fn triage_opacity(h: &History, model: &dyn MemoryModel) -> Triage {
    triage_opacity_with(h, model, &SpecRegistry::registers())
}

/// Triage `h` against `model` under explicit sequential
/// specifications. [`Triage::Cleared`] guarantees
/// `check_opacity_with(h, model, specs).is_opaque()`; see the module
/// docs for the argument.
pub fn triage_opacity_with(h: &History, model: &dyn MemoryModel, specs: &SpecRegistry) -> Triage {
    let th = model.transform(h);
    // Units in history order: transactions (by txn index, which is
    // start-op order) then non-transactional operations.
    let mut by_first: Vec<UnitSpan> = Vec::with_capacity(th.txns().len());
    for (ti, t) in th.txns().iter().enumerate() {
        by_first.push(UnitSpan {
            txn: Some(ti),
            first: t.first(),
            last: t.last(),
        });
    }
    for i in 0..th.len() {
        if th.txn_of(i).is_none() {
            by_first.push(UnitSpan {
                txn: None,
                first: i,
                last: i,
            });
        }
    }
    let mut by_last = by_first.clone();
    by_first.sort_by_key(|u| u.first);
    by_last.sort_by_key(|u| u.last);
    if replay_legal(&th, specs, &by_first) || replay_legal(&th, specs, &by_last) {
        Triage::Cleared
    } else {
        Triage::Escalate
    }
}

/// One schedulable unit with its history-index span: a transaction
/// (`txn = Some(index into th.txns())`) or a single non-transactional
/// operation (`first == last` = its history index).
#[derive(Clone, Copy, Debug)]
struct UnitSpan {
    txn: Option<usize>,
    first: usize,
    last: usize,
}

/// Replay `order` through a fresh [`PrefixChecker`], exactly as the
/// full search applies units: non-transactional operations step with
/// `transactional = false`, a transaction's operations step in program
/// order with `transactional = true`, and a live transaction is
/// suspended after its last operation.
fn replay_legal(th: &History, specs: &SpecRegistry, order: &[UnitSpan]) -> bool {
    let mut c = PrefixChecker::new(specs);
    for u in order {
        match u.txn {
            None => {
                if !c.step(&th.ops()[u.first].op, false) {
                    return false;
                }
            }
            Some(ti) => {
                let t = &th.txns()[ti];
                for &i in &t.op_indices {
                    if !c.step(&th.ops()[i].op, true) {
                        return false;
                    }
                }
                if t.status == TxnStatus::Live {
                    c.suspend_live();
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::model::{all_models, Rmo, Sc};
    use crate::opacity::check_opacity;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// A clean serializable exchange: triage must clear it.
    #[test]
    fn serial_commits_clear() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, 1);
        b.commit(p(2));
        let h = b.build().unwrap();
        assert_eq!(triage_opacity(&h, &Sc), Triage::Cleared);
    }

    /// Overlapping transactions whose only legal serialization inverts
    /// start order: the by-last candidate finds it.
    #[test]
    fn inverted_serialization_clears() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.start(p(2));
        b.write(p(1), X, 1);
        b.read(p(2), X, 0); // T2 must serialize before T1
        b.commit(p(2));
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(check_opacity(&h, &Sc).is_opaque());
        assert_eq!(triage_opacity(&h, &Sc), Triage::Cleared);
    }

    /// A genuine violation must never be cleared.
    #[test]
    fn violations_escalate() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, 1);
        b.read(p(2), X, 0);
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert_eq!(triage_opacity(&h, &Sc), Triage::Escalate);
        // RMO allows this outcome but only via a reordered view the
        // linear candidates don't model — abstaining is fine (sound),
        // clearing would also be fine; either way no false verdict.
        if triage_opacity(&h, &Rmo).cleared() {
            assert!(check_opacity(&h, &Rmo).is_opaque());
        }
    }

    /// Live transactions replay with suspension, like the full search.
    #[test]
    fn live_txn_clears() {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(2));
        b.read(p(2), X, 1);
        let h = b.build().unwrap();
        assert_eq!(triage_opacity(&h, &Sc), Triage::Cleared);
    }

    /// Soundness: on a brute-force corpus of small histories, a triage
    /// clear always agrees with the full checker, for every model.
    #[test]
    fn cleared_implies_opaque_exhaustive() {
        let mut checked = 0u32;
        for wv in [0u64, 1] {
            for r1 in [0u64, 1] {
                for r2 in [0u64, 1] {
                    for commit2 in [true, false] {
                        let mut b = HistoryBuilder::new();
                        b.start(p(1));
                        b.write(p(1), X, 1);
                        b.write(p(1), Y, wv);
                        b.commit(p(1));
                        b.start(p(2));
                        b.read(p(2), Y, r1);
                        b.read(p(2), X, r2);
                        if commit2 {
                            b.commit(p(2));
                        } else {
                            b.abort(p(2));
                        }
                        b.read(p(3), X, r2);
                        let h = b.build().unwrap();
                        for m in all_models() {
                            if triage_opacity(&h, m).cleared() {
                                assert!(
                                    check_opacity(&h, m).is_opaque(),
                                    "triage cleared a non-opaque history under {}",
                                    m.name()
                                );
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "corpus never exercised the cleared path");
    }
}
