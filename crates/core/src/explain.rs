//! Diagnosis of non-opaque histories: *why* did the checker reject?
//!
//! [`explain_opacity`] re-runs the witness search and reports, for the
//! serialization order that got furthest, the longest legal prefix any
//! viewer achieved and the operations that could not be placed next —
//! each annotated with the constraint or legality failure blocking it.
//! This is the difference between "not opaque" and an actionable
//! counterexample narrative, and it is what the `model_checker` example
//! prints for violating traces.

use crate::history::{History, TxnStatus};
use crate::ids::OpId;
use crate::legal::PrefixChecker;
use crate::model::MemoryModel;
use crate::opacity::check_opacity_with;
use crate::spec::SpecRegistry;

/// Why an operation could not extend the witness prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Blocker {
    /// Some required predecessor (by `≺h`, the view, or the chosen
    /// serialization order) has not been placed yet.
    OrderedAfter(OpId),
    /// Placing the operation (or its transaction) violates legality —
    /// typically a read value with no justifying write at this point.
    Illegal,
}

/// A diagnosis of a non-opaque history.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// Whether the history was actually opaque (then the rest is empty).
    pub opaque: bool,
    /// Longest legal witness prefix achieved (operation ids of the
    /// transformed history).
    pub best_prefix: Vec<OpId>,
    /// For each operation not in the prefix that is a candidate next
    /// step, what blocks it.
    pub stuck: Vec<(OpId, Blocker)>,
}

impl Diagnosis {
    /// Render a short human-readable explanation.
    pub fn render(&self, h: &History) -> String {
        if self.opaque {
            return "history is opaque (no diagnosis)".into();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "no witness exists; best prefix covered {}/{} operations\n",
            self.best_prefix.len(),
            h.len()
        ));
        let op_str = |id: &OpId| {
            h.index_of(*id)
                .map(|i| format!("{}:{}", h.ops()[i].proc, h.ops()[i].op))
                .unwrap_or_else(|| id.to_string())
        };
        if !self.best_prefix.is_empty() {
            out.push_str("  prefix: ");
            out.push_str(
                &self
                    .best_prefix
                    .iter()
                    .map(op_str)
                    .collect::<Vec<_>>()
                    .join(" → "),
            );
            out.push('\n');
        }
        for (id, b) in &self.stuck {
            match b {
                Blocker::OrderedAfter(dep) => {
                    out.push_str(&format!("  {} must wait for {}\n", op_str(id), op_str(dep)))
                }
                Blocker::Illegal => out.push_str(&format!(
                    "  {} cannot be made legal at any remaining position\n",
                    op_str(id)
                )),
            }
        }
        out
    }
}

/// Diagnose a history against opacity parametrized by `model` (register
/// semantics).
pub fn explain_opacity(h: &History, model: &dyn MemoryModel) -> Diagnosis {
    explain_opacity_with(h, model, &SpecRegistry::registers())
}

/// Diagnose with explicit sequential specifications.
///
/// The diagnosis is *greedy*: it follows one serialization order (the
/// history order of transactions, restricted to real-time-consistent
/// choices) and extends the prefix with any placeable unit until stuck;
/// it is meant to explain, not to re-decide (use
/// [`check_opacity`](crate::opacity::check_opacity) for the verdict).
pub fn explain_opacity_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> Diagnosis {
    if check_opacity_with(h, model, specs).is_opaque() {
        return Diagnosis {
            opaque: true,
            best_prefix: Vec::new(),
            stuck: Vec::new(),
        };
    }
    let th = model.transform(h);

    // Units: one per transaction (ops contiguous, program order), one
    // per non-transactional op; edges as in the checker, with the
    // serialization order fixed to history order of transaction starts.
    #[derive(Clone)]
    enum Unit {
        Txn(usize),
        Nt(usize),
    }
    let txns = th.txns();
    let mut units: Vec<Unit> = (0..txns.len()).map(Unit::Txn).collect();
    let mut unit_of = vec![usize::MAX; th.len()];
    for (ti, t) in txns.iter().enumerate() {
        for &i in &t.op_indices {
            unit_of[i] = ti;
        }
    }
    for (i, u) in unit_of.iter_mut().enumerate() {
        if th.txn_of(i).is_none() {
            *u = units.len();
            units.push(Unit::Nt(i));
        }
    }

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..th.len() {
        for j in 0..th.len() {
            if i != j && unit_of[i] != unit_of[j] && th.precedes_rt(i, j) {
                edges.push((unit_of[i], unit_of[j]));
            }
        }
    }
    let ops = th.ops();
    for i in 0..th.len() {
        if th.is_transactional(i) || ops[i].op.command().is_none() {
            continue;
        }
        for j in (i + 1)..th.len() {
            if th.is_transactional(j) || ops[j].op.command().is_none() || ops[i].proc != ops[j].proc
            {
                continue;
            }
            if model.required(&th, i, j) {
                edges.push((unit_of[i], unit_of[j]));
            }
        }
    }
    // Serialization: history order of transaction starts.
    for w in 0..txns.len().saturating_sub(1) {
        edges.push((w, w + 1));
    }
    edges.sort_unstable();
    edges.dedup();

    // Greedy placement.
    let n = units.len();
    let mut placed = vec![false; n];
    let mut prefix: Vec<OpId> = Vec::new();
    let mut checker = PrefixChecker::new(specs);
    loop {
        let mut progressed = false;
        'units: for u in 0..n {
            if placed[u] {
                continue;
            }
            for &(a, b) in &edges {
                if b == u && !placed[a] {
                    continue 'units;
                }
            }
            // Try to apply.
            let mut c = checker.clone();
            let ok = match &units[u] {
                Unit::Nt(i) => c.step(&th.ops()[*i].op, false),
                Unit::Txn(ti) => {
                    let t = &txns[*ti];
                    let mut ok = true;
                    for &i in &t.op_indices {
                        if !c.step(&th.ops()[i].op, true) {
                            ok = false;
                            break;
                        }
                    }
                    if ok && t.status == TxnStatus::Live {
                        c.suspend_live();
                    }
                    ok
                }
            };
            if ok {
                match &units[u] {
                    Unit::Nt(i) => prefix.push(th.ops()[*i].id),
                    Unit::Txn(ti) => {
                        for &i in &txns[*ti].op_indices {
                            prefix.push(th.ops()[i].id);
                        }
                    }
                }
                checker = c;
                placed[u] = true;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Classify what's stuck.
    let mut stuck = Vec::new();
    for u in 0..n {
        if placed[u] {
            continue;
        }
        let rep = match &units[u] {
            Unit::Nt(i) => th.ops()[*i].id,
            Unit::Txn(ti) => th.ops()[txns[*ti].first()].id,
        };
        let waiting = edges
            .iter()
            .find(|&&(a, b)| b == u && !placed[a])
            .map(|&(a, _)| a);
        match waiting {
            Some(a) => {
                let dep = match &units[a] {
                    Unit::Nt(i) => th.ops()[*i].id,
                    Unit::Txn(ti) => th.ops()[txns[*ti].first()].id,
                };
                stuck.push((rep, Blocker::OrderedAfter(dep)));
            }
            None => stuck.push((rep, Blocker::Illegal)),
        }
    }

    Diagnosis {
        opaque: false,
        best_prefix: prefix,
        stuck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::model::{Rmo, Sc};

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    fn fig1_anomaly() -> History {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, 1);
        b.read(p(2), X, 0);
        b.build().unwrap()
    }

    #[test]
    fn opaque_history_yields_empty_diagnosis() {
        let h = fig1_anomaly();
        let d = explain_opacity(&h, &Rmo);
        assert!(d.opaque);
        assert!(d.stuck.is_empty());
        assert_eq!(d.render(&h), "history is opaque (no diagnosis)");
    }

    #[test]
    fn anomaly_diagnosis_identifies_stuck_reads() {
        let h = fig1_anomaly();
        let d = explain_opacity(&h, &Sc);
        assert!(!d.opaque);
        // The transaction places; the reads get stuck (rd y needs the
        // txn, rd x needs to precede it but is view-ordered after rd y).
        assert!(!d.stuck.is_empty());
        let text = d.render(&h);
        assert!(text.contains("best prefix"), "{text}");
        assert!(d.best_prefix.len() < h.len());
    }

    #[test]
    fn illegal_value_diagnosed() {
        let mut b = HistoryBuilder::new();
        b.read(p(1), X, 77); // never written
        let h = b.build().unwrap();
        let d = explain_opacity(&h, &Sc);
        assert!(!d.opaque);
        assert!(matches!(d.stuck.as_slice(), [(_, Blocker::Illegal)]));
    }
}
