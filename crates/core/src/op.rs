//! Operations and commands (§2 *Preliminaries*).
//!
//! The paper's set of operations is `Ô = O ∪ {start, commit, abort}`,
//! where `O ⊆ C × Obj` pairs a *command* (with its arguments and return
//! value) with the object it acts on. Besides plain reads and writes, the
//! framework supports the *control/data-dependent* read and write commands
//! (`cdrd`, `ddrd`, `cdwr`, `ddwr` in the paper) that the RMO and Alpha
//! models need in order to distinguish dependent from independent
//! accesses, the `havoc` command produced by the Junk-SC transformation
//! function, and a fetch-and-add command demonstrating that the framework
//! is not limited to read/write registers.

use crate::ids::{OpId, Val, Var};
use std::fmt;

/// Whether a dependent operation is control- or data-dependent on its
/// predecessors (the `cd`/`dd` prefix of the paper's dependent commands).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Control dependency (the operation is guarded by a branch whose
    /// condition was computed from the predecessor operations).
    Control,
    /// Data dependency (the operation's address or value was computed
    /// from the predecessors' results).
    Data,
}

/// A command on a shared object, with arguments and return values
/// inlined — an element of the paper's set `C`, paired with its object.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Command {
    /// `(rd, v)` on `var`: a read returning value `val`.
    Read {
        /// Object read.
        var: Var,
        /// Value returned by the read.
        val: Val,
    },
    /// `(wr, v)` on `var`: a write storing `val`.
    Write {
        /// Object written.
        var: Var,
        /// Value stored.
        val: Val,
    },
    /// `(cdrd/ddrd, v, K)` on `var`: a read that is control- or
    /// data-dependent on the operations in `deps`.
    DepRead {
        /// Object read.
        var: Var,
        /// Value returned.
        val: Val,
        /// Control or data dependency.
        kind: DepKind,
        /// The operation identifiers this read depends on (the set `K`).
        deps: Vec<OpId>,
    },
    /// `(cdwr/ddwr, v, K)` on `var`: a write that is control- or
    /// data-dependent on the operations in `deps`.
    DepWrite {
        /// Object written.
        var: Var,
        /// Value stored.
        val: Val,
        /// Control or data dependency.
        kind: DepKind,
        /// The operation identifiers this write depends on.
        deps: Vec<OpId>,
    },
    /// The `havoc` pseudo-command introduced by transformation functions
    /// of models without out-of-thin-air guarantees (Junk-SC, §3.2):
    /// after `havoc(x)` and before the next write of `x`, a read of `x`
    /// may return *any* value.
    Havoc {
        /// Object whose value becomes unconstrained.
        var: Var,
    },
    /// Fetch-and-add: atomically adds `add` to the object and returns the
    /// *previous* value `ret`. Not part of the paper's register alphabet,
    /// but the framework is defined for arbitrary sequential
    /// specifications ("transactional objects with semantics richer than
    /// that of simple read-write variables", §1), which this exercises.
    FetchAdd {
        /// Object updated.
        var: Var,
        /// Amount added.
        add: Val,
        /// Previous value returned.
        ret: Val,
    },
}

impl Command {
    /// The object this command acts on.
    pub fn var(&self) -> Var {
        match self {
            Command::Read { var, .. }
            | Command::Write { var, .. }
            | Command::DepRead { var, .. }
            | Command::DepWrite { var, .. }
            | Command::Havoc { var }
            | Command::FetchAdd { var, .. } => *var,
        }
    }

    /// True for plain and dependent reads ("read operation" in the
    /// paper's general sense, which covers `rd`, `cdrd` and `ddrd`).
    pub fn is_read(&self) -> bool {
        matches!(self, Command::Read { .. } | Command::DepRead { .. })
    }

    /// True for plain and dependent writes (covers `wr`, `cdwr`, `ddwr`).
    pub fn is_write(&self) -> bool {
        matches!(self, Command::Write { .. } | Command::DepWrite { .. })
    }

    /// True only for the plain, independent read command `rd`.
    pub fn is_plain_read(&self) -> bool {
        matches!(self, Command::Read { .. })
    }

    /// True only for the plain, independent write command `wr`.
    pub fn is_plain_write(&self) -> bool {
        matches!(self, Command::Write { .. })
    }

    /// The value returned, for reads and fetch-and-adds.
    pub fn read_val(&self) -> Option<Val> {
        match self {
            Command::Read { val, .. } | Command::DepRead { val, .. } => Some(*val),
            Command::FetchAdd { ret, .. } => Some(*ret),
            _ => None,
        }
    }

    /// The value stored, for writes.
    pub fn written_val(&self) -> Option<Val> {
        match self {
            Command::Write { val, .. } | Command::DepWrite { val, .. } => Some(*val),
            _ => None,
        }
    }

    /// The dependency set `K` with its kind, for dependent commands.
    pub fn deps(&self) -> Option<(DepKind, &[OpId])> {
        match self {
            Command::DepRead { kind, deps, .. } | Command::DepWrite { kind, deps, .. } => {
                Some((*kind, deps))
            }
            _ => None,
        }
    }
}

/// An operation — an element of `Ô = O ∪ {start, commit, abort}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// A command on a shared object (an element of `O`).
    Cmd(Command),
    /// Start of a transaction.
    Start,
    /// Commit of a transaction.
    Commit,
    /// Abort of a transaction.
    Abort,
}

impl Op {
    /// The command, if this is an object operation.
    pub fn command(&self) -> Option<&Command> {
        match self {
            Op::Cmd(c) => Some(c),
            _ => None,
        }
    }

    /// True for `start`, `commit` and `abort`.
    pub fn is_boundary(&self) -> bool {
        matches!(self, Op::Start | Op::Commit | Op::Abort)
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Read { var, val } => write!(f, "(rd,{var},{val})"),
            Command::Write { var, val } => write!(f, "(wr,{var},{val})"),
            Command::DepRead {
                var,
                val,
                kind,
                deps,
            } => {
                let k = if *kind == DepKind::Control {
                    "cdrd"
                } else {
                    "ddrd"
                };
                write!(f, "({k},{var},{val},{{")?;
                for (i, d) in deps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "}})")
            }
            Command::DepWrite {
                var,
                val,
                kind,
                deps,
            } => {
                let k = if *kind == DepKind::Control {
                    "cdwr"
                } else {
                    "ddwr"
                };
                write!(f, "({k},{var},{val},{{")?;
                for (i, d) in deps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "}})")
            }
            Command::Havoc { var } => write!(f, "(havoc,{var})"),
            Command::FetchAdd { var, add, ret } => write!(f, "(faa,{var},+{add}→{ret})"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Cmd(c) => write!(f, "{c}"),
            Op::Start => write!(f, "start"),
            Op::Commit => write!(f, "commit"),
            Op::Abort => write!(f, "abort"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{X, Y};

    #[test]
    fn read_write_predicates() {
        let r = Command::Read { var: X, val: 1 };
        let w = Command::Write { var: Y, val: 2 };
        let dr = Command::DepRead {
            var: X,
            val: 0,
            kind: DepKind::Data,
            deps: vec![OpId(1)],
        };
        let dw = Command::DepWrite {
            var: Y,
            val: 3,
            kind: DepKind::Control,
            deps: vec![OpId(2)],
        };
        assert!(r.is_read() && r.is_plain_read() && !r.is_write());
        assert!(w.is_write() && w.is_plain_write() && !w.is_read());
        assert!(dr.is_read() && !dr.is_plain_read());
        assert!(dw.is_write() && !dw.is_plain_write());
        assert_eq!(r.read_val(), Some(1));
        assert_eq!(w.written_val(), Some(2));
        assert_eq!(dr.deps().unwrap().0, DepKind::Data);
        assert_eq!(dw.deps().unwrap().1, &[OpId(2)]);
    }

    #[test]
    fn vars_extracted() {
        assert_eq!(Command::Havoc { var: X }.var(), X);
        assert_eq!(
            Command::FetchAdd {
                var: Y,
                add: 1,
                ret: 0
            }
            .var(),
            Y
        );
    }

    #[test]
    fn boundary_ops() {
        assert!(Op::Start.is_boundary());
        assert!(Op::Commit.is_boundary());
        assert!(Op::Abort.is_boundary());
        assert!(!Op::Cmd(Command::Read { var: X, val: 0 }).is_boundary());
        assert!(Op::Cmd(Command::Read { var: X, val: 0 })
            .command()
            .is_some());
        assert!(Op::Start.command().is_none());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Command::Read { var: X, val: 1 }.to_string(), "(rd,x,1)");
        assert_eq!(Command::Write { var: Y, val: 2 }.to_string(), "(wr,y,2)");
        assert_eq!(Op::Start.to_string(), "start");
        let d = Command::DepRead {
            var: X,
            val: 0,
            kind: DepKind::Data,
            deps: vec![OpId(3)],
        };
        assert_eq!(d.to_string(), "(ddrd,x,0,{#3})");
    }

    #[test]
    fn fetch_add_is_neither_read_nor_write_class() {
        // FetchAdd is a richer-object command: the memory-model classes
        // quantify over read/write operations only.
        let f = Command::FetchAdd {
            var: X,
            add: 1,
            ret: 0,
        };
        assert!(!f.is_read() && !f.is_write());
        assert_eq!(f.read_val(), Some(0));
    }
}
