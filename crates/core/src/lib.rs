//! # jungle-core — the formal framework of *Transactions in the Jungle*
//!
//! This crate is an executable rendition of the formal machinery of
//! Guerraoui, Henzinger, Kapalka and Singh, *"Transactions in the Jungle"*
//! (SPAA 2010): shared-memory **histories** mixing transactional and
//! non-transactional operations, **sequential specifications** of shared
//! objects, **memory models** formalized as a transformation function `τ`
//! plus a reordering function `R`, the classification of memory models by
//! the reorderings they forbid (`Mrr`, `Mrw`, `Mwr`, `Mww`), and — the
//! paper's central contribution — decision procedures for
//! **parametrized opacity** (opacity parametrized by a memory model) and
//! for **single global lock atomicity** (SGLA).
//!
//! The layering mirrors the paper:
//!
//! * [`ids`], [`op`], [`history`] — §2 *Preliminaries*: operations,
//!   operation instances, histories, transactions, the real-time partial
//!   order `≺h`, sequential histories, `visible(s)` and legality.
//! * [`spec`] — §2 *Object semantics*: sequential specifications `[[x]]`.
//! * [`model`] — §3.1/§3.2: memory models `M = (τ, R)` and the concrete
//!   instances SC, TSO, PSO, RMO, Alpha, Junk-SC and the fully relaxed
//!   idealized model.
//! * [`classes`] — §3.2 *Classes of memory models*.
//! * [`opacity`] — §3.3: the parametrized-opacity checker.
//! * [`sgla`] — §6.2: the SGLA checker.
//!
//! All decision procedures are exact (backtracking explicit-state search)
//! and are intended for the short histories that arise from litmus tests,
//! model checking, and recorded STM executions. See the `jungle-mc` and
//! `jungle-stm` crates for the systems that generate such histories.
//!
//! ## Quick example
//!
//! Figure 1 of the paper asks: a transaction writes `x := 1; y := 1`
//! while another thread non-transactionally reads `y` then `x` — may it
//! observe `y = 1` but `x = 0`? The answer depends on the memory model:
//!
//! ```
//! use jungle_core::prelude::*;
//!
//! let mut b = HistoryBuilder::new();
//! let (p1, p2) = (ProcId(0), ProcId(1));
//! b.start(p1);
//! b.write(p1, Var(0), 1); // x := 1
//! b.write(p1, Var(1), 1); // y := 1
//! b.commit(p1);
//! b.read(p2, Var(1), 1);  // r1 := y  (reads 1)
//! b.read(p2, Var(0), 0);  // r2 := x  (reads 0)
//! let h = b.build().unwrap();
//!
//! // Forbidden under sequential consistency...
//! assert!(!check_opacity(&h, &Sc).is_opaque());
//! // ...but allowed under RMO, which may reorder independent reads.
//! assert!(check_opacity(&h, &Rmo).is_opaque());
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod classes;
pub mod encode;
pub mod explain;
pub mod fingerprint;
pub mod history;
pub mod ids;
pub mod legal;
pub mod model;
pub mod op;
pub mod opacity;
pub mod par;
pub mod pretty;
pub mod registry;
pub mod sgla;
pub mod spec;
pub mod triage;

/// Convenient glob-import of the most frequently used items.
pub mod prelude {
    pub use crate::builder::HistoryBuilder;
    pub use crate::classes::ClassSet;
    pub use crate::encode::{
        check_opacity_sat, check_opacity_sat_traced, check_sgla_sat, check_sgla_sat_traced,
        opacity_cnf, sgla_cnf, CheckBackend, CnfDoc,
    };
    pub use crate::history::{History, OpInstance, TxnStatus};
    pub use crate::ids::{OpId, ProcId, Val, Var};
    pub use crate::model::{Alpha, JunkSc, MemoryModel, Pso, Relaxed, Rmo, Sc, Tso, TsoForwarding};
    pub use crate::op::{Command, DepKind, Op};
    pub use crate::opacity::{
        check_opacity, check_opacity_par, check_opacity_par_traced, check_opacity_traced,
        OpacityVerdict,
    };
    pub use crate::par::ParallelConfig;
    pub use crate::registry::{entry, registry, ExecSemantics, ModelEntry, StoreDiscipline};
    pub use crate::sgla::{
        check_sgla, check_sgla_par, check_sgla_par_traced, check_sgla_traced, SglaVerdict,
    };
    pub use crate::spec::{Spec, SpecRegistry};
    pub use crate::triage::{triage_opacity, triage_opacity_with, Triage};
    pub use jungle_obs::SearchStats;
}

pub use prelude::*;
