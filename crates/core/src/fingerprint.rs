//! Stable 64-bit structural fingerprints.
//!
//! The model-checking sweeps in `jungle-mc` deduplicate structurally
//! identical interleavings and memoize checker verdicts. Both need a
//! key that is (a) cheap, (b) identical for structurally identical
//! inputs across runs and machines, and (c) collision-resistant enough
//! that a 64-bit value can stand in for the structure in a seen-set.
//! FNV-1a over a canonical word stream satisfies all three; this module
//! provides the hasher plus the canonical encoding of an [`Op`] so that
//! [`History::cache_key`](crate::history::History::cache_key) and the
//! trace fingerprint in `jungle-isa` agree on how operations are folded.
//!
//! These fingerprints are *identification* hashes, not security hashes:
//! a 64-bit collision between distinct structures is possible in
//! principle, and callers that cannot tolerate even a vanishing error
//! probability should key on the full structure instead.

use crate::op::{Command, DepKind, Op};

/// Incremental FNV-1a (64-bit) over a stream of words.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher in the initial state.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Fold one 64-bit word in, little-endian byte by byte.
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Fold one operation's full structure (kind, object, values,
/// dependency sets) into a hasher. Distinct operations always produce
/// distinct word streams: every variant starts with a unique tag and
/// variable-length parts are length-prefixed.
pub fn fold_op(f: &mut Fnv1a, op: &Op) {
    match op {
        Op::Start => f.word(1),
        Op::Commit => f.word(2),
        Op::Abort => f.word(3),
        Op::Cmd(c) => {
            f.word(4);
            fold_command(f, c);
        }
    }
}

fn fold_command(f: &mut Fnv1a, c: &Command) {
    match c {
        Command::Read { var, val } => {
            f.word(10);
            f.word(u64::from(var.0));
            f.word(*val);
        }
        Command::Write { var, val } => {
            f.word(11);
            f.word(u64::from(var.0));
            f.word(*val);
        }
        Command::Havoc { var } => {
            f.word(12);
            f.word(u64::from(var.0));
        }
        Command::FetchAdd { var, add, ret } => {
            f.word(13);
            f.word(u64::from(var.0));
            f.word(*add);
            f.word(*ret);
        }
        Command::DepRead {
            var,
            val,
            kind,
            deps,
        }
        | Command::DepWrite {
            var,
            val,
            kind,
            deps,
        } => {
            f.word(if matches!(c, Command::DepRead { .. }) {
                14
            } else {
                15
            });
            f.word(u64::from(var.0));
            f.word(*val);
            f.word(match kind {
                DepKind::Control => 0,
                DepKind::Data => 1,
            });
            f.word(deps.len() as u64);
            for d in deps {
                f.word(u64::from(d.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{OpId, X, Y};

    fn hash_op(op: &Op) -> u64 {
        let mut f = Fnv1a::new();
        fold_op(&mut f, op);
        f.finish()
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty input is the offset basis.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn distinct_ops_distinct_hashes() {
        let ops = [
            Op::Start,
            Op::Commit,
            Op::Abort,
            Op::Cmd(Command::Read { var: X, val: 0 }),
            Op::Cmd(Command::Read { var: X, val: 1 }),
            Op::Cmd(Command::Read { var: Y, val: 0 }),
            Op::Cmd(Command::Write { var: X, val: 0 }),
            Op::Cmd(Command::Havoc { var: X }),
            Op::Cmd(Command::FetchAdd {
                var: X,
                add: 1,
                ret: 0,
            }),
            Op::Cmd(Command::DepRead {
                var: X,
                val: 0,
                kind: DepKind::Control,
                deps: vec![OpId(1)],
            }),
            Op::Cmd(Command::DepRead {
                var: X,
                val: 0,
                kind: DepKind::Data,
                deps: vec![OpId(1)],
            }),
            Op::Cmd(Command::DepWrite {
                var: X,
                val: 0,
                kind: DepKind::Data,
                deps: vec![OpId(1)],
            }),
        ];
        let hashes: Vec<u64> = ops.iter().map(hash_op).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(
                    hashes[i], hashes[j],
                    "collision: {:?} vs {:?}",
                    ops[i], ops[j]
                );
            }
        }
    }

    #[test]
    fn hashing_is_deterministic() {
        let op = Op::Cmd(Command::Write { var: X, val: 7 });
        assert_eq!(hash_op(&op), hash_op(&op));
    }
}
