//! Ergonomic construction of histories.
//!
//! [`HistoryBuilder`] appends operation instances in history order and
//! assigns operation identifiers `1, 2, 3, …` automatically (matching the
//! numbering used in the paper's figures). Every append method returns
//! the assigned [`OpId`] so that dependent commands can refer back to
//! earlier operations.

use crate::history::{History, HistoryError, OpInstance};
use crate::ids::{OpId, ProcId, Val, Var};
use crate::op::{Command, DepKind, Op};

/// Incremental builder for [`History`] values.
///
/// ```
/// use jungle_core::prelude::*;
///
/// let mut b = HistoryBuilder::new();
/// let p = ProcId(0);
/// b.start(p);
/// b.write(p, Var(0), 42);
/// b.commit(p);
/// let h = b.build().unwrap();
/// assert_eq!(h.len(), 3);
/// assert_eq!(h.txns().len(), 1);
/// ```
#[derive(Default, Debug)]
pub struct HistoryBuilder {
    ops: Vec<OpInstance>,
    next_id: u32,
}

impl HistoryBuilder {
    /// New empty builder; the first operation gets identifier 1.
    pub fn new() -> Self {
        HistoryBuilder {
            ops: Vec::new(),
            next_id: 1,
        }
    }

    fn push(&mut self, proc: ProcId, op: Op) -> OpId {
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.ops.push(OpInstance { op, proc, id });
        id
    }

    /// Append an arbitrary operation.
    pub fn op(&mut self, proc: ProcId, op: Op) -> OpId {
        self.push(proc, op)
    }

    /// Append a `start` operation for `proc`.
    pub fn start(&mut self, proc: ProcId) -> OpId {
        self.push(proc, Op::Start)
    }

    /// Append a `commit` operation for `proc`.
    pub fn commit(&mut self, proc: ProcId) -> OpId {
        self.push(proc, Op::Commit)
    }

    /// Append an `abort` operation for `proc`.
    pub fn abort(&mut self, proc: ProcId) -> OpId {
        self.push(proc, Op::Abort)
    }

    /// Append a read `(rd, var, val)`.
    pub fn read(&mut self, proc: ProcId, var: Var, val: Val) -> OpId {
        self.push(proc, Op::Cmd(Command::Read { var, val }))
    }

    /// Append a write `(wr, var, val)`.
    pub fn write(&mut self, proc: ProcId, var: Var, val: Val) -> OpId {
        self.push(proc, Op::Cmd(Command::Write { var, val }))
    }

    /// Append a control/data-dependent read.
    pub fn dep_read(
        &mut self,
        proc: ProcId,
        var: Var,
        val: Val,
        kind: DepKind,
        deps: Vec<OpId>,
    ) -> OpId {
        self.push(
            proc,
            Op::Cmd(Command::DepRead {
                var,
                val,
                kind,
                deps,
            }),
        )
    }

    /// Append a control/data-dependent write.
    pub fn dep_write(
        &mut self,
        proc: ProcId,
        var: Var,
        val: Val,
        kind: DepKind,
        deps: Vec<OpId>,
    ) -> OpId {
        self.push(
            proc,
            Op::Cmd(Command::DepWrite {
                var,
                val,
                kind,
                deps,
            }),
        )
    }

    /// Append a `havoc` pseudo-operation.
    pub fn havoc(&mut self, proc: ProcId, var: Var) -> OpId {
        self.push(proc, Op::Cmd(Command::Havoc { var }))
    }

    /// Append a fetch-and-add returning `ret` and adding `add`.
    pub fn fetch_add(&mut self, proc: ProcId, var: Var, add: Val, ret: Val) -> OpId {
        self.push(proc, Op::Cmd(Command::FetchAdd { var, add, ret }))
    }

    /// Number of operations appended so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations have been appended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Validate well-formedness and produce the history.
    pub fn build(self) -> Result<History, HistoryError> {
        History::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::TxnStatus;
    use crate::ids::{X, Y};

    #[test]
    fn ids_are_sequential_from_one() {
        let mut b = HistoryBuilder::new();
        let a = b.read(ProcId(0), X, 0);
        let c = b.write(ProcId(1), Y, 1);
        assert_eq!(a, OpId(1));
        assert_eq!(c, OpId(2));
        let h = b.build().unwrap();
        assert_eq!(h.ops()[0].id, OpId(1));
    }

    #[test]
    fn dependent_ops_reference_earlier_ids() {
        let mut b = HistoryBuilder::new();
        let p = ProcId(0);
        let r = b.read(p, X, 5);
        b.dep_write(p, Y, 5, DepKind::Data, vec![r]);
        let h = b.build().unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn live_txn_allowed() {
        let mut b = HistoryBuilder::new();
        let p = ProcId(0);
        b.start(p);
        b.write(p, X, 1);
        let h = b.build().unwrap();
        assert_eq!(h.txns().len(), 1);
        assert_eq!(h.txns()[0].status, TxnStatus::Live);
    }

    #[test]
    fn empty_builder_builds_empty_history() {
        let b = HistoryBuilder::new();
        assert!(b.is_empty());
        let h = b.build().unwrap();
        assert!(h.is_empty());
    }
}
