//! The parametrized-opacity checker (§3.3).
//!
//! A history `h` ensures *opacity parametrized by a memory model
//! `M = (τ, R)`* iff there exist a total order `≺` on the transactional
//! operations of `h` and a process view `v ∈ R(τ(h))` such that for every
//! process `p` there is a sequential history `s` that
//!
//! 1. is a permutation of `τ(h)`,
//! 2. respects `≺ ∪ ≺h ∪ v(p)`, and
//! 3. has every operation legal in it.
//!
//! ### Decision procedure
//!
//! For all of the paper's models the reordering function is *upward
//! closed*: `R(τ(h))` is the set of views containing a computable set of
//! required pairs, so the existential over views is discharged by the
//! minimal view ([`MemoryModel::required`]). Sequentiality forces each
//! transaction's operations to be contiguous and in program order, so
//! the existential over `≺` reduces to a permutation of *transactions*
//! consistent with the real-time order. The checker therefore:
//!
//! * groups operations into **units** — one per transaction, one per
//!   non-transactional operation;
//! * enumerates transaction serialization orders consistent with `≺h`;
//! * for each order and each process's (minimal) view, searches for a
//!   topological order of the units that is prefix-legal, using the
//!   incremental [`PrefixChecker`](crate::legal::PrefixChecker) to prune.
//!
//! The search is exponential in the worst case but exact; it is intended
//! for litmus-test-sized histories (tens of operations) such as those
//! produced by `jungle-mc` and recorded STM executions.

use crate::history::{History, TxnStatus};
use crate::ids::{OpId, ProcId};
use crate::legal::PrefixChecker;
use crate::model::MemoryModel;
use crate::par::{run_order_pool, Cancel, ParallelConfig, WitnessMemo, MEMO_CAP};
use crate::spec::SpecRegistry;
use jungle_obs::trace::{self, EventKind};
use jungle_obs::{profile, Counter, ScopedSpan, SearchStats};

/// A found serialization order plus per-viewer witness sequences, or
/// `None` while the search is still running.
type WitnessResult = Option<(Vec<usize>, Vec<(ProcId, Vec<OpId>)>)>;

/// Per-worker memo of inner witness searches, keyed by the exact
/// deduplicated edge set (the only input that varies between calls).
pub(crate) type OpacityMemo = WitnessMemo<Vec<(usize, usize)>, Option<Vec<OpId>>>;

/// One schedulable unit of the witness search.
#[derive(Clone, Debug)]
enum Unit {
    /// A whole transaction (index into `History::txns`).
    Txn(usize),
    /// A single non-transactional operation (history index).
    NonTxn(usize),
}

/// The verdict of a parametrized-opacity check.
#[derive(Clone, Debug)]
pub struct OpacityVerdict {
    opaque: bool,
    /// For an opaque history: per-process witness sequences over the
    /// transformed history, as operation identifiers.
    witnesses: Vec<(ProcId, Vec<OpId>)>,
    /// The serialization order of transactions used by the witnesses
    /// (indices into the transformed history's transaction list).
    txn_order: Vec<usize>,
}

impl OpacityVerdict {
    /// Did the history ensure opacity parametrized by the model?
    pub fn is_opaque(&self) -> bool {
        self.opaque
    }

    /// Witness sequential histories (one per process), as sequences of
    /// operation identifiers of the transformed history. Empty if not
    /// opaque.
    pub fn witnesses(&self) -> &[(ProcId, Vec<OpId>)] {
        &self.witnesses
    }

    /// The transaction serialization order shared by all witnesses.
    pub fn txn_order(&self) -> &[usize] {
        &self.txn_order
    }
}

/// Check opacity parametrized by `model`, with every variable a
/// read/write register (the paper's default object semantics).
pub fn check_opacity(h: &History, model: &dyn MemoryModel) -> OpacityVerdict {
    check_opacity_with(h, model, &SpecRegistry::registers())
}

/// Like [`check_opacity`], additionally returning counters describing
/// the search (including wall time, which the untraced entry points
/// never measure).
pub fn check_opacity_traced(h: &History, model: &dyn MemoryModel) -> (OpacityVerdict, SearchStats) {
    check_opacity_with_traced(h, model, &SpecRegistry::registers())
}

/// Check opacity parametrized by `model` under explicit sequential
/// specifications.
pub fn check_opacity_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> OpacityVerdict {
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let th = model.transform(h);
    Search::new(&th, model, specs).run(&mut stats)
}

/// Like [`check_opacity_with`], additionally returning search stats.
pub fn check_opacity_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
) -> (OpacityVerdict, SearchStats) {
    let _phase = profile::enter("check.opacity");
    let wall = Counter::new();
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        Search::new(&th, model, specs).run(&mut stats)
    };
    stats.wall_ns = wall.get();
    (verdict, stats)
}

/// Parallel variant of [`check_opacity`]: fans the serialization-order
/// enumeration over a scoped worker pool. The verdict **and** the
/// witness are exactly those of the serial checker, for every thread
/// count (see the [`par`](crate::par) module docs for why). Falls back
/// to the serial path below `cfg.min_units` schedulable units.
pub fn check_opacity_par(
    h: &History,
    model: &dyn MemoryModel,
    cfg: &ParallelConfig,
) -> OpacityVerdict {
    check_opacity_par_with(h, model, &SpecRegistry::registers(), cfg)
}

/// Like [`check_opacity_par`], additionally returning search stats
/// (per-worker counters merged; `workers`/`stolen_prefixes`/`cache_hits`
/// describe the pool).
pub fn check_opacity_par_traced(
    h: &History,
    model: &dyn MemoryModel,
    cfg: &ParallelConfig,
) -> (OpacityVerdict, SearchStats) {
    check_opacity_par_with_traced(h, model, &SpecRegistry::registers(), cfg)
}

/// Parallel variant of [`check_opacity_with`].
pub fn check_opacity_par_with(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
    cfg: &ParallelConfig,
) -> OpacityVerdict {
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let th = model.transform(h);
    Search::new(&th, model, specs).run_par(cfg, &mut stats)
}

/// Like [`check_opacity_par_with`], additionally returning search stats.
pub fn check_opacity_par_with_traced(
    h: &History,
    model: &dyn MemoryModel,
    specs: &SpecRegistry,
    cfg: &ParallelConfig,
) -> (OpacityVerdict, SearchStats) {
    let _phase = profile::enter("check.opacity_par");
    let wall = Counter::new();
    let mut stats = SearchStats {
        searches: 1,
        ..SearchStats::default()
    };
    let verdict = {
        let _span = ScopedSpan::enter(&wall, 0);
        let th = model.transform(h);
        Search::new(&th, model, specs).run_par(cfg, &mut stats)
    };
    stats.wall_ns = wall.get();
    (verdict, stats)
}

/// The per-viewer ordering constraints, computed once per check: the
/// minimal views of `R(τ(h))` lifted to unit edges, with identical
/// viewer constraint sets deduplicated.
pub(crate) struct ViewCtx {
    viewers: Vec<ProcId>,
    view_edges: Vec<Vec<(usize, usize)>>,
    /// Indices into `viewers`/`view_edges` of the distinct constraint
    /// sets — one witness search covers every viewer sharing a set.
    pub(crate) distinct: Vec<usize>,
}

pub(crate) struct Search<'a> {
    h: &'a History,
    model: &'a dyn MemoryModel,
    specs: &'a SpecRegistry,
    units: Vec<Unit>,
    /// For each history index, the unit containing it.
    unit_of: Vec<usize>,
    /// Base edges (≺h-derived), as unit-index pairs.
    base_edges: Vec<(usize, usize)>,
    /// Real-time DAG over transactions: `txn_dag[i]` lists txns that
    /// must serialize after txn `i`.
    txn_units: Vec<usize>, // txn index -> unit index
}

impl<'a> Search<'a> {
    pub(crate) fn new(h: &'a History, model: &'a dyn MemoryModel, specs: &'a SpecRegistry) -> Self {
        let mut units = Vec::new();
        let mut unit_of = vec![usize::MAX; h.len()];
        let mut txn_units = vec![usize::MAX; h.txns().len()];
        for (ti, _t) in h.txns().iter().enumerate() {
            txn_units[ti] = units.len();
            units.push(Unit::Txn(ti));
        }
        for (i, u) in unit_of.iter_mut().enumerate() {
            match h.txn_of(i) {
                Some(ti) => *u = txn_units[ti],
                None => {
                    *u = units.len();
                    units.push(Unit::NonTxn(i));
                }
            }
        }

        // ≺h generating relation, lifted to units.
        let mut base_edges = Vec::new();
        for i in 0..h.len() {
            for j in 0..h.len() {
                if i != j && unit_of[i] != unit_of[j] && h.precedes_rt(i, j) {
                    base_edges.push((unit_of[i], unit_of[j]));
                }
            }
        }
        base_edges.sort_unstable();
        base_edges.dedup();

        Search {
            h,
            model,
            specs,
            units,
            unit_of,
            base_edges,
            txn_units,
        }
    }

    fn run(&self, stats: &mut SearchStats) -> OpacityVerdict {
        trace::emit(EventKind::SearchBegin, self.units.len() as u64, 0);
        stats.units += self.units.len() as u64;
        let ctx = self.view_ctx();
        let n_txn = self.h.txns().len();
        let mut order: Vec<usize> = Vec::with_capacity(n_txn);
        let mut used = vec![false; n_txn];
        let mut result: WitnessResult = None;
        self.enum_txn_orders(
            &mut order,
            &mut used,
            &ctx,
            &mut result,
            stats,
            &Cancel::never(),
            &mut OpacityMemo::disabled(),
        );
        trace::emit(EventKind::SearchEnd, stats.nodes, result.is_some() as u64);
        Self::verdict(result)
    }

    /// Parallel counterpart of [`Search::run`]: feed the
    /// serialization-order enumeration to a work-stealing frontier of
    /// scoped workers. Returns exactly what `run` would (see the `par`
    /// module docs).
    fn run_par(&self, cfg: &ParallelConfig, stats: &mut SearchStats) -> OpacityVerdict {
        if cfg.serial_for(self.units.len()) {
            return self.run(stats);
        }
        let threads = cfg.effective_threads();
        trace::emit(
            EventKind::SearchBegin,
            self.units.len() as u64,
            threads as u64,
        );
        stats.units += self.units.len() as u64;
        stats.workers = stats.workers.max(threads as u64);
        let ctx = self.view_ctx();
        let n_txn = self.h.txns().len();
        let result = run_order_pool(
            threads,
            n_txn,
            |prefix| self.valid_extensions(prefix),
            || OpacityMemo::new(MEMO_CAP),
            |prefix, cancel, memo, local| {
                let mut order = prefix.to_vec();
                let mut used = vec![false; n_txn];
                for &t in prefix {
                    used[t] = true;
                }
                let mut result: WitnessResult = None;
                self.enum_txn_orders(
                    &mut order,
                    &mut used,
                    &ctx,
                    &mut result,
                    local,
                    cancel,
                    memo,
                );
                result
            },
            stats,
        );
        trace::emit(EventKind::SearchEnd, stats.nodes, result.is_some() as u64);
        Self::verdict(result)
    }

    pub(crate) fn verdict(result: WitnessResult) -> OpacityVerdict {
        match result {
            Some((txn_order, witnesses)) => OpacityVerdict {
                opaque: true,
                witnesses,
                txn_order,
            },
            None => OpacityVerdict {
                opaque: false,
                witnesses: Vec::new(),
                txn_order: Vec::new(),
            },
        }
    }

    /// Number of transactions in the (transformed) history — the size
    /// of the serialization-order search space.
    pub(crate) fn n_txns(&self) -> usize {
        self.h.txns().len()
    }

    /// Must transaction `u` serialize before transaction `t`? (The
    /// real-time constraint: `u` completed before `t` began.)
    pub(crate) fn must_precede(&self, u: usize, t: usize) -> bool {
        let txns = self.h.txns();
        txns[u].status.is_completed() && txns[u].last() < txns[t].first()
    }

    /// May transaction `t` be serialized next, given the already-placed
    /// set `used`? (Every transaction that must precede `t` is placed.)
    fn can_place(&self, t: usize, used: &[bool]) -> bool {
        (0..self.h.txns().len()).all(|u| u == t || used[u] || !self.must_precede(u, t))
    }

    /// The transactions that may validly extend `prefix`, in ascending
    /// index order — the serial DFS candidate order.
    pub(crate) fn valid_extensions(&self, prefix: &[usize]) -> Vec<usize> {
        let n_txn = self.h.txns().len();
        let mut used = vec![false; n_txn];
        for &t in prefix {
            used[t] = true;
        }
        (0..n_txn)
            .filter(|&t| !used[t] && self.can_place(t, &used))
            .collect()
    }

    pub(crate) fn view_ctx(&self) -> ViewCtx {
        let procs = self.h.procs();
        let viewers: Vec<ProcId> = if procs.is_empty() {
            vec![ProcId(0)]
        } else {
            procs
        };

        // Per-viewer view edges (minimal view of R(τ(h))).
        let mut view_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(viewers.len());
        for &p in &viewers {
            let mut edges = Vec::new();
            let ops = self.h.ops();
            for i in 0..ops.len() {
                if self.h.is_transactional(i) || ops[i].op.command().is_none() {
                    continue;
                }
                for j in (i + 1)..ops.len() {
                    if self.h.is_transactional(j)
                        || ops[j].op.command().is_none()
                        || ops[i].proc != ops[j].proc
                    {
                        continue;
                    }
                    if self.model.required_in_view(self.h, p, i, j) {
                        edges.push((self.unit_of[i], self.unit_of[j]));
                    }
                }
            }
            edges.sort_unstable();
            edges.dedup();
            view_edges.push(edges);
        }

        // Deduplicate identical viewer constraint sets (all bundled
        // models are viewer-independent, collapsing this to one search).
        let mut distinct: Vec<usize> = Vec::new();
        for (vi, e) in view_edges.iter().enumerate() {
            if !distinct.iter().any(|&d| view_edges[d] == *e) {
                distinct.push(vi);
            }
        }

        ViewCtx {
            viewers,
            view_edges,
            distinct,
        }
    }

    /// Enumerate serialization orders of transactions consistent with
    /// the real-time order, attempting the per-viewer witness search for
    /// each complete order. `cancel` aborts the enumeration once its
    /// result can no longer matter (parallel search only); `memo`
    /// replays previously solved witness sub-searches.
    #[allow(clippy::too_many_arguments)]
    fn enum_txn_orders(
        &self,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        ctx: &ViewCtx,
        result: &mut WitnessResult,
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut OpacityMemo,
    ) {
        if result.is_some() || cancel.hit() {
            return;
        }
        let txns = self.h.txns();
        if order.len() == txns.len() {
            stats.txn_orders += 1;
            if let Ok(witnesses) = self.try_order(order, ctx, stats, cancel, memo) {
                *result = Some((order.clone(), witnesses));
            }
            return;
        }
        for t in 0..txns.len() {
            if used[t] || !self.can_place(t, used) {
                continue;
            }
            used[t] = true;
            order.push(t);
            self.enum_txn_orders(order, used, ctx, result, stats, cancel, memo);
            order.pop();
            used[t] = false;
        }
    }

    /// Attempt the per-viewer witness searches for one complete
    /// serialization order. `Ok` carries the per-process witnesses;
    /// `Err(d)` names the first distinct viewer-constraint index that
    /// admitted no witness (`usize::MAX` when the search was cancelled
    /// mid-way, in which case the failure may be spurious).
    pub(crate) fn try_order(
        &self,
        order: &[usize],
        ctx: &ViewCtx,
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut OpacityMemo,
    ) -> Result<Vec<(ProcId, Vec<OpId>)>, usize> {
        let pairs: Vec<(usize, usize)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        // Attempt witnesses for every distinct viewer constraint set.
        let mut found: Vec<(usize, Vec<OpId>)> = Vec::new();
        for &d in &ctx.distinct {
            match self.witness_for_pairs(ctx, d, &pairs, stats, cancel, memo) {
                Some(seq) => found.push((d, seq)),
                None => return Err(d), // this txn order fails for some viewer
            }
        }
        if cancel.hit() {
            return Err(usize::MAX); // a cancelled sub-search may fail spuriously
        }
        let witnesses = ctx
            .viewers
            .iter()
            .map(|&p| {
                let vi = ctx.viewers.iter().position(|&q| q == p).unwrap();
                // Find the distinct representative with identical edges.
                let d = ctx
                    .distinct
                    .iter()
                    .copied()
                    .find(|&d| ctx.view_edges[d] == ctx.view_edges[vi])
                    .unwrap();
                let seq = found.iter().find(|(fd, _)| *fd == d).unwrap().1.clone();
                (p, seq)
            })
            .collect();
        Ok(witnesses)
    }

    /// Witness search for viewer constraint set `d` under an arbitrary
    /// set of transaction-precedence `pairs` — not necessarily a full
    /// order. A full order's adjacent pairs reproduce the classic leaf
    /// search; a *subset* of pairs yields a weaker constraint set, so
    /// "no witness" here refutes every total order whose precedences
    /// include the pairs (the SAT backend's blocking-core query).
    pub(crate) fn witness_for_pairs(
        &self,
        ctx: &ViewCtx,
        d: usize,
        pairs: &[(usize, usize)],
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut OpacityMemo,
    ) -> Option<Vec<OpId>> {
        let mut edges = self.base_edges.clone();
        edges.extend(ctx.view_edges[d].iter().copied());
        for &(a, b) in pairs {
            edges.push((self.txn_units[a], self.txn_units[b]));
        }
        edges.sort_unstable();
        edges.dedup();
        self.find_witness(&edges, stats, cancel, memo)
    }

    /// Backtracking topological search for a prefix-legal sequence of
    /// units respecting `edges`. Returns the witness as operation ids.
    fn find_witness(
        &self,
        edges: &[(usize, usize)],
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
        memo: &mut OpacityMemo,
    ) -> Option<Vec<OpId>> {
        if let Some(hit) = memo.get(edges) {
            stats.cache_hits += 1;
            trace::emit(EventKind::WitnessMemoHit, edges.len() as u64, 0);
            return hit.clone();
        }
        let n = self.units.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &(a, b) in edges {
            succs[a].push(b);
            indeg[b] += 1;
        }
        let mut seq: Vec<usize> = Vec::with_capacity(n);
        let checker = PrefixChecker::new(self.specs);
        let result = if self.dfs(&succs, &mut indeg, &mut seq, &checker, stats, cancel) {
            let mut out = Vec::new();
            for &u in &seq {
                match &self.units[u] {
                    Unit::Txn(ti) => {
                        for &i in &self.h.txns()[*ti].op_indices {
                            out.push(self.h.ops()[i].id);
                        }
                    }
                    Unit::NonTxn(i) => out.push(self.h.ops()[*i].id),
                }
            }
            Some(out)
        } else {
            None
        };
        // A cancelled search may report "no witness" spuriously — never
        // memoize it.
        if !cancel.hit() {
            memo.put(edges.to_vec(), result.clone());
        }
        result
    }

    fn dfs(
        &self,
        succs: &[Vec<usize>],
        indeg: &mut Vec<usize>,
        seq: &mut Vec<usize>,
        checker: &PrefixChecker<'_>,
        stats: &mut SearchStats,
        cancel: &Cancel<'_>,
    ) -> bool {
        let n = self.units.len();
        if seq.len() == n {
            return true;
        }
        if cancel.hit() {
            return false;
        }
        let placed: Vec<bool> = {
            let mut v = vec![false; n];
            for &u in seq.iter() {
                v[u] = true;
            }
            v
        };
        for u in 0..n {
            if placed[u] || indeg[u] != 0 {
                continue;
            }
            // Apply unit `u` to a snapshot of the checker.
            stats.nodes += 1;
            trace::emit(EventKind::NodeEnter, seq.len() as u64, u as u64);
            let mut c = checker.clone();
            let ok = match &self.units[u] {
                Unit::NonTxn(i) => c.step(&self.h.ops()[*i].op, false),
                Unit::Txn(ti) => {
                    let t = &self.h.txns()[*ti];
                    let mut ok = true;
                    for &i in &t.op_indices {
                        if !c.step(&self.h.ops()[i].op, true) {
                            ok = false;
                            break;
                        }
                    }
                    if ok && t.status == TxnStatus::Live {
                        c.suspend_live();
                    }
                    ok
                }
            };
            if !ok {
                stats.prune_hits += 1;
                trace::emit(EventKind::Prune, seq.len() as u64, u as u64);
                continue;
            }
            for &s in &succs[u] {
                indeg[s] -= 1;
            }
            seq.push(u);
            stats.note_depth(seq.len());
            if self.dfs(succs, indeg, seq, &c, stats, cancel) {
                return true;
            }
            seq.pop();
            stats.backtracks += 1;
            trace::emit(EventKind::NodeLeave, seq.len() as u64, u as u64);
            for &s in &succs[u] {
                indeg[s] += 1;
            }
        }
        trace::emit(EventKind::Backtrack, seq.len() as u64, 0);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y, Z};
    use crate::model::{all_models, JunkSc, Relaxed, Rmo, Sc, Tso};

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// Figure 1: transaction writes x:=1, y:=1; thread 2 reads y then x
    /// non-transactionally, observing y=1, x=0.
    fn fig1(r_y: u64, r_x: u64) -> crate::history::History {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, r_y);
        b.read(p(2), X, r_x);
        b.build().unwrap()
    }

    #[test]
    fn fig1_sc_forbids_fresh_y_stale_x() {
        let h = fig1(1, 0);
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(!check_opacity(&h, &Tso).is_opaque());
    }

    #[test]
    fn fig1_rmo_allows_fresh_y_stale_x() {
        let h = fig1(1, 0);
        assert!(check_opacity(&h, &Rmo).is_opaque());
        assert!(check_opacity(&h, &Relaxed).is_opaque());
    }

    #[test]
    fn fig1_consistent_outcomes_allowed_everywhere() {
        for (ry, rx) in [(0, 0), (0, 1), (1, 1)] {
            let h = fig1(ry, rx);
            for m in all_models() {
                if m.name() == "Junk-SC" {
                    continue; // havoc makes everything allowed anyway
                }
                assert!(
                    check_opacity(&h, m).is_opaque(),
                    "outcome (r_y={ry}, r_x={rx}) should be allowed under {}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn witness_reported_for_opaque_history() {
        let h = fig1(1, 1);
        let v = check_opacity(&h, &Sc);
        assert!(v.is_opaque());
        assert_eq!(v.witnesses().len(), 2);
        assert_eq!(v.txn_order(), &[0]);
        // Each witness is a permutation of all 6 operations.
        for (_, w) in v.witnesses() {
            assert_eq!(w.len(), 6);
        }
    }

    /// Figure 2(a): two transactions of thread 1 (x:=1;x:=2) and (y:=2);
    /// thread 2 computes z := x - y in a transaction. z ∈ {0, 2}.
    fn fig2a(x_obs: u64, y_obs: u64) -> crate::history::History {
        // Thread 2's transaction reads x and y; the observable claim is
        // about which (x, y) snapshots are opaque.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), X, 2);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, x_obs);
        b.read(p(2), Y, y_obs);
        b.commit(p(2));
        b.start(p(1));
        b.write(p(1), Y, 2);
        b.commit(p(1));
        b.build().unwrap()
    }

    #[test]
    fn fig2a_intermediate_state_never_visible() {
        // x observed as 1 would expose the intermediate state.
        assert!(!check_opacity(&fig2a(1, 0), &Sc).is_opaque());
        assert!(!check_opacity(&fig2a(1, 2), &Sc).is_opaque());
        // Consistent snapshots are fine. (x=2,y=0): T2 between T1a and
        // T1b; (x=2,y=2): T2 after both — but y=2 requires the third
        // transaction to serialize before T2, which contradicts the
        // real-time order T2 ≺ T1b... so only via reordering? T2
        // completes before T1b starts, so (x=2,y=2) is NOT opaque.
        assert!(check_opacity(&fig2a(2, 0), &Sc).is_opaque());
        assert!(!check_opacity(&fig2a(2, 2), &Sc).is_opaque());
        // x=0 requires T2 before T1a, but T1a completed before T2
        // started: not opaque.
        assert!(!check_opacity(&fig2a(0, 0), &Sc).is_opaque());
    }

    #[test]
    fn fig2a_even_aborted_transactions_see_consistent_state() {
        // Same as fig2a but thread 2's transaction aborts; opacity still
        // forbids observing the intermediate x=1.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), X, 2);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, 1);
        b.abort(p(2));
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(!check_opacity(&h, &Relaxed).is_opaque());
    }

    /// Figure 2(b): purely non-transactional message passing: w x 1;
    /// w y 1 || r y 1; r x 0.
    fn fig2b() -> crate::history::History {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.read(p(2), Y, 1);
        b.read(p(2), X, 0);
        b.build().unwrap()
    }

    #[test]
    fn fig2b_depends_on_model() {
        let h = fig2b();
        // SC forbids it; RMO (reorders both the writes and the reads)
        // allows it; PSO allows it via write-write reordering.
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(check_opacity(&h, &Rmo).is_opaque());
        assert!(check_opacity(&h, &crate::model::Pso).is_opaque());
        // TSO keeps write-write and read-read order: forbidden.
        assert!(!check_opacity(&h, &Tso).is_opaque());
    }

    /// Figure 2(c): isolation. Thread 1: txn {x:=1; x:=2}; txn of
    /// thread 2 reads z twice; thread 2 also does z := x
    /// non-transactionally.
    #[test]
    fn fig2c_no_intermediate_leak() {
        // z := x reading the intermediate value 1 is forbidden.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.read(p(2), X, 1); // non-transactional read of x during the txn
        b.write(p(1), X, 2);
        b.commit(p(1));
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Relaxed).is_opaque());
        assert!(!check_opacity(&h, &Sc).is_opaque());
    }

    #[test]
    fn fig2c_txn_reads_repeatable() {
        // Thread 2's transaction reading z twice must see equal values
        // even while thread 1 writes z non-transactionally in between.
        let mk = |r1: u64, r2: u64| {
            let mut b = HistoryBuilder::new();
            b.start(p(2));
            b.read(p(2), Z, r1);
            b.write(p(1), Z, 5); // concurrent non-transactional write
            b.read(p(2), Z, r2);
            b.commit(p(2));
            b.build().unwrap()
        };
        assert!(check_opacity(&mk(0, 0), &Sc).is_opaque()); // write after txn
        assert!(check_opacity(&mk(5, 5), &Sc).is_opaque()); // write before txn
        assert!(!check_opacity(&mk(0, 5), &Sc).is_opaque()); // torn: r1 ≠ r2
        assert!(!check_opacity(&mk(0, 5), &Relaxed).is_opaque());
    }

    #[test]
    fn fig3_history_opaque_iff_v_eq_1_under_sc() {
        // §3.3: "the history h shown in Figure 3(a) is parametrized
        // opaque with respect to MSC if v = 1 … h is parametrized opaque
        // with respect to Mrmo if v = 0 or v = 1." (v' is pinned to 1 in
        // every case: p3's read follows its transaction, which follows
        // p1's transaction, which follows p1's write of x.)
        let mk = |v: u64| {
            let mut b = HistoryBuilder::new();
            b.write(p(1), X, 1);
            b.start(p(1));
            b.read(p(2), Y, 1);
            b.write(p(1), Y, 1);
            b.commit(p(1));
            b.read(p(2), X, v);
            b.start(p(3));
            b.commit(p(3));
            b.read(p(3), X, 1); // v' = 1
            b.build().unwrap()
        };
        assert!(check_opacity(&mk(1), &Sc).is_opaque());
        assert!(!check_opacity(&mk(0), &Sc).is_opaque());
        assert!(check_opacity(&mk(1), &Rmo).is_opaque());
        assert!(check_opacity(&mk(0), &Rmo).is_opaque());
        assert!(!check_opacity(&mk(3), &Rmo).is_opaque());
    }

    #[test]
    fn junk_sc_allows_junk_reads_between_havoc_and_write() {
        // §3.3: "if operation 3 read y as 0, then opacity parametrized
        // by Mjunk allows operation 6 to read any value."
        let mk = |ry: u64, rx: u64| {
            let mut b = HistoryBuilder::new();
            b.write(p(1), X, 1);
            b.start(p(1));
            b.read(p(2), Y, ry);
            b.write(p(1), Y, 1);
            b.commit(p(1));
            b.read(p(2), X, rx);
            b.build().unwrap()
        };
        // With ry = 0 the read of x may return arbitrary junk (the read
        // races between havoc(x) and the write of x).
        assert!(check_opacity(&mk(0, 12345), &JunkSc).is_opaque());
        // Under plain SC the same outcome is forbidden.
        assert!(!check_opacity(&mk(0, 12345), &Sc).is_opaque());
        // With ry = 1 the SC-like ordering pins x to 1.
        assert!(check_opacity(&mk(1, 1), &JunkSc).is_opaque());
    }

    #[test]
    fn empty_and_trivial_histories_opaque() {
        let h = HistoryBuilder::new().build().unwrap();
        for m in all_models() {
            assert!(check_opacity(&h, m).is_opaque());
        }
        let mut b = HistoryBuilder::new();
        b.read(p(1), X, 0);
        let h = b.build().unwrap();
        assert!(check_opacity(&h, &Sc).is_opaque());
    }

    #[test]
    fn live_transaction_sees_consistent_state() {
        // A live (never-completed) transaction must still be placeable.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(2));
        b.read(p(2), X, 1);
        let h = b.build().unwrap();
        assert!(check_opacity(&h, &Sc).is_opaque());

        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.start(p(2));
        b.read(p(2), X, 3); // impossible value
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Sc).is_opaque());
    }

    #[test]
    fn live_txn_writes_not_visible_to_others() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 9);
        b.read(p(2), X, 9); // must not see the live txn's write
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(!check_opacity(&h, &Relaxed).is_opaque());
    }

    #[test]
    fn realtime_order_between_transactions_enforced() {
        // T1 (writes x:=1) completes before T2 starts; T2 must see x=1.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, 0);
        b.commit(p(2));
        let h = b.build().unwrap();
        assert!(!check_opacity(&h, &Relaxed).is_opaque());
    }

    #[test]
    fn concurrent_transactions_may_serialize_either_way() {
        // Overlapping transactions: serialization order is free.
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.start(p(2));
        b.write(p(1), X, 1);
        b.read(p(2), X, 0); // T2 serializes before T1
        b.commit(p(1));
        b.commit(p(2));
        let h = b.build().unwrap();
        assert!(check_opacity(&h, &Sc).is_opaque());
    }

    #[test]
    fn richer_objects_checked_against_their_spec() {
        use crate::spec::{Spec, SpecRegistry};
        let specs = SpecRegistry::with_default(Spec::Counter);
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.fetch_add(p(1), X, 5, 0);
        b.commit(p(1));
        b.fetch_add(p(2), X, 1, 5);
        let h = b.build().unwrap();
        assert!(check_opacity_with(&h, &Sc, &specs).is_opaque());

        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.fetch_add(p(1), X, 5, 0);
        b.commit(p(1));
        b.fetch_add(p(2), X, 1, 3); // wrong return value
        let h = b.build().unwrap();
        assert!(!check_opacity_with(&h, &Sc, &specs).is_opaque());
    }
}
