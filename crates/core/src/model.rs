//! Memory models `M = (τ, R)` (§3.1) and the concrete instances of §3.2.
//!
//! A memory model is a *transformation function* `τ` mapping each
//! operation to a sequence of operations (identity for all models here
//! except Junk-SC, which prefixes every write with `havoc`), together
//! with a *reordering function* `R` mapping a history to a set of
//! per-process views — partial orders over the non-transactional
//! operations that every witness sequence must respect.
//!
//! For every model in the paper, `R(h)` is **upward closed**: it is
//! defined by a set of *required* pairs, and any view containing them is
//! a member. The checkers therefore only need the minimal view, which
//! [`MemoryModel::required`] describes pointwise: given two
//! non-transactional operations `i` (earlier) and `j` (later) of the
//! *same process*, must every view order `i` before `j`? (No model in
//! the paper constrains cross-process pairs; well-formedness already
//! forbids anti-program-order pairs.)
//!
//! The concrete models:
//!
//! | model | required `i → j` (same process, different variables) |
//! |-------|------------------------------------------------------|
//! | [`Sc`]      | always |
//! | [`Tso`]     | unless `i` write, `j` read (write→read relaxes) |
//! | [`TsoForwarding`] | as TSO, and read→read relaxes when `i` was store-forwarded |
//! | [`Pso`]     | only if `i` is a read (write→read, write→write relax) |
//! | [`Rmo`]     | only if `j` is control/data-dependent on `i` (`i ∈ K`) |
//! | [`Alpha`]   | only if `j` is a *write* dependent on `i` |
//! | [`Relaxed`] | never (the idealized model of Theorem 3) |
//! | [`JunkSc`]  | as SC, with `τ(wr x v) = havoc(x) · (wr x v)` |
//!
//! Same-variable pairs are required by every model (program order per
//! location). See [`crate::classes`] for the `Mrr`/`Mrw`/`Mwr`/`Mww`
//! classification and the property tests validating the table above.

use crate::classes::ClassSet;
use crate::history::{History, OpInstance};
use crate::ids::OpId;
use crate::op::{Command, Op};

/// A memory model `M = (τ, R)`.
///
/// Implementations provide the transformation function via
/// [`MemoryModel::transform`] (default: identity) and the minimal view of
/// the reordering function via [`MemoryModel::required`].
pub trait MemoryModel: Sync {
    /// Human-readable name (e.g. `"SC"`).
    fn name(&self) -> &'static str;

    /// The transformation function `τ`, lifted to histories: replaces
    /// each operation instance by its expansion. The default is the
    /// identity transformation `τ_I`.
    ///
    /// Implementations must preserve well-formedness (the paper's
    /// condition on well-formed transformation functions).
    fn transform(&self, h: &History) -> History {
        h.clone()
    }

    /// Minimal-view membership: must every view in `R(h)` order the
    /// operation at history index `i` before the one at index `j`?
    ///
    /// Callers guarantee: `i < j` in history order, both operations are
    /// non-transactional commands, and both are by the same process.
    /// (Views of the paper's models never constrain other pairs; a model
    /// with non-atomic stores could override
    /// [`MemoryModel::required_in_view`] to make the answer depend on the
    /// viewing process.)
    fn required(&self, h: &History, i: usize, j: usize) -> bool;

    /// Per-viewer variant of [`MemoryModel::required`] for models that
    /// allow different processes different views (e.g. IA-32 non-atomic
    /// stores). The default ignores the viewer.
    fn required_in_view(
        &self,
        h: &History,
        _viewer: crate::ids::ProcId,
        i: usize,
        j: usize,
    ) -> bool {
        self.required(h, i, j)
    }

    /// The reorder-restriction classes this model belongs to (§3.2).
    /// Validated against [`MemoryModel::required`] by the property tests
    /// in [`crate::classes`].
    fn classes(&self) -> ClassSet;
}

fn cmd(h: &History, i: usize) -> &Command {
    h.ops()[i]
        .op
        .command()
        .expect("required() is only called on object operations")
}

/// True if `j`'s dependency set contains `i`'s operation id.
fn depends_on(h: &History, i: usize, j: usize) -> bool {
    match cmd(h, j).deps() {
        Some((_, deps)) => {
            let id = h.ops()[i].id;
            deps.contains(&id)
        }
        None => false,
    }
}

/// Sequential consistency `M_SC`: program order is preserved entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sc;

impl MemoryModel for Sc {
    fn name(&self) -> &'static str {
        "SC"
    }

    fn required(&self, _h: &History, _i: usize, _j: usize) -> bool {
        true
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: true,
            rr_c: true,
            rr_d: true,
            rw_i: true,
            rw_c: true,
            rw_d: true,
            wr: true,
            ww: true,
        }
    }
}

/// Total store order `M_tso`: relaxes only write→read to a different
/// variable (FIFO store buffer).
///
/// Following the paper's classification of TSO (`M_tso ∈ M^i_rr ∩ M^i_rw
/// ∩ M_ww`, `M_tso ∉ M_wr`), read→read order is always required; see
/// [`TsoForwarding`] for the variant in which a store-forwarded read may
/// reorder with a later read, as discussed in the paper's prose.
#[derive(Clone, Copy, Debug, Default)]
pub struct Tso;

impl MemoryModel for Tso {
    fn name(&self) -> &'static str {
        "TSO"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        let (ci, cj) = (cmd(h, i), cmd(h, j));
        if ci.var() == cj.var() {
            return true;
        }
        // Only write→read (different variables) is relaxed.
        !(ci.is_write() && cj.is_read())
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: true,
            rr_c: true,
            rr_d: true,
            rw_i: true,
            rw_c: true,
            rw_d: true,
            wr: false,
            ww: true,
        }
    }
}

/// TSO with store-to-load forwarding made visible: two reads of
/// different variables may reorder if the first read obtained its value
/// from the process's own latest preceding write (it was served from the
/// store buffer), per the paper's discussion of `M_tso`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TsoForwarding;

impl TsoForwarding {
    /// Did the read at index `i` take its value from the same process's
    /// latest preceding write to the same variable in `h`?
    fn forwarded(h: &History, i: usize) -> bool {
        let ci = cmd(h, i);
        if !ci.is_read() {
            return false;
        }
        let var = ci.var();
        let proc = h.ops()[i].proc;
        let last_write = h.ops()[..i]
            .iter()
            .rev()
            .find(|o| {
                o.proc == proc
                    && o.op
                        .command()
                        .map(|c| c.is_write() && c.var() == var)
                        .unwrap_or(false)
            })
            .and_then(|o| o.op.command().and_then(Command::written_val));
        match last_write {
            Some(v) => ci.read_val() == Some(v),
            None => false,
        }
    }
}

impl MemoryModel for TsoForwarding {
    fn name(&self) -> &'static str {
        "TSO+fwd"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        let (ci, cj) = (cmd(h, i), cmd(h, j));
        if ci.var() == cj.var() {
            return true;
        }
        if ci.is_write() && cj.is_read() {
            return false;
        }
        if ci.is_read() && cj.is_read() && Self::forwarded(h, i) {
            return false;
        }
        true
    }

    fn classes(&self) -> ClassSet {
        // Not read-read restrictive in general (forwarded reads may
        // reorder), hence outside M^i_rr unlike plain `Tso`.
        ClassSet {
            rr_i: false,
            rr_c: false,
            rr_d: false,
            rw_i: true,
            rw_c: true,
            rw_d: true,
            wr: false,
            ww: true,
        }
    }
}

/// Partial store order `M_pso`: relaxes write→read and write→write to
/// different variables (per-variable store buffers).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pso;

impl MemoryModel for Pso {
    fn name(&self) -> &'static str {
        "PSO"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        let (ci, cj) = (cmd(h, i), cmd(h, j));
        ci.var() == cj.var() || ci.is_read()
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: true,
            rr_c: true,
            rr_d: true,
            rw_i: true,
            rw_c: true,
            rw_d: true,
            wr: false,
            ww: false,
        }
    }
}

/// Relaxed memory order `M_rmo` (SPARC v9): all pairs to different
/// variables may reorder unless the later operation is a
/// control/data-dependent write, or a data-dependent read, depending on
/// the earlier read (`i ∈ K`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Rmo;

impl MemoryModel for Rmo {
    fn name(&self) -> &'static str {
        "RMO"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        let (ci, cj) = (cmd(h, i), cmd(h, j));
        if ci.var() == cj.var() {
            return true;
        }
        if !ci.is_read() {
            return false;
        }
        match cj {
            // Dependent writes (control or data) must stay after the
            // read they depend on.
            Command::DepWrite { .. } => depends_on(h, i, j),
            // Dependent reads: only *data*-dependent reads are ordered.
            Command::DepRead {
                kind: crate::op::DepKind::Data,
                ..
            } => depends_on(h, i, j),
            _ => false,
        }
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: false,
            rr_c: false,
            rr_d: true,
            rw_i: false,
            rw_c: true,
            rw_d: true,
            wr: false,
            ww: false,
        }
    }
}

/// The Alpha memory model: the weakest hardware model in the paper —
/// even data-dependent reads may reorder; only dependent *writes* are
/// ordered after the reads they depend on.
#[derive(Clone, Copy, Debug, Default)]
pub struct Alpha;

impl MemoryModel for Alpha {
    fn name(&self) -> &'static str {
        "Alpha"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        let (ci, cj) = (cmd(h, i), cmd(h, j));
        if ci.var() == cj.var() {
            return true;
        }
        ci.is_read() && matches!(cj, Command::DepWrite { .. }) && depends_on(h, i, j)
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: false,
            rr_c: false,
            rr_d: false,
            rw_i: false,
            rw_c: true,
            rw_d: true,
            wr: false,
            ww: false,
        }
    }
}

/// The idealized fully relaxed model of Theorem 3: any two operations on
/// different variables may reorder. Outside all four restriction
/// classes.
#[derive(Clone, Copy, Debug, Default)]
pub struct Relaxed;

impl MemoryModel for Relaxed {
    fn name(&self) -> &'static str {
        "Relaxed"
    }

    fn required(&self, h: &History, i: usize, j: usize) -> bool {
        cmd(h, i).var() == cmd(h, j).var()
    }

    fn classes(&self) -> ClassSet {
        ClassSet::default()
    }
}

/// Junk-SC (§3.2): sequentially consistent ordering, but writes carry no
/// out-of-thin-air guarantee — `τ(wr, x, v) = havoc(x) · (wr, x, v)`, so
/// a read racing between the `havoc` and the write may return any value.
#[derive(Clone, Copy, Debug, Default)]
pub struct JunkSc;

impl MemoryModel for JunkSc {
    fn name(&self) -> &'static str {
        "Junk-SC"
    }

    fn transform(&self, h: &History) -> History {
        let mut next_id: u32 = h.ops().iter().map(|o| o.id.0).max().unwrap_or(0) + 1;
        let mut ops = Vec::with_capacity(h.len() * 2);
        for oi in h.ops() {
            if let Op::Cmd(c) = &oi.op {
                if c.is_write() {
                    ops.push(OpInstance {
                        op: Op::Cmd(Command::Havoc { var: c.var() }),
                        proc: oi.proc,
                        id: OpId(next_id),
                    });
                    next_id += 1;
                }
            }
            ops.push(oi.clone());
        }
        History::new(ops).expect("havoc expansion preserves well-formedness")
    }

    fn required(&self, _h: &History, _i: usize, _j: usize) -> bool {
        true
    }

    fn classes(&self) -> ClassSet {
        ClassSet {
            rr_i: true,
            rr_c: true,
            rr_d: true,
            rw_i: true,
            rw_c: true,
            rw_d: true,
            wr: true,
            ww: true,
        }
    }
}

/// All concrete models in this module, for sweeping tests and litmus
/// harnesses.
pub fn all_models() -> Vec<&'static dyn MemoryModel> {
    vec![
        &Sc,
        &Tso,
        &TsoForwarding,
        &Pso,
        &Rmo,
        &Alpha,
        &Relaxed,
        &JunkSc,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HistoryBuilder;
    use crate::ids::{ProcId, X, Y};
    use crate::op::DepKind;

    fn p(n: u32) -> ProcId {
        ProcId(n)
    }

    /// History with two non-transactional ops by the same process, to
    /// probe `required` on the pair (0, 1).
    fn pair(a: Command, b: Command) -> History {
        let mut bld = HistoryBuilder::new();
        bld.op(p(1), Op::Cmd(a));
        bld.op(p(1), Op::Cmd(b));
        bld.build().unwrap()
    }

    fn rd(var: crate::ids::Var, val: u64) -> Command {
        Command::Read { var, val }
    }

    fn wr(var: crate::ids::Var, val: u64) -> Command {
        Command::Write { var, val }
    }

    #[test]
    fn sc_orders_everything() {
        for (a, b) in [
            (rd(X, 0), rd(Y, 0)),
            (rd(X, 0), wr(Y, 1)),
            (wr(X, 1), rd(Y, 0)),
            (wr(X, 1), wr(Y, 1)),
        ] {
            let h = pair(a, b);
            assert!(Sc.required(&h, 0, 1));
        }
    }

    #[test]
    fn tso_relaxes_only_write_read() {
        let h = pair(wr(X, 1), rd(Y, 0));
        assert!(!Tso.required(&h, 0, 1));
        for (a, b) in [
            (rd(X, 0), rd(Y, 0)),
            (rd(X, 0), wr(Y, 1)),
            (wr(X, 1), wr(Y, 1)),
        ] {
            let h = pair(a, b);
            assert!(Tso.required(&h, 0, 1));
        }
        // Same variable always ordered.
        let h = pair(wr(X, 1), rd(X, 1));
        assert!(Tso.required(&h, 0, 1));
    }

    #[test]
    fn tso_forwarding_relaxes_forwarded_read_read() {
        // write x 1; read x 1 (forwarded); read y 0 — the two reads may
        // reorder under TSO+fwd but not under plain TSO.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.read(p(1), X, 1);
        b.read(p(1), Y, 0);
        let h = b.build().unwrap();
        assert!(!TsoForwarding.required(&h, 1, 2));
        assert!(Tso.required(&h, 1, 2));
        // A non-forwarded read (value mismatch) stays ordered.
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.read(p(1), X, 2);
        b.read(p(1), Y, 0);
        let h = b.build().unwrap();
        assert!(TsoForwarding.required(&h, 1, 2));
    }

    #[test]
    fn pso_relaxes_write_write() {
        let h = pair(wr(X, 1), wr(Y, 1));
        assert!(!Pso.required(&h, 0, 1));
        assert!(Tso.required(&h, 0, 1));
        let h = pair(rd(X, 0), wr(Y, 1));
        assert!(Pso.required(&h, 0, 1));
    }

    #[test]
    fn rmo_orders_only_dependencies() {
        let h = pair(rd(X, 0), rd(Y, 0));
        assert!(!Rmo.required(&h, 0, 1));
        let h = pair(rd(X, 0), wr(Y, 1));
        assert!(!Rmo.required(&h, 0, 1));

        // Data-dependent write after read: ordered.
        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_write(p(1), Y, 0, DepKind::Data, vec![r]);
        let h = b.build().unwrap();
        assert!(Rmo.required(&h, 0, 1));

        // Control-dependent write: ordered.
        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_write(p(1), Y, 0, DepKind::Control, vec![r]);
        let h = b.build().unwrap();
        assert!(Rmo.required(&h, 0, 1));

        // Data-dependent read: ordered; control-dependent read: not.
        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_read(p(1), Y, 0, DepKind::Data, vec![r]);
        let h = b.build().unwrap();
        assert!(Rmo.required(&h, 0, 1));
        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_read(p(1), Y, 0, DepKind::Control, vec![r]);
        let h = b.build().unwrap();
        assert!(!Rmo.required(&h, 0, 1));
    }

    #[test]
    fn alpha_orders_only_dependent_writes() {
        // Even data-dependent reads may reorder on Alpha.
        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_read(p(1), Y, 0, DepKind::Data, vec![r]);
        let h = b.build().unwrap();
        assert!(!Alpha.required(&h, 0, 1));

        let mut b = HistoryBuilder::new();
        let r = b.read(p(1), X, 0);
        b.dep_write(p(1), Y, 0, DepKind::Data, vec![r]);
        let h = b.build().unwrap();
        assert!(Alpha.required(&h, 0, 1));
    }

    #[test]
    fn relaxed_orders_same_variable_only() {
        let h = pair(wr(X, 1), rd(X, 1));
        assert!(Relaxed.required(&h, 0, 1));
        let h = pair(wr(X, 1), rd(Y, 0));
        assert!(!Relaxed.required(&h, 0, 1));
    }

    #[test]
    fn junk_sc_transform_inserts_havoc() {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.read(p(1), X, 1);
        let h = b.build().unwrap();
        let t = JunkSc.transform(&h);
        assert_eq!(t.len(), 3);
        assert!(matches!(t.ops()[0].op, Op::Cmd(Command::Havoc { .. })));
        assert!(matches!(t.ops()[1].op, Op::Cmd(Command::Write { .. })));
        // Identifiers remain unique.
        let ids: std::collections::HashSet<_> = t.ops().iter().map(|o| o.id).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn junk_sc_transform_preserves_txn_structure() {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.commit(p(1));
        let h = b.build().unwrap();
        let t = JunkSc.transform(&h);
        assert_eq!(t.txns().len(), 1);
        assert_eq!(t.txns()[0].op_indices.len(), 4); // start havoc wr commit
    }

    #[test]
    fn identity_transform_by_default() {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        let h = b.build().unwrap();
        assert_eq!(Sc.transform(&h).len(), h.len());
        assert_eq!(Rmo.transform(&h).len(), h.len());
    }

    #[test]
    fn all_models_enumerates_eight() {
        assert_eq!(all_models().len(), 8);
    }
}
