//! Scenario tests for the parametrized-opacity checker: multi-
//! transaction serialization, richer objects, Junk-SC edge cases, and
//! witness validity.

use jungle_core::builder::HistoryBuilder;
use jungle_core::ids::{ProcId, Var, X, Y, Z};
use jungle_core::model::{all_models, JunkSc, Relaxed, Sc};
use jungle_core::opacity::{check_opacity, check_opacity_with};
use jungle_core::spec::{Spec, SpecRegistry};

fn p(n: u32) -> ProcId {
    ProcId(n)
}

#[test]
fn three_txn_serialization_cycle_rejected() {
    // T1 reads x=0 writes y=1; T2 reads y=0 writes z=1; T3 reads z=0
    // writes x=1 — all overlapping. Values force T1 < T2 < T3 < T1:
    // no serialization exists.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.start(p(2));
    b.start(p(3));
    b.read(p(1), X, 0);
    b.write(p(1), Y, 1);
    b.read(p(2), Y, 1); // T1 < T2
    b.write(p(2), Z, 1);
    b.read(p(3), Z, 1); // T2 < T3
    b.write(p(3), X, 1);
    b.commit(p(1));
    b.commit(p(2));
    b.commit(p(3));
    let h = b.build().unwrap();
    // This chain IS serializable: T1 < T2 < T3 and T1 read x=0 before
    // T3's write. Sanity: opaque.
    assert!(check_opacity(&h, &Sc).is_opaque());

    // Close the cycle: T1 reads x=1 (T3 < T1) while T3 reads y... make
    // T1's read require T3 before it, contradiction.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.start(p(2));
    b.start(p(3));
    b.read(p(1), X, 1); // needs T3 first
    b.write(p(1), Y, 1);
    b.read(p(2), Y, 1); // needs T1 first
    b.write(p(2), Z, 1);
    b.read(p(3), Z, 1); // needs T2 first
    b.write(p(3), X, 1);
    b.commit(p(1));
    b.commit(p(2));
    b.commit(p(3));
    let h = b.build().unwrap();
    for m in all_models() {
        assert!(
            !check_opacity(&h, m).is_opaque(),
            "cycle allowed under {}",
            m.name()
        );
    }
}

#[test]
fn five_process_mixed_history() {
    // Larger stress: 3 txns + 4 non-transactional ops across 5 procs,
    // all values consistent — opaque under SC.
    let mut b = HistoryBuilder::new();
    b.write(p(4), X, 1);
    b.start(p(1));
    b.read(p(1), X, 1);
    b.write(p(1), Y, 2);
    b.commit(p(1));
    b.read(p(5), Y, 2);
    b.start(p(2));
    b.read(p(2), Y, 2);
    b.write(p(2), Z, 3);
    b.commit(p(2));
    b.start(p(3));
    b.read(p(3), Z, 3);
    b.commit(p(3));
    b.read(p(5), Z, 3);
    let h = b.build().unwrap();
    assert!(check_opacity(&h, &Sc).is_opaque());
    // Flip one value to something unjustifiable.
    let mut b = HistoryBuilder::new();
    b.write(p(4), X, 1);
    b.start(p(1));
    b.read(p(1), X, 2); // never written
    b.commit(p(1));
    let h = b.build().unwrap();
    assert!(!check_opacity(&h, &Relaxed).is_opaque());
}

#[test]
fn counters_compose_with_transactions() {
    let specs = SpecRegistry::with_default(Spec::Counter);
    // Two transactions each fetch-add 1 on the same counter; their
    // return values must serialize (0 then 1 in some order).
    let mk = |r1: u64, r2: u64| {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.fetch_add(p(1), X, 1, r1);
        b.commit(p(1));
        b.start(p(2));
        b.fetch_add(p(2), X, 1, r2);
        b.commit(p(2));
        b.build().unwrap()
    };
    assert!(check_opacity_with(&mk(0, 1), &Sc, &specs).is_opaque());
    assert!(!check_opacity_with(&mk(0, 0), &Sc, &specs).is_opaque());
    assert!(!check_opacity_with(&mk(1, 1), &Sc, &specs).is_opaque());
    // Real-time order: T1 completes before T2 starts → r1 must be 0.
    assert!(!check_opacity_with(&mk(1, 0), &Sc, &specs).is_opaque());
}

#[test]
fn mixed_specs_register_and_counter() {
    let mut specs = SpecRegistry::registers();
    specs.set(Y, Spec::Counter);
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 5);
    b.fetch_add(p(1), Y, 3, 0);
    b.start(p(2));
    b.read(p(2), X, 5);
    b.fetch_add(p(2), Y, 2, 3);
    b.commit(p(2));
    b.read(p(1), Y, 5);
    let h = b.build().unwrap();
    assert!(check_opacity_with(&h, &Sc, &specs).is_opaque());
    // FetchAdd on a plain register is illegal.
    let plain = SpecRegistry::registers();
    assert!(!check_opacity_with(&h, &Sc, &plain).is_opaque());
}

#[test]
fn junk_sc_pins_values_without_a_race() {
    // With no concurrent reader between havoc and write, Junk-SC agrees
    // with SC: a read after the write must return it.
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 4);
    b.read(p(1), X, 9); // same process, same var: pinned
    let h = b.build().unwrap();
    assert!(!check_opacity(&h, &JunkSc).is_opaque());

    // A racing reader on another process CAN see junk.
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 4);
    b.read(p(2), X, 9);
    let h = b.build().unwrap();
    assert!(check_opacity(&h, &JunkSc).is_opaque());
    assert!(!check_opacity(&h, &Sc).is_opaque());
}

#[test]
fn witnesses_are_checkable_sequential_histories() {
    use jungle_core::history::{History, OpInstance};
    use jungle_core::legal::every_op_legal;

    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 1);
    b.start(p(1));
    b.read(p(2), Y, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), X, 1);
    let h = b.build().unwrap();
    let v = check_opacity(&h, &Sc);
    assert!(v.is_opaque());
    // Reconstruct each witness as a history and verify it is a
    // sequential, fully legal permutation — i.e. the verdict's
    // evidence is independently checkable.
    for (_, ids) in v.witnesses() {
        let ops: Vec<OpInstance> = ids
            .iter()
            .map(|id| {
                let idx = h.index_of(*id).unwrap();
                h.ops()[idx].clone()
            })
            .collect();
        let s = History::new(ops).unwrap();
        assert!(s.is_sequential());
        assert!(every_op_legal(&s, &SpecRegistry::registers()));
    }
}

#[test]
fn many_variables_scale() {
    // 8 variables, one committed txn each, then a reader checking all:
    // exercises the checker on a longer (but structurally easy) history.
    let mut b = HistoryBuilder::new();
    for i in 0..8u32 {
        b.start(p(1));
        b.write(p(1), Var(i), u64::from(i) + 1);
        b.commit(p(1));
    }
    for i in 0..8u32 {
        b.read(p(2), Var(i), u64::from(i) + 1);
    }
    let h = b.build().unwrap();
    assert_eq!(h.len(), 32);
    assert!(check_opacity(&h, &Sc).is_opaque());
}
