//! Property tests cross-validating the parallel checker entry points
//! against the serial oracles: `check_opacity_par` / `check_sgla_par`
//! must produce the *same* verdict — and, by the lowest-prefix
//! determinism rule, the same witness — as `check_opacity` /
//! `check_sgla` on every history, for every bundled memory model and
//! any thread count.
//!
//! Histories are generated freeform (overlapping transactions across
//! up to three processes, reads that may observe stale or fabricated
//! values), so both opaque and non-opaque inputs appear; the parallel
//! path is forced with `min_units: 0` so even tiny histories exercise
//! the worker pool. Witnesses returned by the parallel path are
//! re-validated from scratch as legal sequential permutations.

use jungle_core::builder::HistoryBuilder;
use jungle_core::history::{History, OpInstance};
use jungle_core::ids::{ProcId, Var};
use jungle_core::legal::every_op_legal;
use jungle_core::model::{all_models, MemoryModel};
use jungle_core::opacity::{check_opacity, check_opacity_par, OpacityVerdict};
use jungle_core::par::ParallelConfig;
use jungle_core::sgla::{check_sgla, check_sgla_par};
use jungle_core::spec::SpecRegistry;
use proptest::prelude::*;

/// Thread counts the cross-validation sweeps.
const THREADS: [usize; 3] = [1, 2, 4];

/// One step of the random script: `(proc, kind, var, val_choice)`.
type Action = (u32, u32, u32, u32);

/// A parallel config with the size threshold disabled, so every
/// generated history takes the worker-pool path.
fn forced(threads: usize) -> ParallelConfig {
    ParallelConfig {
        threads,
        min_units: 0,
    }
}

/// Record `script` as a history of at most `max_ops` operations.
/// Unlike the sequential generator in `witness_props`, transactions on
/// different processes may overlap freely and reads pick their observed
/// value from *any* value previously written to the variable (or a
/// fabricated one), so the result may or may not be opaque — exactly
/// what a cross-validation oracle needs.
fn build_history(script: &[Action], max_ops: usize) -> History {
    let mut b = HistoryBuilder::new();
    let mut live = [false; 3];
    let mut written: Vec<u64> = vec![0];
    let mut fresh = 1u64;
    for &(proc_raw, kind, var_raw, val_choice) in script {
        if b.len() >= max_ops {
            break;
        }
        let pi = (proc_raw % 3) as usize;
        let p = ProcId(pi as u32);
        let var = Var(var_raw % 2);
        match kind % 8 {
            0 if !live[pi] => {
                b.start(p);
                live[pi] = true;
            }
            1 if live[pi] => {
                b.commit(p);
                live[pi] = false;
            }
            2 if live[pi] => {
                b.abort(p);
                live[pi] = false;
            }
            3 | 4 => {
                b.write(p, var, fresh);
                written.push(fresh);
                fresh += 1;
            }
            _ => {
                let val = written[(val_choice as usize) % written.len()];
                b.read(p, var, val);
            }
        }
    }
    for (pi, open) in live.iter().enumerate() {
        if *open {
            b.commit(ProcId(pi as u32));
        }
    }
    b.build().expect("script produces a well-formed history")
}

/// Re-validate a witness set from scratch: each witness must be a legal
/// sequential permutation of the transformed history serializing
/// transactions in the claimed order. (Same checks as `witness_props`,
/// applied here to the *parallel* path's evidence.)
fn assert_witnesses_valid(h: &History, model: &dyn MemoryModel, v: &OpacityVerdict) {
    let th = model.transform(h);
    for (viewer, ids) in v.witnesses() {
        assert_eq!(
            ids.len(),
            th.len(),
            "witness for {viewer:?} not a permutation"
        );
        let mut indices: Vec<usize> = Vec::with_capacity(ids.len());
        for id in ids {
            let idx = th
                .index_of(*id)
                .unwrap_or_else(|| panic!("witness op {id:?} not in transformed history"));
            assert!(!indices.contains(&idx), "witness repeats op {id:?}");
            indices.push(idx);
        }
        let ops: Vec<OpInstance> = indices.iter().map(|&i| th.ops()[i].clone()).collect();
        let s = History::new(ops).expect("witness rebuilds as a history");
        assert!(s.is_sequential(), "witness interleaves transactions");
        assert!(
            every_op_legal(&s, &SpecRegistry::registers()),
            "witness for {viewer:?} contains an illegal operation"
        );
    }
}

fn action_strategy() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec((0u32..3, 0u32..8, 0u32..2, 0u32..8), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn opacity_par_matches_serial(script in action_strategy()) {
        let h = build_history(&script, 8);
        for model in all_models() {
            let serial = check_opacity(&h, model);
            for t in THREADS {
                let par = check_opacity_par(&h, model, &forced(t));
                prop_assert_eq!(
                    par.is_opaque(), serial.is_opaque(),
                    "verdict diverged under {} at {} threads", model.name(), t
                );
                // Lowest-prefix determinism: the parallel path returns
                // the exact serial witness, not just *a* witness.
                prop_assert_eq!(
                    par.txn_order(), serial.txn_order(),
                    "txn order diverged under {} at {} threads", model.name(), t
                );
                prop_assert_eq!(
                    par.witnesses(), serial.witnesses(),
                    "witness diverged under {} at {} threads", model.name(), t
                );
                if par.is_opaque() {
                    assert_witnesses_valid(&h, model, &par);
                }
            }
        }
    }

    #[test]
    fn sgla_par_matches_serial(script in action_strategy()) {
        let h = build_history(&script, 8);
        for model in all_models() {
            let serial = check_sgla(&h, model);
            for t in THREADS {
                let par = check_sgla_par(&h, model, &forced(t));
                prop_assert_eq!(
                    par.is_sgla(), serial.is_sgla(),
                    "verdict diverged under {} at {} threads", model.name(), t
                );
                prop_assert_eq!(
                    par.witnesses(), serial.witnesses(),
                    "witness diverged under {} at {} threads", model.name(), t
                );
            }
        }
    }

    #[test]
    fn opacity_par_is_deterministic(script in action_strategy()) {
        // Repeated runs at each thread count agree with each other —
        // the scheduler cannot influence the result.
        let h = build_history(&script, 8);
        for model in all_models() {
            for t in THREADS {
                let a = check_opacity_par(&h, model, &forced(t));
                let b = check_opacity_par(&h, model, &forced(t));
                prop_assert_eq!(a.is_opaque(), b.is_opaque());
                prop_assert_eq!(a.txn_order(), b.txn_order());
                prop_assert_eq!(a.witnesses(), b.witnesses());
            }
        }
    }
}
