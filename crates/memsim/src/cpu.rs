//! Simulated CPUs: per-CPU reorder engines and versioned global memory.
//!
//! Each CPU owns a [`ReorderEngine`] — the generalization of the old
//! store buffer — whose behaviour is driven entirely by the
//! [`ExecSemantics`] fields of the machine's model (see
//! [`jungle_core::registry`]):
//!
//! * the **store discipline** decides which buffered stores may drain
//!   next (none / FIFO / oldest-per-address);
//! * **forwarding** decides whether a load may be served from the CPU's
//!   own buffered store or must first drain it;
//! * the **load window** lets a load observe one of the last few
//!   overwritten values of an address (a load that *performed early*),
//!   bounded by per-CPU **coherence floors** so a CPU never un-sees a
//!   value it has already observed or written.
//!
//! [`GlobalMem`] keeps a short per-address version history (the last
//! [`MAX_VERSIONS`] values with global sequence numbers) to make the
//! load window explorable.

use jungle_core::ids::Val;
use jungle_core::registry::{ExecSemantics, StoreDiscipline};
use jungle_isa::instr::Addr;
use std::collections::HashMap;

/// The hardware model the simulated machine executes. Since the model
/// registry unification this *is* the execution-side semantics of a
/// registry entry; the historical `HwModel::{Sc,Tso,Pso}` variants
/// survive as the [`ExecSemantics::Sc`] / [`ExecSemantics::Tso`] /
/// [`ExecSemantics::Pso`] compatibility constants.
pub type HwModel = ExecSemantics;

/// Number of versions [`GlobalMem`] retains per address: the newest
/// plus the largest load window in the registry.
pub const MAX_VERSIONS: usize = ExecSemantics::MAX_LOAD_WINDOW as usize + 1;

/// A buffered (not yet globally visible) store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingStore {
    /// Target address.
    pub addr: Addr,
    /// Value to be written.
    pub val: Val,
}

/// One simulated CPU's private memory state: buffered stores plus the
/// coherence floors that bound its load reorder window.
///
/// A floor records the newest global sequence number the CPU has
/// *observed* for an address (by reading it, or by draining its own
/// store to it); loads may never return a version older than the floor.
/// A CAS raises the **global** floor (it acts as a full fence).
#[derive(Clone, Debug, Default)]
pub struct ReorderEngine {
    entries: Vec<PendingStore>,
    global_floor: u64,
    addr_floors: HashMap<Addr, u64>,
}

/// Backwards-compatible name for [`ReorderEngine`].
pub type StoreBuffer = ReorderEngine;

impl ReorderEngine {
    /// Enqueue a store.
    pub fn push(&mut self, addr: Addr, val: Val) {
        self.entries.push(PendingStore { addr, val });
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The youngest buffered value for `addr`, if any (store-to-load
    /// forwarding).
    pub fn forward(&self, addr: Addr) -> Option<Val> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.val)
    }

    /// The indices of entries that may drain next under `hw`'s store
    /// discipline: FIFO — only the oldest entry; per-address — the
    /// oldest entry *per address*; immediate — the buffer is never
    /// populated.
    pub fn drainable(&self, hw: HwModel) -> Vec<usize> {
        match hw.stores {
            StoreDiscipline::Immediate => Vec::new(),
            StoreDiscipline::Fifo => {
                if self.entries.is_empty() {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            StoreDiscipline::PerAddress => {
                let mut seen: HashMap<Addr, ()> = HashMap::new();
                let mut out = Vec::new();
                for (i, e) in self.entries.iter().enumerate() {
                    if seen.insert(e.addr, ()).is_none() {
                        out.push(i);
                    }
                }
                out
            }
        }
    }

    /// Remove and return the entry at `idx`.
    pub fn take(&mut self, idx: usize) -> PendingStore {
        self.entries.remove(idx)
    }

    /// Drain every entry in order, returning them (used by CAS and at
    /// termination).
    pub fn drain_all(&mut self) -> Vec<PendingStore> {
        std::mem::take(&mut self.entries)
    }

    /// The stores that must drain (in order) before this CPU may *load*
    /// `addr` on a machine **without** store-to-load forwarding: under
    /// FIFO the whole prefix up to the youngest same-address entry
    /// (TSO's load waits for its own store to become visible), under
    /// per-address queues just that address's queue. Empty when no
    /// same-address store is pending.
    pub fn force_drain_for_load(&mut self, hw: HwModel, addr: Addr) -> Vec<PendingStore> {
        let mut out = Vec::new();
        match hw.stores {
            StoreDiscipline::Immediate => {}
            StoreDiscipline::Fifo => {
                while self.entries.iter().any(|e| e.addr == addr) {
                    out.push(self.entries.remove(0));
                }
            }
            StoreDiscipline::PerAddress => {
                let mut i = 0;
                while i < self.entries.len() {
                    if self.entries[i].addr == addr {
                        out.push(self.entries.remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out
    }

    /// The effective coherence floor for `addr`: the newest sequence
    /// number this CPU is known to have observed for it.
    pub fn eff_floor(&self, addr: Addr) -> u64 {
        self.addr_floors
            .get(&addr)
            .copied()
            .unwrap_or(0)
            .max(self.global_floor)
    }

    /// Record that this CPU observed version `seq` of `addr` (by
    /// loading it or draining its own store to it). Floors only rise.
    pub fn raise_addr_floor(&mut self, addr: Addr, seq: u64) {
        let f = self.addr_floors.entry(addr).or_insert(0);
        *f = (*f).max(seq);
    }

    /// Record a full fence (CAS): the CPU has observed global memory up
    /// to `seq`; no later load of any address may return anything
    /// older.
    pub fn raise_global_floor(&mut self, seq: u64) {
        self.global_floor = self.global_floor.max(seq);
    }
}

/// Flat global memory (zero-initialized, sparse) with a short
/// per-address version history.
///
/// Every store gets a fresh global sequence number; the last
/// [`MAX_VERSIONS`] values of each address are retained so machines
/// with a load reorder window can offer stale reads. The implicit
/// initial value `0` counts as version `(0, 0)`.
#[derive(Clone, Debug, Default)]
pub struct GlobalMem {
    /// Versions per address, oldest → newest; always non-empty once
    /// present (seeded with the initial `(0, 0)`).
    cells: HashMap<Addr, Vec<(u64, Val)>>,
    seq: u64,
}

/// The version list of a never-written address.
static INITIAL_VERSION: [(u64, Val); 1] = [(0, 0)];

impl GlobalMem {
    /// Read the current value of an address (0 if never written).
    pub fn load(&self, addr: Addr) -> Val {
        self.cells
            .get(&addr)
            .and_then(|vs| vs.last())
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Write an address; returns the new version's global sequence
    /// number.
    pub fn store(&mut self, addr: Addr, val: Val) -> u64 {
        self.seq += 1;
        let vs = self
            .cells
            .entry(addr)
            .or_insert_with(|| INITIAL_VERSION.to_vec());
        vs.push((self.seq, val));
        if vs.len() > MAX_VERSIONS {
            let cut = vs.len() - MAX_VERSIONS;
            vs.drain(..cut);
        }
        self.seq
    }

    /// The current global sequence number (number of stores so far).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The retained versions of `addr`, oldest → newest (at least one
    /// entry; `(0, 0)` for a never-written address).
    pub fn versions(&self, addr: Addr) -> &[(u64, Val)] {
        self.cells
            .get(&addr)
            .map(|vs| vs.as_slice())
            .unwrap_or(&INITIAL_VERSION)
    }

    /// Snapshot of all written cells' current values, sorted by address.
    pub fn snapshot(&self) -> Vec<(Addr, Val)> {
        let mut v: Vec<(Addr, Val)> = self
            .cells
            .iter()
            .filter_map(|(a, vs)| vs.last().map(|&(_, x)| (*a, x)))
            .collect();
        v.sort_unstable();
        v
    }

    /// Atomic compare-and-swap on the current value; returns whether it
    /// succeeded.
    pub fn cas(&mut self, addr: Addr, expect: Val, new: Val) -> bool {
        if self.load(addr) == expect {
            self.store(addr, new);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_returns_youngest() {
        let mut b = ReorderEngine::default();
        b.push(0, 1);
        b.push(1, 9);
        b.push(0, 2);
        assert_eq!(b.forward(0), Some(2));
        assert_eq!(b.forward(1), Some(9));
        assert_eq!(b.forward(7), None);
    }

    #[test]
    fn tso_drains_fifo_only() {
        let mut b = ReorderEngine::default();
        b.push(0, 1);
        b.push(1, 2);
        assert_eq!(b.drainable(HwModel::Tso), vec![0]);
        let e = b.take(0);
        assert_eq!(e, PendingStore { addr: 0, val: 1 });
        assert_eq!(b.drainable(HwModel::Tso), vec![0]);
    }

    #[test]
    fn pso_drains_per_address() {
        let mut b = ReorderEngine::default();
        b.push(0, 1);
        b.push(0, 2);
        b.push(1, 9);
        // Oldest per address: index 0 (addr 0) and index 2 (addr 1).
        assert_eq!(b.drainable(HwModel::Pso), vec![0, 2]);
        // Same-address order is preserved: 0→2 cannot drain before 0→1.
        let e = b.take(2);
        assert_eq!(e.addr, 1);
        assert_eq!(b.drainable(HwModel::Pso), vec![0]);
    }

    #[test]
    fn relaxed_models_drain_per_address_too() {
        // Coherence is the machine's hard floor: even the fully relaxed
        // model never inverts same-address stores.
        let mut b = ReorderEngine::default();
        b.push(0, 1);
        b.push(0, 2);
        b.push(1, 9);
        for hw in [HwModel::RMO, HwModel::ALPHA, HwModel::RELAXED] {
            assert_eq!(b.drainable(hw), vec![0, 2], "{}", hw.name);
        }
    }

    #[test]
    fn sc_never_buffers() {
        let b = ReorderEngine::default();
        assert_eq!(b.drainable(HwModel::Sc), Vec::<usize>::new());
    }

    #[test]
    fn forced_drain_fifo_takes_whole_prefix() {
        // Plain TSO: a load of addr 0 with [1:=9, 0:=1, 2:=3, 0:=2]
        // pending must drain the prefix through the *last* store to 0.
        let mut b = ReorderEngine::default();
        b.push(1, 9);
        b.push(0, 1);
        b.push(2, 3);
        b.push(0, 2);
        let drained = b.force_drain_for_load(HwModel::TSO, 0);
        assert_eq!(
            drained.iter().map(|e| (e.addr, e.val)).collect::<Vec<_>>(),
            vec![(1, 9), (0, 1), (2, 3), (0, 2)]
        );
        assert!(b.is_empty());
    }

    #[test]
    fn forced_drain_per_address_takes_only_that_queue() {
        let mut b = ReorderEngine::default();
        b.push(1, 9);
        b.push(0, 1);
        b.push(0, 2);
        let drained = b.force_drain_for_load(HwModel::PSO, 0);
        assert_eq!(
            drained.iter().map(|e| (e.addr, e.val)).collect::<Vec<_>>(),
            vec![(0, 1), (0, 2)]
        );
        assert_eq!(b.len(), 1);
        assert_eq!(b.forward(1), Some(9));
    }

    #[test]
    fn floors_rise_monotonically() {
        let mut b = ReorderEngine::default();
        assert_eq!(b.eff_floor(0), 0);
        b.raise_addr_floor(0, 5);
        b.raise_addr_floor(0, 3); // no-op
        assert_eq!(b.eff_floor(0), 5);
        assert_eq!(b.eff_floor(1), 0);
        b.raise_global_floor(7);
        assert_eq!(b.eff_floor(0), 7);
        assert_eq!(b.eff_floor(1), 7);
        b.raise_global_floor(2); // no-op
        assert_eq!(b.eff_floor(1), 7);
    }

    #[test]
    fn memory_cas() {
        let mut m = GlobalMem::default();
        assert_eq!(m.load(3), 0);
        assert!(m.cas(3, 0, 7));
        assert!(!m.cas(3, 0, 9));
        assert_eq!(m.load(3), 7);
        m.store(3, 1);
        assert_eq!(m.load(3), 1);
    }

    #[test]
    fn memory_retains_bounded_version_history() {
        let mut m = GlobalMem::default();
        assert_eq!(m.versions(0), &[(0, 0)]);
        let s1 = m.store(0, 10);
        let s2 = m.store(0, 20);
        assert!(s1 < s2);
        assert_eq!(m.versions(0), &[(0, 0), (s1, 10), (s2, 20)]);
        for v in 3..10 {
            m.store(0, v * 10);
        }
        let vs = m.versions(0);
        assert_eq!(vs.len(), MAX_VERSIONS);
        assert_eq!(vs.last().unwrap().1, 90);
        // Stores to other addresses advance the shared sequence.
        let before = m.seq();
        m.store(1, 1);
        assert_eq!(m.seq(), before + 1);
    }
}
