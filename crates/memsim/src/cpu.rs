//! Simulated CPUs: store buffers and hardware memory models.
//!
//! Each CPU owns a store buffer whose discipline depends on the
//! [`HwModel`]:
//!
//! * **SC** — no buffering; stores apply to global memory immediately.
//! * **TSO** — one FIFO buffer; loads forward from the youngest buffered
//!   store to the same address; a CAS drains the buffer first and then
//!   executes atomically.
//! * **PSO** — the buffer keeps FIFO order only per address; stores to
//!   *different* addresses may drain in any order (chosen by the
//!   scheduler), which is what makes write→write reordering observable.

use jungle_core::ids::Val;
use jungle_isa::instr::Addr;
use std::collections::HashMap;

/// The hardware memory model the simulated machine executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HwModel {
    /// Linearizable memory (the paper's baseline hardware assumption).
    Sc,
    /// Total store order: FIFO store buffer + forwarding.
    Tso,
    /// Partial store order: per-address store queues.
    Pso,
}

/// A buffered (not yet globally visible) store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingStore {
    /// Target address.
    pub addr: Addr,
    /// Value to be written.
    pub val: Val,
}

/// One simulated CPU's private state.
#[derive(Clone, Debug, Default)]
pub struct StoreBuffer {
    entries: Vec<PendingStore>,
}

impl StoreBuffer {
    /// Enqueue a store.
    pub fn push(&mut self, addr: Addr, val: Val) {
        self.entries.push(PendingStore { addr, val });
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The youngest buffered value for `addr`, if any (store-to-load
    /// forwarding).
    pub fn forward(&self, addr: Addr) -> Option<Val> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.val)
    }

    /// The indices of entries that may drain next under `hw`:
    /// TSO — only the oldest entry; PSO — the oldest entry *per
    /// address*; SC — the buffer is never populated.
    pub fn drainable(&self, hw: HwModel) -> Vec<usize> {
        match hw {
            HwModel::Sc => Vec::new(),
            HwModel::Tso => {
                if self.entries.is_empty() {
                    Vec::new()
                } else {
                    vec![0]
                }
            }
            HwModel::Pso => {
                let mut seen: HashMap<Addr, ()> = HashMap::new();
                let mut out = Vec::new();
                for (i, e) in self.entries.iter().enumerate() {
                    if seen.insert(e.addr, ()).is_none() {
                        out.push(i);
                    }
                }
                out
            }
        }
    }

    /// Remove and return the entry at `idx`.
    pub fn take(&mut self, idx: usize) -> PendingStore {
        self.entries.remove(idx)
    }

    /// Drain every entry in order, returning them (used by CAS and at
    /// termination).
    pub fn drain_all(&mut self) -> Vec<PendingStore> {
        std::mem::take(&mut self.entries)
    }
}

/// Flat global memory (zero-initialized, sparse).
#[derive(Clone, Debug, Default)]
pub struct GlobalMem {
    cells: HashMap<Addr, Val>,
}

impl GlobalMem {
    /// Read an address (0 if never written).
    pub fn load(&self, addr: Addr) -> Val {
        self.cells.get(&addr).copied().unwrap_or(0)
    }

    /// Write an address.
    pub fn store(&mut self, addr: Addr, val: Val) {
        self.cells.insert(addr, val);
    }

    /// Snapshot of all written cells, sorted by address.
    pub fn snapshot(&self) -> Vec<(Addr, Val)> {
        let mut v: Vec<(Addr, Val)> = self.cells.iter().map(|(a, x)| (*a, *x)).collect();
        v.sort_unstable();
        v
    }

    /// Atomic compare-and-swap; returns whether it succeeded.
    pub fn cas(&mut self, addr: Addr, expect: Val, new: Val) -> bool {
        if self.load(addr) == expect {
            self.store(addr, new);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_returns_youngest() {
        let mut b = StoreBuffer::default();
        b.push(0, 1);
        b.push(1, 9);
        b.push(0, 2);
        assert_eq!(b.forward(0), Some(2));
        assert_eq!(b.forward(1), Some(9));
        assert_eq!(b.forward(7), None);
    }

    #[test]
    fn tso_drains_fifo_only() {
        let mut b = StoreBuffer::default();
        b.push(0, 1);
        b.push(1, 2);
        assert_eq!(b.drainable(HwModel::Tso), vec![0]);
        let e = b.take(0);
        assert_eq!(e, PendingStore { addr: 0, val: 1 });
        assert_eq!(b.drainable(HwModel::Tso), vec![0]);
    }

    #[test]
    fn pso_drains_per_address() {
        let mut b = StoreBuffer::default();
        b.push(0, 1);
        b.push(0, 2);
        b.push(1, 9);
        // Oldest per address: index 0 (addr 0) and index 2 (addr 1).
        assert_eq!(b.drainable(HwModel::Pso), vec![0, 2]);
        // Same-address order is preserved: 0→2 cannot drain before 0→1.
        let e = b.take(2);
        assert_eq!(e.addr, 1);
        assert_eq!(b.drainable(HwModel::Pso), vec![0]);
    }

    #[test]
    fn sc_never_buffers() {
        let b = StoreBuffer::default();
        assert_eq!(b.drainable(HwModel::Sc), Vec::<usize>::new());
    }

    #[test]
    fn memory_cas() {
        let mut m = GlobalMem::default();
        assert_eq!(m.load(3), 0);
        assert!(m.cas(3, 0, 7));
        assert!(!m.cas(3, 0, 9));
        assert_eq!(m.load(3), 7);
        m.store(3, 1);
        assert_eq!(m.load(3), 1);
    }
}
