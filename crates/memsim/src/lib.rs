//! # jungle-memsim — a relaxed-memory multiprocessor simulator
//!
//! The paper's results concern TM implementations running on shared
//! memory multiprocessors. We do not have SPARC/Alpha hardware to run
//! the constructions on, so this crate provides the substitute: a small,
//! deterministic multiprocessor simulator that executes the instruction
//! alphabet of `jungle-isa` (`load`/`store`/`cas` plus operation
//! markers) under a pluggable **hardware** memory model:
//!
//! * [`HwModel::Sc`] — linearizable memory, the paper's baseline
//!   assumption ("we assume that the underlying hardware guarantees a
//!   strong memory model equivalent to linearizability");
//! * [`HwModel::Tso`] — per-CPU FIFO store buffers with store-to-load
//!   forwarding; CAS drains the buffer (x86-style `lock` semantics);
//! * [`HwModel::Pso`] — per-address store queues (write→write
//!   reordering in addition to write→read).
//!
//! Programs are *reactive* ([`Process`]): the simulator feeds each
//! completed instruction's result back to the process, which decides its
//! next step — this is what lets the TM algorithms of `jungle-mc` spin
//! on CAS failures and branch on loaded values.
//!
//! Nondeterminism (which CPU steps; which buffered store drains) is
//! resolved by a [`Scheduler`]: scripted ([`DirectedScheduler`]) for the
//! paper's Figure 5 constructions, seeded-random ([`RandomScheduler`])
//! for fuzzing, and exhaustive enumeration ([`explore`]) for the
//! model-checking sweeps.
//!
//! Every run records a [`Trace`](jungle_isa::Trace) whose corresponding
//! histories are checked by `jungle-core`.

#![warn(missing_docs)]

pub mod cpu;
pub mod machine;
pub mod process;
pub mod sched;

pub use cpu::HwModel;
pub use machine::{explore, ExploreOutcome, Machine, RunResult};
pub use process::{PInstr, Process, Step};
pub use sched::{BurstyScheduler, DirectedScheduler, ExhaustiveCursor, RandomScheduler, Scheduler};
