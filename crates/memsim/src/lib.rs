//! # jungle-memsim — a relaxed-memory multiprocessor simulator
//!
//! The paper's results concern TM implementations running on shared
//! memory multiprocessors. We do not have SPARC/Alpha hardware to run
//! the constructions on, so this crate provides the substitute: a small,
//! deterministic multiprocessor simulator that executes the instruction
//! alphabet of `jungle-isa` (`load`/`store`/`cas` plus operation
//! markers) under a pluggable **hardware** memory model.
//!
//! The hardware model is an execution discipline
//! ([`ExecSemantics`](jungle_core::registry::ExecSemantics), aliased as
//! [`HwModel`]) drawn from the model registry in `jungle_core`, which
//! pairs it with the matching checker-side `MemoryModel`. The full
//! registry zoo is executable:
//!
//! * **SC** — linearizable memory, the paper's baseline assumption
//!   ("we assume that the underlying hardware guarantees a strong
//!   memory model equivalent to linearizability");
//! * **TSO** / **TSO+fwd** — per-CPU FIFO store buffers, without /
//!   with store-to-load forwarding; CAS drains the buffer (x86-style
//!   `lock` semantics);
//! * **PSO** — per-address store queues (write→write reordering in
//!   addition to write→read);
//! * **RMO**, **Alpha**, **Relaxed** — per-address store queues plus a
//!   bounded *load reorder window*: a load may observe one of the last
//!   few overwritten values of an address (a load performed early),
//!   bounded by per-CPU coherence floors; RMO keeps dependent loads
//!   ([`PInstr::LoadDep`]) ordered, Alpha and Relaxed do not.
//!
//! The historical enum variants survive as compatibility constants
//! (`HwModel::Sc`, `HwModel::Tso` = TSO+fwd, `HwModel::Pso` = PSO+fwd —
//! the pre-registry machine always forwarded).
//!
//! Programs are *reactive* ([`Process`]): the simulator feeds each
//! completed instruction's result back to the process, which decides its
//! next step — this is what lets the TM algorithms of `jungle-mc` spin
//! on CAS failures and branch on loaded values.
//!
//! Nondeterminism (which CPU steps; which buffered store drains) is
//! resolved by a [`Scheduler`]: scripted ([`DirectedScheduler`]) for the
//! paper's Figure 5 constructions, seeded-random ([`RandomScheduler`])
//! for fuzzing, and exhaustive enumeration ([`explore`]) for the
//! model-checking sweeps.
//!
//! Every run records a [`Trace`](jungle_isa::Trace) whose corresponding
//! histories are checked by `jungle-core`.

#![warn(missing_docs)]

pub mod cpu;
pub mod machine;
pub mod process;
pub mod sched;

pub use cpu::{GlobalMem, HwModel, PendingStore, ReorderEngine, StoreBuffer, MAX_VERSIONS};
pub use jungle_core::registry::{ExecSemantics, StoreDiscipline};
pub use machine::{explore, ExploreOutcome, Machine, RunResult};
pub use process::{PInstr, Process, Step};
pub use sched::{
    Action, BurstyScheduler, ChoicePoint, DirectedScheduler, Divergence, ExhaustiveCursor,
    Footprint, RandomScheduler, RecordingScheduler, ReplayScheduler, Scheduler,
};
