//! Schedulers: resolution of the machine's nondeterminism.
//!
//! At every global step the machine computes the deterministic list of
//! enabled [`Action`]s (execute a CPU's next program step, or drain one
//! of its buffered stores) and asks the scheduler to pick one.

use jungle_isa::instr::Addr;
use jungle_obs::trace::{self, EventKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One schedulable action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Execute the next program step of CPU `cpu`.
    Exec {
        /// CPU index.
        cpu: usize,
    },
    /// Drain the buffered store at buffer index `idx` of CPU `cpu` to
    /// global memory.
    Drain {
        /// CPU index.
        cpu: usize,
        /// Index into the CPU's store buffer.
        idx: usize,
    },
    /// Have the load currently executing on CPU `cpu` observe the
    /// memory version at `version` (0 = newest) of its admissible
    /// staleness window.
    ///
    /// Never part of the machine's `enabled()` set: when a load on a
    /// model with a non-zero load window has more than one admissible
    /// version, the machine makes a *second* `choose` call mid-step
    /// with a synthetic list of these actions. The [`ExhaustiveCursor`]
    /// enumerates them like any other choice point.
    ReadVersion {
        /// CPU index.
        cpu: usize,
        /// Index into the admissible version list (0 = newest).
        version: usize,
    },
}

impl Action {
    /// Pack the action into one `u64` for portable schedule logs and
    /// flight-recorder arguments: `kind << 32 | cpu << 16 | arg`, where
    /// `arg` is the drain buffer index or the read-version index.
    pub fn encode(self) -> u64 {
        let (kind, cpu, arg) = match self {
            Action::Exec { cpu } => (1u64, cpu, 0),
            Action::Drain { cpu, idx } => (2u64, cpu, idx),
            Action::ReadVersion { cpu, version } => (3u64, cpu, version),
        };
        (kind << 32) | ((cpu as u64 & 0xffff) << 16) | (arg as u64 & 0xffff)
    }
}

/// The memory-level footprint of one scheduler decision: which CPU it
/// ran on, which global-memory addresses it read or wrote, and whether
/// it acted as a fence or crossed an operation boundary. The machine
/// records one footprint per `choose` call and reports each to the
/// scheduler via [`Scheduler::observe`] before the *next* call, so an
/// exploration cursor can reason about which decisions commute.
///
/// Two decisions are **dependent** (their order can matter) iff they
/// run on the same CPU, conflict on an address (one writes it), one is
/// a fence and the other writes (a CAS synchronizes with the global
/// store order), or both cross operation boundaries with at least one
/// an invocation (swapping a response past an invocation flips the
/// trace's real-time precedence relation; swapping two invocations
/// permutes the trace's operation sequence). Everything else commutes:
/// swapping two adjacent independent decisions yields a run with the
/// same per-CPU behavior and the same [`Trace::cache_key`]
/// (`jungle_isa::trace::Trace::cache_key`) class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// CPU the decision executed on.
    pub cpu: usize,
    /// Global-memory addresses read (loads, CAS comparisons, version
    /// picks).
    pub reads: Vec<Addr>,
    /// Global-memory addresses written (immediate stores, drains,
    /// successful CAS, forced pre-load flushes).
    pub writes: Vec<Addr>,
    /// True for CAS decisions: the CPU synchronized with the global
    /// store sequence, so the decision depends on every other CPU's
    /// writes.
    pub fence: bool,
    /// The decision recorded an operation invocation marker.
    pub inv: bool,
    /// The decision recorded an operation response marker.
    pub resp: bool,
}

impl Footprint {
    /// A footprint for a decision on `cpu` with no accesses yet.
    pub fn on(cpu: usize) -> Self {
        Footprint {
            cpu,
            ..Footprint::default()
        }
    }

    /// Can the order of `self` and `other` affect the run? See the type
    /// docs for the exact relation. Symmetric and over-approximate in
    /// the safe direction: anything not provably commuting is
    /// dependent.
    pub fn dependent(&self, other: &Footprint) -> bool {
        if self.cpu == other.cpu {
            return true;
        }
        let conflict = |a: &Footprint, b: &Footprint| {
            a.writes
                .iter()
                .any(|w| b.writes.contains(w) || b.reads.contains(w))
        };
        if conflict(self, other) || conflict(other, self) {
            return true;
        }
        // A fence observes the global store sequence number, which any
        // write advances; two fences observe each other.
        if (self.fence && (other.fence || !other.writes.is_empty()))
            || (other.fence && !self.writes.is_empty())
        {
            return true;
        }
        // Trace precedence is `earlier.last < later.first` over
        // instruction indices — i.e. response-before-invocation pairs —
        // so swapping an adjacent cross-CPU (response, invocation) pair
        // flips a precedence bit. Invocations additionally fix the
        // trace's operation *sequence* (op ids are allocated at the
        // invocation), so two cross-CPU invocations do not commute
        // either: swapping them permutes the op list and changes
        // `Trace::cache_key`. Only response↔response swaps of
        // already-open operations leave both the sequence and the
        // precedence relation intact.
        (self.inv && (other.inv || other.resp)) || (self.resp && other.inv)
    }
}

/// Chooses among enabled actions.
pub trait Scheduler {
    /// Pick an index into `actions` (guaranteed non-empty). The machine
    /// validates the returned index and panics if it is out of range —
    /// schedulers that replay external scripts must clamp or surface
    /// bad entries themselves (see [`ReplayScheduler`], which records a
    /// [`Divergence`] instead of silently taking a different action).
    fn choose(&mut self, actions: &[Action]) -> usize;

    /// Receive the [`Footprint`] of an earlier decision. The machine
    /// calls this once per completed decision, in decision order,
    /// always before the next `choose` (and once more before `run`
    /// returns), so by each choice point the scheduler has seen the
    /// footprints of every prior decision. Default: ignore.
    fn observe(&mut self, fp: &Footprint) {
        let _ = fp;
    }

    /// Should the machine abandon the current run? Checked after every
    /// `choose`; a `true` stops the run before the chosen action
    /// executes and reports it with `aborted == true`. Exploration
    /// cursors use this to cut runs whose remaining behaviors are
    /// provably covered elsewhere (sleep-set blocked nodes). Default:
    /// never.
    fn abort_run(&self) -> bool {
        false
    }
}

/// Plays a scripted sequence of choice indices, then always picks 0.
///
/// Used to reproduce the paper's hand-constructed interleavings
/// (Figure 5). Out-of-range entries are clamped.
#[derive(Clone, Debug, Default)]
pub struct DirectedScheduler {
    script: Vec<usize>,
    pos: usize,
}

impl DirectedScheduler {
    /// A scheduler that plays `script` then defaults to choice 0.
    pub fn new(script: Vec<usize>) -> Self {
        DirectedScheduler { script, pos: 0 }
    }
}

impl Scheduler for DirectedScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        let c = self.script.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        c.min(actions.len() - 1)
    }
}

/// Uniform random choices from a seeded generator (reproducible
/// fuzzing).
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        self.rng.gen_range(0..actions.len())
    }
}

/// Random scheduler with *bursts*: it repeatedly picks a CPU and a
/// burst length and then prefers that CPU's actions for the duration of
/// the burst. Bursts make the narrow windows of the paper's Figure 5
/// constructions (several consecutive steps of one process between two
/// consecutive steps of another) exponentially more likely than under
/// uniform choice, while still producing only legal schedules.
#[derive(Clone, Debug)]
pub struct BurstyScheduler {
    rng: StdRng,
    target: usize,
    remaining: usize,
}

impl BurstyScheduler {
    /// A bursty scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        BurstyScheduler {
            rng: StdRng::seed_from_u64(seed),
            target: 0,
            remaining: 0,
        }
    }
}

impl Scheduler for BurstyScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        if self.remaining == 0 {
            self.target = self.rng.gen_range(0..8);
            self.remaining = self.rng.gen_range(1..=8);
        }
        self.remaining -= 1;
        let preferred: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                matches!(
                    a,
                    Action::Exec { cpu }
                        | Action::Drain { cpu, .. }
                        | Action::ReadVersion { cpu, .. }
                    if *cpu == self.target
                )
            })
            .map(|(i, _)| i)
            .collect();
        if preferred.is_empty() {
            self.rng.gen_range(0..actions.len())
        } else {
            preferred[self.rng.gen_range(0..preferred.len())]
        }
    }
}

/// Replay cursor for exhaustive (DFS) exploration: replays a recorded
/// prefix of choices, then takes the first option at every new choice
/// point while recording how many options existed.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveCursor {
    /// `(chosen, n_options)` per choice point.
    pub stack: Vec<(usize, usize)>,
    pos: usize,
}

impl ExhaustiveCursor {
    /// Reset the replay position for the next run.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Advance to the lexicographically next choice string. Returns
    /// `false` when the space is exhausted.
    pub fn advance(&mut self) -> bool {
        while let Some((chosen, n)) = self.stack.pop() {
            if chosen + 1 < n {
                self.stack.push((chosen + 1, n));
                return true;
            }
        }
        false
    }
}

impl Scheduler for ExhaustiveCursor {
    fn choose(&mut self, actions: &[Action]) -> usize {
        if self.pos < self.stack.len() {
            let c = self.stack[self.pos].0;
            self.pos += 1;
            c.min(actions.len() - 1)
        } else {
            self.stack.push((0, actions.len()));
            self.pos += 1;
            0
        }
    }
}

// ── record / replay ──────────────────────────────────────────────────

/// One recorded scheduler decision: which index was chosen out of how
/// many options, and the [`Action::encode`]d action it selected.
///
/// The `options` count and encoded `action` are redundant with `chosen`
/// for the run that produced them — they exist so a replay on a changed
/// machine can detect *where* the choice lists stopped matching instead
/// of silently taking a different schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChoicePoint {
    /// Index chosen from the action list.
    pub chosen: usize,
    /// Length of the action list at this choose point.
    pub options: usize,
    /// [`Action::encode`] of the chosen action.
    pub action: u64,
}

/// Transparent wrapper that forwards every `choose` to an inner
/// scheduler while logging a [`ChoicePoint`] per call. The recorded
/// log replayed through a [`ReplayScheduler`] on the same machine
/// reproduces the run exactly.
pub struct RecordingScheduler<'a> {
    inner: &'a mut dyn Scheduler,
    log: Vec<ChoicePoint>,
}

impl<'a> RecordingScheduler<'a> {
    /// Wrap `inner`, recording every decision it makes.
    pub fn new(inner: &'a mut dyn Scheduler) -> Self {
        RecordingScheduler {
            inner,
            log: Vec::new(),
        }
    }

    /// The decisions recorded so far.
    pub fn log(&self) -> &[ChoicePoint] {
        &self.log
    }

    /// Consume the wrapper, returning the recorded decisions.
    pub fn into_log(self) -> Vec<ChoicePoint> {
        self.log
    }
}

impl Scheduler for RecordingScheduler<'_> {
    fn choose(&mut self, actions: &[Action]) -> usize {
        let chosen = self.inner.choose(actions).min(actions.len() - 1);
        self.log.push(ChoicePoint {
            chosen,
            options: actions.len(),
            action: actions[chosen].encode(),
        });
        chosen
    }

    fn observe(&mut self, fp: &Footprint) {
        self.inner.observe(fp);
    }

    fn abort_run(&self) -> bool {
        self.inner.abort_run()
    }
}

/// The first point where a replayed run stopped matching its recording.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Divergence {
    /// Index of the diverging choose point (0-based).
    pub step: usize,
    /// Option count the recording saw at this point.
    pub expected_options: usize,
    /// Option count the replayed machine offered.
    pub actual_options: usize,
    /// Encoded action the recording chose.
    pub expected_action: u64,
    /// Encoded action the replay ended up taking.
    pub actual_action: u64,
}

/// Deterministically re-executes a recorded decision sequence.
///
/// Each `choose` plays the next recorded index (clamped to the offered
/// list); past the end of the script it picks 0, so shrunk logs — which
/// are *prefixes with holes* of the original — still drive a complete
/// run. The first choose point whose offered option count or selected
/// action encoding differs from the recording is captured in
/// [`divergence`](Self::divergence); the replay continues past it (the
/// caller decides whether a diverged run is still useful).
pub struct ReplayScheduler {
    script: Vec<ChoicePoint>,
    pos: usize,
    divergence: Option<Divergence>,
}

impl ReplayScheduler {
    /// A scheduler that replays `script`.
    pub fn new(script: Vec<ChoicePoint>) -> Self {
        ReplayScheduler {
            script,
            pos: 0,
            divergence: None,
        }
    }

    /// The first mismatch between the recording and this replay, if any.
    pub fn divergence(&self) -> Option<Divergence> {
        self.divergence
    }

    /// How many choose points have been served (scripted or default).
    pub fn steps_replayed(&self) -> usize {
        self.pos
    }
}

impl Scheduler for ReplayScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        let step = self.pos;
        self.pos += 1;
        let Some(cp) = self.script.get(step).copied() else {
            // Past the recorded tail: deterministic default.
            return 0;
        };
        let chosen = cp.chosen.min(actions.len() - 1);
        let actual = actions[chosen].encode();
        trace::emit(EventKind::ReplayStep, step as u64, actual);
        // An out-of-range recorded index is a divergence in its own
        // right (the machine would reject the raw choice), even if the
        // clamped action happens to encode identically.
        if self.divergence.is_none()
            && (cp.options != actions.len() || cp.action != actual || cp.chosen >= actions.len())
        {
            self.divergence = Some(Divergence {
                step,
                expected_options: cp.options,
                actual_options: actions.len(),
                expected_action: cp.action,
                actual_action: actual,
            });
            trace::emit(EventKind::ReplayDivergence, step as u64, cp.action);
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts(n: usize) -> Vec<Action> {
        (0..n).map(|cpu| Action::Exec { cpu }).collect()
    }

    #[test]
    fn directed_plays_script_then_zero() {
        let mut s = DirectedScheduler::new(vec![1, 0, 5]);
        assert_eq!(s.choose(&acts(3)), 1);
        assert_eq!(s.choose(&acts(3)), 0);
        assert_eq!(s.choose(&acts(3)), 2); // clamped
        assert_eq!(s.choose(&acts(3)), 0); // exhausted
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = RandomScheduler::new(42);
        let mut b = RandomScheduler::new(42);
        for _ in 0..32 {
            assert_eq!(a.choose(&acts(4)), b.choose(&acts(4)));
        }
    }

    #[test]
    fn action_encodings_are_distinct() {
        let all = [
            Action::Exec { cpu: 0 },
            Action::Exec { cpu: 1 },
            Action::Drain { cpu: 0, idx: 0 },
            Action::Drain { cpu: 0, idx: 1 },
            Action::Drain { cpu: 1, idx: 0 },
            Action::ReadVersion { cpu: 0, version: 0 },
            Action::ReadVersion { cpu: 0, version: 1 },
        ];
        let codes: std::collections::HashSet<u64> = all.iter().map(|a| a.encode()).collect();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn recording_is_transparent_and_replays_identically() {
        let mut base = RandomScheduler::new(7);
        let mut rec = RecordingScheduler::new(&mut base);
        let picks: Vec<usize> = (0..16).map(|i| rec.choose(&acts(2 + i % 3))).collect();
        let log = rec.into_log();
        assert_eq!(log.len(), 16);
        // The recording must match what the bare scheduler would do.
        let mut bare = RandomScheduler::new(7);
        let bare_picks: Vec<usize> = (0..16).map(|i| bare.choose(&acts(2 + i % 3))).collect();
        assert_eq!(picks, bare_picks);
        // And a replay of the log reproduces the same picks.
        let mut rep = ReplayScheduler::new(log);
        let rep_picks: Vec<usize> = (0..16).map(|i| rep.choose(&acts(2 + i % 3))).collect();
        assert_eq!(picks, rep_picks);
        assert!(rep.divergence().is_none());
        assert_eq!(rep.steps_replayed(), 16);
    }

    #[test]
    fn replay_defaults_to_zero_past_script_end() {
        let mut rep = ReplayScheduler::new(vec![ChoicePoint {
            chosen: 1,
            options: 3,
            action: Action::Exec { cpu: 1 }.encode(),
        }]);
        assert_eq!(rep.choose(&acts(3)), 1);
        assert_eq!(rep.choose(&acts(3)), 0);
        assert!(rep.divergence().is_none());
    }

    #[test]
    fn replay_detects_first_divergence() {
        let log = vec![
            ChoicePoint {
                chosen: 0,
                options: 2,
                action: Action::Exec { cpu: 0 }.encode(),
            },
            ChoicePoint {
                chosen: 1,
                options: 4, // recording saw 4 options; replay will offer 2
                action: Action::Exec { cpu: 3 }.encode(),
            },
        ];
        let mut rep = ReplayScheduler::new(log);
        rep.choose(&acts(2));
        rep.choose(&acts(2));
        let d = rep.divergence().expect("must diverge at step 1");
        assert_eq!(d.step, 1);
        assert_eq!(d.expected_options, 4);
        assert_eq!(d.actual_options, 2);
        assert_eq!(d.expected_action, Action::Exec { cpu: 3 }.encode());
        assert_eq!(d.actual_action, Action::Exec { cpu: 1 }.encode());
    }

    #[test]
    fn replay_flags_out_of_range_recorded_choice() {
        // A corrupted log whose index exceeds the offered list must
        // surface as a Divergence even when the clamped action matches
        // the recorded encoding (the clamp is not silent).
        let log = vec![ChoicePoint {
            chosen: 7,
            options: 2,
            action: Action::Exec { cpu: 1 }.encode(),
        }];
        let mut rep = ReplayScheduler::new(log);
        assert_eq!(rep.choose(&acts(2)), 1); // clamped to the last option
        let d = rep.divergence().expect("out-of-range index must diverge");
        assert_eq!(d.step, 0);
        assert_eq!(d.actual_action, Action::Exec { cpu: 1 }.encode());
    }

    #[test]
    fn footprint_dependence_relation() {
        let mem = |cpu: usize, reads: &[Addr], writes: &[Addr]| Footprint {
            cpu,
            reads: reads.to_vec(),
            writes: writes.to_vec(),
            ..Footprint::default()
        };
        // Same CPU: always dependent, even with empty footprints.
        assert!(Footprint::on(0).dependent(&Footprint::on(0)));
        // Cross-CPU reads of the same address commute.
        assert!(!mem(0, &[5], &[]).dependent(&mem(1, &[5], &[])));
        // Write-read and write-write conflicts do not.
        assert!(mem(0, &[], &[5]).dependent(&mem(1, &[5], &[])));
        assert!(mem(0, &[5], &[]).dependent(&mem(1, &[], &[5])));
        assert!(mem(0, &[], &[5]).dependent(&mem(1, &[], &[5])));
        // Disjoint addresses commute.
        assert!(!mem(0, &[], &[5]).dependent(&mem(1, &[6], &[7])));
        // A fence depends on any other-CPU write (and other fences),
        // but not on a pure read.
        let fence = Footprint {
            fence: true,
            ..Footprint::on(0)
        };
        assert!(fence.dependent(&mem(1, &[], &[9])));
        assert!(mem(1, &[], &[9]).dependent(&fence));
        assert!(!fence.dependent(&mem(1, &[9], &[])));
        assert!(fence.dependent(&Footprint {
            fence: true,
            ..Footprint::on(1)
        }));
        // Cross-CPU response/invocation pairs flip trace precedence.
        let inv = Footprint {
            inv: true,
            ..Footprint::on(0)
        };
        let resp = Footprint {
            resp: true,
            ..Footprint::on(1)
        };
        assert!(inv.dependent(&resp));
        assert!(resp.dependent(&inv));
        // Two invocations fix the trace's operation sequence (op ids
        // are allocated at the invocation): dependent.
        assert!(inv.dependent(&Footprint {
            inv: true,
            ..Footprint::on(1)
        }));
        // Responses of already-open operations commute.
        assert!(!resp.dependent(&Footprint {
            resp: true,
            ..Footprint::on(0)
        }));
    }

    #[test]
    fn recording_forwards_observe_and_abort() {
        struct Probe {
            observed: usize,
            abort: bool,
        }
        impl Scheduler for Probe {
            fn choose(&mut self, _: &[Action]) -> usize {
                0
            }
            fn observe(&mut self, _: &Footprint) {
                self.observed += 1;
            }
            fn abort_run(&self) -> bool {
                self.abort
            }
        }
        let mut p = Probe {
            observed: 0,
            abort: true,
        };
        let mut rec = RecordingScheduler::new(&mut p);
        rec.observe(&Footprint::on(0));
        assert!(rec.abort_run(), "abort must pass through the recorder");
        assert_eq!(p.observed, 1, "observe must pass through the recorder");
    }

    #[test]
    fn exhaustive_cursor_enumerates_all_strings() {
        // Simulate a machine with two choice points of 2 and 3 options.
        let mut cursor = ExhaustiveCursor::default();
        let mut seen = Vec::new();
        loop {
            cursor.rewind();
            let a = cursor.choose(&acts(2));
            let b = cursor.choose(&acts(3));
            seen.push((a, b));
            if !cursor.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], (0, 0));
        assert!(seen.contains(&(1, 2)));
    }
}
