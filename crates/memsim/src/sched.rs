//! Schedulers: resolution of the machine's nondeterminism.
//!
//! At every global step the machine computes the deterministic list of
//! enabled [`Action`]s (execute a CPU's next program step, or drain one
//! of its buffered stores) and asks the scheduler to pick one.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One schedulable action.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// Execute the next program step of CPU `cpu`.
    Exec {
        /// CPU index.
        cpu: usize,
    },
    /// Drain the buffered store at buffer index `idx` of CPU `cpu` to
    /// global memory.
    Drain {
        /// CPU index.
        cpu: usize,
        /// Index into the CPU's store buffer.
        idx: usize,
    },
    /// Have the load currently executing on CPU `cpu` observe the
    /// memory version at `version` (0 = newest) of its admissible
    /// staleness window.
    ///
    /// Never part of the machine's `enabled()` set: when a load on a
    /// model with a non-zero load window has more than one admissible
    /// version, the machine makes a *second* `choose` call mid-step
    /// with a synthetic list of these actions. The [`ExhaustiveCursor`]
    /// enumerates them like any other choice point.
    ReadVersion {
        /// CPU index.
        cpu: usize,
        /// Index into the admissible version list (0 = newest).
        version: usize,
    },
}

/// Chooses among enabled actions.
pub trait Scheduler {
    /// Pick an index into `actions` (guaranteed non-empty).
    fn choose(&mut self, actions: &[Action]) -> usize;
}

/// Plays a scripted sequence of choice indices, then always picks 0.
///
/// Used to reproduce the paper's hand-constructed interleavings
/// (Figure 5). Out-of-range entries are clamped.
#[derive(Clone, Debug, Default)]
pub struct DirectedScheduler {
    script: Vec<usize>,
    pos: usize,
}

impl DirectedScheduler {
    /// A scheduler that plays `script` then defaults to choice 0.
    pub fn new(script: Vec<usize>) -> Self {
        DirectedScheduler { script, pos: 0 }
    }
}

impl Scheduler for DirectedScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        let c = self.script.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        c.min(actions.len() - 1)
    }
}

/// Uniform random choices from a seeded generator (reproducible
/// fuzzing).
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        self.rng.gen_range(0..actions.len())
    }
}

/// Random scheduler with *bursts*: it repeatedly picks a CPU and a
/// burst length and then prefers that CPU's actions for the duration of
/// the burst. Bursts make the narrow windows of the paper's Figure 5
/// constructions (several consecutive steps of one process between two
/// consecutive steps of another) exponentially more likely than under
/// uniform choice, while still producing only legal schedules.
#[derive(Clone, Debug)]
pub struct BurstyScheduler {
    rng: StdRng,
    target: usize,
    remaining: usize,
}

impl BurstyScheduler {
    /// A bursty scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        BurstyScheduler {
            rng: StdRng::seed_from_u64(seed),
            target: 0,
            remaining: 0,
        }
    }
}

impl Scheduler for BurstyScheduler {
    fn choose(&mut self, actions: &[Action]) -> usize {
        if self.remaining == 0 {
            self.target = self.rng.gen_range(0..8);
            self.remaining = self.rng.gen_range(1..=8);
        }
        self.remaining -= 1;
        let preferred: Vec<usize> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                matches!(
                    a,
                    Action::Exec { cpu }
                        | Action::Drain { cpu, .. }
                        | Action::ReadVersion { cpu, .. }
                    if *cpu == self.target
                )
            })
            .map(|(i, _)| i)
            .collect();
        if preferred.is_empty() {
            self.rng.gen_range(0..actions.len())
        } else {
            preferred[self.rng.gen_range(0..preferred.len())]
        }
    }
}

/// Replay cursor for exhaustive (DFS) exploration: replays a recorded
/// prefix of choices, then takes the first option at every new choice
/// point while recording how many options existed.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveCursor {
    /// `(chosen, n_options)` per choice point.
    pub stack: Vec<(usize, usize)>,
    pos: usize,
}

impl ExhaustiveCursor {
    /// Reset the replay position for the next run.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Advance to the lexicographically next choice string. Returns
    /// `false` when the space is exhausted.
    pub fn advance(&mut self) -> bool {
        while let Some((chosen, n)) = self.stack.pop() {
            if chosen + 1 < n {
                self.stack.push((chosen + 1, n));
                return true;
            }
        }
        false
    }
}

impl Scheduler for ExhaustiveCursor {
    fn choose(&mut self, actions: &[Action]) -> usize {
        if self.pos < self.stack.len() {
            let c = self.stack[self.pos].0;
            self.pos += 1;
            c.min(actions.len() - 1)
        } else {
            self.stack.push((0, actions.len()));
            self.pos += 1;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acts(n: usize) -> Vec<Action> {
        (0..n).map(|cpu| Action::Exec { cpu }).collect()
    }

    #[test]
    fn directed_plays_script_then_zero() {
        let mut s = DirectedScheduler::new(vec![1, 0, 5]);
        assert_eq!(s.choose(&acts(3)), 1);
        assert_eq!(s.choose(&acts(3)), 0);
        assert_eq!(s.choose(&acts(3)), 2); // clamped
        assert_eq!(s.choose(&acts(3)), 0); // exhausted
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = RandomScheduler::new(42);
        let mut b = RandomScheduler::new(42);
        for _ in 0..32 {
            assert_eq!(a.choose(&acts(4)), b.choose(&acts(4)));
        }
    }

    #[test]
    fn exhaustive_cursor_enumerates_all_strings() {
        // Simulate a machine with two choice points of 2 and 3 options.
        let mut cursor = ExhaustiveCursor::default();
        let mut seen = Vec::new();
        loop {
            cursor.rewind();
            let a = cursor.choose(&acts(2));
            let b = cursor.choose(&acts(3));
            seen.push((a, b));
            if !cursor.advance() {
                break;
            }
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], (0, 0));
        assert!(seen.contains(&(1, 2)));
    }
}
