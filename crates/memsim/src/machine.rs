//! The simulated multiprocessor.
//!
//! A [`Machine`] owns one [`Process`] per CPU, per-CPU store buffers,
//! global memory, and a trace recorder. [`Machine::run`] drives it to
//! completion (or a step bound) under a [`Scheduler`]; [`explore`]
//! enumerates every schedule exhaustively with an [`ExhaustiveCursor`].

use crate::cpu::{GlobalMem, HwModel, ReorderEngine};
use crate::process::{PInstr, Process, Resume, Step};
use crate::sched::{Action, ExhaustiveCursor, Footprint, Scheduler};
use jungle_core::ids::{OpId, ProcId, Val};
use jungle_core::registry::StoreDiscipline;
use jungle_isa::instr::Addr;
use jungle_isa::instr::{Instr, InstrInstance};
use jungle_isa::trace::Trace;
use jungle_obs::trace::{self, EventKind};
use jungle_obs::{profile, MachineStats};

/// The outcome of one simulated run.
#[derive(Debug)]
pub struct RunResult {
    /// The recorded trace (always well-formed; possibly ending in
    /// incomplete operations if the run hit the step bound).
    pub trace: Trace,
    /// True if every process finished and all store buffers drained.
    pub completed: bool,
    /// True if the scheduler abandoned the run via
    /// [`Scheduler::abort_run`] (a subset of `!completed`).
    pub aborted: bool,
    /// Number of scheduler steps taken.
    pub steps: usize,
    /// The [`Footprint`] of every scheduler decision, in decision order
    /// (one entry per `choose` call, including the synthetic mid-load
    /// version picks).
    pub footprints: Vec<Footprint>,
    /// Final global memory (written cells only, sorted by address).
    /// Buffered stores of truncated runs are *not* included.
    pub final_mem: Vec<(jungle_isa::instr::Addr, Val)>,
    /// Execution counters (instructions by kind, store-buffer flushes,
    /// reorder-window occupancy high-water mark).
    pub stats: MachineStats,
}

struct CpuState {
    proc: Box<dyn Process>,
    buffer: ReorderEngine,
    resume: Resume,
    done: bool,
    /// Currently open operation id and the trace index of its
    /// invocation marker (for backpatching).
    current_op: Option<(OpId, usize)>,
}

/// The simulated multiprocessor machine.
pub struct Machine {
    hw: HwModel,
    mem: GlobalMem,
    cpus: Vec<CpuState>,
    instrs: Vec<InstrInstance>,
    next_op: u32,
    stats: MachineStats,
    /// One footprint per scheduler decision, in `choose`-call order.
    footprints: Vec<Footprint>,
    /// Footprints already reported via [`Scheduler::observe`].
    observed: usize,
}

impl Machine {
    /// Create a machine with one CPU per process in `procs`, executing
    /// under hardware model `hw`. CPU `i` runs as `ProcId(i)`.
    pub fn new(hw: HwModel, procs: Vec<Box<dyn Process>>) -> Self {
        let cpus = procs
            .into_iter()
            .map(|proc| CpuState {
                proc,
                buffer: ReorderEngine::default(),
                resume: None,
                done: false,
                current_op: None,
            })
            .collect();
        Machine {
            hw,
            mem: GlobalMem::default(),
            cpus,
            instrs: Vec::new(),
            next_op: 1,
            stats: MachineStats {
                model: hw.name,
                ..MachineStats::default()
            },
            footprints: Vec::new(),
            observed: 0,
        }
    }

    /// Pre-initialize a memory address (all addresses default to 0).
    pub fn poke(&mut self, addr: jungle_isa::instr::Addr, val: Val) {
        self.mem.store(addr, val);
    }

    /// Read a memory address after (or during) a run — buffered stores
    /// are not visible here.
    pub fn peek(&self, addr: jungle_isa::instr::Addr) -> Val {
        self.mem.load(addr)
    }

    fn enabled(&self) -> Vec<Action> {
        let mut out = Vec::new();
        for (i, c) in self.cpus.iter().enumerate() {
            if !c.done {
                out.push(Action::Exec { cpu: i });
            }
            for idx in c.buffer.drainable(self.hw) {
                out.push(Action::Drain { cpu: i, idx });
            }
        }
        out
    }

    fn record(&mut self, cpu: usize, instr: Instr) -> usize {
        let op = self.cpus[cpu]
            .current_op
            .map(|(id, _)| id)
            .expect("instruction issued outside an operation");
        self.instrs.push(InstrInstance {
            instr,
            proc: ProcId(cpu as u32),
            op,
        });
        self.instrs.len() - 1
    }

    /// Apply a drained store to memory and record that this CPU has
    /// observed it (its own write raises the address's coherence
    /// floor). Counts as a global-memory write on the current decision.
    fn apply_drain(&mut self, cpu: usize, addr: Addr, val: Val) {
        let seq = self.mem.store(addr, val);
        self.cpus[cpu].buffer.raise_addr_floor(addr, seq);
        self.note_write(addr);
    }

    /// The footprint of the decision currently executing.
    fn fp(&mut self) -> &mut Footprint {
        self.footprints
            .last_mut()
            .expect("decision footprint pushed before execution")
    }

    fn note_read(&mut self, addr: Addr) {
        let f = self.fp();
        if !f.reads.contains(&addr) {
            f.reads.push(addr);
        }
    }

    fn note_write(&mut self, addr: Addr) {
        let f = self.fp();
        if !f.writes.contains(&addr) {
            f.writes.push(addr);
        }
    }

    /// Report every completed-but-unreported decision footprint to the
    /// scheduler, in decision order. Called before each `choose` (outer
    /// and mid-load) and once before `run` returns, so schedulers
    /// always see the footprints of all prior decisions by the time
    /// they pick the next one.
    fn flush_observations(&mut self, sched: &mut dyn Scheduler) {
        while self.observed < self.footprints.len() {
            sched.observe(&self.footprints[self.observed]);
            self.observed += 1;
        }
    }

    /// The memory versions a load of `addr` on `cpu` may observe,
    /// newest first: the current value plus up to `load_window` older
    /// ones, cut off at the CPU's coherence floor. A stale version is
    /// admissible only while the CPU has not yet observed the write
    /// that overwrote it (i.e. the next-newer version's sequence number
    /// is above the floor).
    fn admissible_versions(&self, cpu: usize, addr: Addr) -> Vec<(u64, Val)> {
        let vs = self.mem.versions(addr);
        let floor = self.cpus[cpu].buffer.eff_floor(addr);
        let n = vs.len();
        let window = (self.hw.load_window as usize).min(n - 1);
        let mut out = Vec::with_capacity(window + 1);
        for d in 0..=window {
            let i = n - 1 - d;
            if d > 0 && vs[i + 1].0 <= floor {
                break; // older versions are below the floor too
            }
            out.push(vs[i]);
        }
        out
    }

    /// Perform a load of `addr` against global memory (the forwarding
    /// fast path has already been tried). With more than one admissible
    /// version the scheduler picks which one the load observes, via a
    /// synthetic [`Action::ReadVersion`] choice list; the observed
    /// version raises the address's floor (reads are monotone).
    fn versioned_load(
        &mut self,
        cpu: usize,
        addr: Addr,
        dep_ordered: bool,
        sched: &mut dyn Scheduler,
    ) -> Val {
        let mut options = self.admissible_versions(cpu, addr);
        if dep_ordered {
            options.truncate(1);
        }
        self.note_read(addr);
        let (seq, val) = if options.len() > 1 {
            let actions: Vec<Action> = (0..options.len())
                .map(|version| Action::ReadVersion { cpu, version })
                .collect();
            // The enclosing Exec decision's accesses are all recorded by
            // now (forced drains and the read above) — safe to report it
            // before asking for the version pick.
            self.flush_observations(sched);
            let c = sched.choose(&actions);
            assert!(
                c < actions.len(),
                "scheduler chose index {c} of {} admissible versions",
                actions.len()
            );
            self.footprints.push(Footprint {
                cpu,
                reads: vec![addr],
                ..Footprint::default()
            });
            if c > 0 {
                self.stats.stale_loads += 1;
                trace::emit(EventKind::StaleLoad, addr as u64, c as u64);
            }
            options[c]
        } else {
            options[0]
        };
        self.cpus[cpu].buffer.raise_addr_floor(addr, seq);
        val
    }

    /// Execute a load instruction: forward from the CPU's own buffer if
    /// the model permits, otherwise (on non-forwarding models) drain
    /// pending same-address stores first, then read a memory version.
    fn exec_load(
        &mut self,
        cpu: usize,
        addr: Addr,
        dep_ordered: bool,
        sched: &mut dyn Scheduler,
    ) -> Val {
        if self.hw.forwarding {
            if let Some(v) = self.cpus[cpu].buffer.forward(addr) {
                trace::emit(EventKind::StoreForward, addr as u64, v);
                return v;
            }
        } else {
            // The load must wait for the CPU's own pending stores to
            // `addr` to become globally visible.
            let drained = self.cpus[cpu].buffer.force_drain_for_load(self.hw, addr);
            for e in drained {
                self.stats.flushes += 1;
                self.apply_drain(cpu, e.addr, e.val);
            }
        }
        self.versioned_load(cpu, addr, dep_ordered, sched)
    }

    fn exec(&mut self, cpu: usize, sched: &mut dyn Scheduler) {
        let resume = self.cpus[cpu].resume.take();
        let step = self.cpus[cpu].proc.next(resume);
        match step {
            Step::Done => {
                self.cpus[cpu].done = true;
            }
            Step::Inv(op) => {
                assert!(
                    self.cpus[cpu].current_op.is_none(),
                    "nested operation invocation on cpu {cpu}"
                );
                self.fp().inv = true;
                let id = OpId(self.next_op);
                self.next_op += 1;
                self.instrs.push(InstrInstance {
                    instr: Instr::Inv(op),
                    proc: ProcId(cpu as u32),
                    op: id,
                });
                self.cpus[cpu].current_op = Some((id, self.instrs.len() - 1));
            }
            Step::Resp(op) => {
                self.fp().resp = true;
                let (id, inv_idx) = self.cpus[cpu]
                    .current_op
                    .take()
                    .expect("response without open operation");
                // Backpatch the invocation with the final operation
                // (whose read values are now known).
                self.instrs[inv_idx].instr = Instr::Inv(op.clone());
                self.instrs.push(InstrInstance {
                    instr: Instr::Resp(op),
                    proc: ProcId(cpu as u32),
                    op: id,
                });
            }
            Step::Instr(pi) => match pi {
                PInstr::Load(addr) | PInstr::LoadDep(addr) => {
                    self.stats.loads += 1;
                    let dep_ordered = matches!(pi, PInstr::LoadDep(_)) && self.hw.order_dep_loads;
                    let val = self.exec_load(cpu, addr, dep_ordered, sched);
                    self.record(cpu, Instr::Load { addr, val });
                    self.cpus[cpu].resume = Some(val);
                }
                PInstr::Store(addr, val) => {
                    self.stats.stores += 1;
                    match self.hw.stores {
                        StoreDiscipline::Immediate => self.apply_drain(cpu, addr, val),
                        StoreDiscipline::Fifo | StoreDiscipline::PerAddress => {
                            self.cpus[cpu].buffer.push(addr, val);
                            self.stats.note_occupancy(self.cpus[cpu].buffer.len());
                        }
                    }
                    self.record(cpu, Instr::Store { addr, val });
                    self.cpus[cpu].resume = Some(0);
                }
                PInstr::Cas(addr, expect, new) => {
                    self.stats.cas_ops += 1;
                    self.fp().fence = true;
                    // A CAS acts like a full fence: drain the CPU's own
                    // buffer before executing atomically…
                    for e in self.cpus[cpu].buffer.drain_all() {
                        self.stats.flushes += 1;
                        self.apply_drain(cpu, e.addr, e.val);
                    }
                    self.note_read(addr);
                    let ok = self.mem.cas(addr, expect, new);
                    if ok {
                        self.note_write(addr);
                    }
                    // …and synchronize with global memory: no later
                    // load on this CPU may observe anything older than
                    // the CAS point.
                    let seq = self.mem.seq();
                    self.cpus[cpu].buffer.raise_global_floor(seq);
                    trace::emit(EventKind::CasFence, addr as u64, ok as u64);
                    self.record(
                        cpu,
                        Instr::Cas {
                            addr,
                            expect,
                            new,
                            ok,
                        },
                    );
                    self.cpus[cpu].resume = Some(ok as Val);
                }
            },
        }
    }

    /// Run under `sched` until completion or `max_steps`.
    pub fn run(mut self, sched: &mut dyn Scheduler, max_steps: usize) -> RunResult {
        let mut steps = 0;
        loop {
            let actions = self.enabled();
            if actions.is_empty() {
                break;
            }
            if steps >= max_steps {
                self.flush_observations(sched);
                let final_mem = self.mem.snapshot();
                self.stats.steps = steps as u64;
                return RunResult {
                    trace: Trace::new(self.instrs).expect("recorded trace is well-formed"),
                    completed: false,
                    aborted: false,
                    steps,
                    footprints: self.footprints,
                    final_mem,
                    stats: self.stats,
                };
            }
            self.flush_observations(sched);
            let choice = {
                let _p = profile::enter("memsim.choose");
                sched.choose(&actions)
            };
            assert!(
                choice < actions.len(),
                "scheduler chose index {choice} of {} enabled actions",
                actions.len()
            );
            if sched.abort_run() {
                let final_mem = self.mem.snapshot();
                self.stats.steps = steps as u64;
                return RunResult {
                    trace: Trace::new(self.instrs).expect("recorded trace is well-formed"),
                    completed: false,
                    aborted: true,
                    steps,
                    footprints: self.footprints,
                    final_mem,
                    stats: self.stats,
                };
            }
            let cpu = match actions[choice] {
                Action::Exec { cpu } | Action::Drain { cpu, .. } => cpu,
                Action::ReadVersion { .. } => {
                    unreachable!("ReadVersion appears only in synthetic mid-load choice lists")
                }
            };
            self.footprints.push(Footprint::on(cpu));
            match actions[choice] {
                Action::Exec { cpu } => self.exec(cpu, sched),
                Action::Drain { cpu, idx } => {
                    let _p = profile::enter("memsim.drain");
                    self.stats.flushes += 1;
                    let e = self.cpus[cpu].buffer.take(idx);
                    trace::emit(EventKind::StoreDrain, e.addr as u64, e.val);
                    self.apply_drain(cpu, e.addr, e.val);
                }
                Action::ReadVersion { .. } => unreachable!(),
            }
            steps += 1;
        }
        self.flush_observations(sched);
        let final_mem = self.mem.snapshot();
        self.stats.steps = steps as u64;
        RunResult {
            trace: Trace::new(self.instrs).expect("recorded trace is well-formed"),
            completed: true,
            aborted: false,
            steps,
            footprints: self.footprints,
            final_mem,
            stats: self.stats,
        }
    }
}

/// Statistics of an exhaustive exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExploreOutcome {
    /// Number of complete schedules visited.
    pub runs: usize,
    /// Runs truncated by the step bound.
    pub truncated: usize,
    /// True if `visit` requested an early stop.
    pub stopped_early: bool,
    /// Machine-level totals accumulated across all visited runs.
    pub stats: MachineStats,
}

/// Exhaustively explore every schedule of the machine built by
/// `factory`, invoking `visit` on each run's result. `visit` returning
/// `true` stops the exploration (e.g. a violation was found).
///
/// The number of schedules is exponential in trace length — keep
/// programs litmus-sized (see the crate docs). Runs that exceed
/// `max_steps` are reported with `completed == false` and still
/// visited (their traces are valid prefixes).
pub fn explore(
    mut factory: impl FnMut() -> Machine,
    max_steps: usize,
    mut visit: impl FnMut(&RunResult) -> bool,
) -> ExploreOutcome {
    let mut cursor = ExhaustiveCursor::default();
    let mut out = ExploreOutcome::default();
    loop {
        cursor.rewind();
        let result = factory().run(&mut cursor, max_steps);
        out.stats.absorb(&result.stats);
        out.runs += 1;
        if !result.completed {
            out.truncated += 1;
        }
        if visit(&result) {
            out.stopped_early = true;
            return out;
        }
        if !cursor.advance() {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ScriptProcess;
    use crate::sched::{DirectedScheduler, RandomScheduler};
    use jungle_core::ids::{Var, X, Y};
    use jungle_core::op::{Command, Op};

    fn rd_op(var: Var, val: Val) -> Op {
        Op::Cmd(Command::Read { var, val })
    }

    fn wr_op(var: Var, val: Val) -> Op {
        Op::Cmd(Command::Write { var, val })
    }

    /// A process that writes `addr := val` as one non-transactional
    /// operation.
    fn writer(var: Var, addr: u32, val: Val) -> Box<dyn Process> {
        Box::new(ScriptProcess::new(vec![
            Step::Inv(wr_op(var, val)),
            Step::Instr(PInstr::Store(addr, val)),
            Step::Resp(wr_op(var, val)),
        ]))
    }

    /// A reader of two addresses as two operations; records observed
    /// values into the trace via backpatched responses.
    fn two_reads(v1: Var, a1: u32, v2: Var, a2: u32) -> Box<dyn Process> {
        use crate::process::FnProcess;
        let mut state = 0;
        Box::new(FnProcess::new(move |last| {
            state += 1;
            match state {
                1 => Step::Inv(rd_op(v1, 0)),
                2 => Step::Instr(PInstr::Load(a1)),
                3 => Step::Resp(rd_op(v1, last.unwrap())),
                4 => Step::Inv(rd_op(v2, 0)),
                5 => Step::Instr(PInstr::Load(a2)),
                6 => Step::Resp(rd_op(v2, last.unwrap())),
                _ => Step::Done,
            }
        }))
    }

    #[test]
    fn sequential_run_on_sc() {
        let m = Machine::new(HwModel::Sc, vec![writer(X, 0, 5)]);
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        assert_eq!(r.trace.ops().len(), 1);
    }

    #[test]
    fn store_buffering_invisible_on_sc() {
        // SB litmus: p0: x:=1; read y. p1: y:=1; read x.
        // Under SC at least one read sees 1.
        let factory = || {
            use crate::process::FnProcess;
            let mk = |wa: u32, ra: u32, wv: Var, rv: Var| {
                let mut st = 0;
                Box::new(FnProcess::new(move |last| {
                    st += 1;
                    match st {
                        1 => Step::Inv(wr_op(wv, 1)),
                        2 => Step::Instr(PInstr::Store(wa, 1)),
                        3 => Step::Resp(wr_op(wv, 1)),
                        4 => Step::Inv(rd_op(rv, 0)),
                        5 => Step::Instr(PInstr::Load(ra)),
                        6 => Step::Resp(rd_op(rv, last.unwrap())),
                        _ => Step::Done,
                    }
                })) as Box<dyn Process>
            };
            Machine::new(HwModel::Sc, vec![mk(0, 1, X, Y), mk(1, 0, Y, X)])
        };
        let mut both_zero = false;
        explore(factory, 64, |r| {
            let reads: Vec<Val> = r
                .trace
                .instrs()
                .iter()
                .filter_map(|i| match i.instr {
                    Instr::Load { val, .. } => Some(val),
                    _ => None,
                })
                .collect();
            if reads == vec![0, 0] {
                both_zero = true;
            }
            false
        });
        assert!(!both_zero, "SC must not exhibit store-buffering");
    }

    #[test]
    fn store_buffering_visible_on_tso() {
        // Same SB litmus on TSO: schedule both stores into the buffers,
        // run both loads, then drain. Directed schedule: exec p0 store
        // path, exec p1 store path, loads, drains.
        use crate::process::FnProcess;
        let mk = |wa: u32, ra: u32, wv: Var, rv: Var| {
            let mut st = 0;
            Box::new(FnProcess::new(move |last| {
                st += 1;
                match st {
                    1 => Step::Inv(wr_op(wv, 1)),
                    2 => Step::Instr(PInstr::Store(wa, 1)),
                    3 => Step::Resp(wr_op(wv, 1)),
                    4 => Step::Inv(rd_op(rv, 0)),
                    5 => Step::Instr(PInstr::Load(ra)),
                    6 => Step::Resp(rd_op(rv, last.unwrap())),
                    _ => Step::Done,
                }
            })) as Box<dyn Process>
        };
        let factory = || Machine::new(HwModel::Tso, vec![mk(0, 1, X, Y), mk(1, 0, Y, X)]);
        let mut both_zero = false;
        explore(factory, 64, |r| {
            let reads: Vec<Val> = r
                .trace
                .instrs()
                .iter()
                .filter_map(|i| match i.instr {
                    Instr::Load { val, .. } => Some(val),
                    _ => None,
                })
                .collect();
            if reads.len() == 2 && reads == vec![0, 0] {
                both_zero = true;
                return true;
            }
            false
        });
        assert!(both_zero, "TSO must exhibit store-buffering");
    }

    #[test]
    fn message_passing_reorders_on_pso_not_tso() {
        // MP litmus: p0: x:=1; y:=1. p1: read y; read x.
        // (y=1, x=0) requires write-write reordering: PSO yes, TSO no.
        let run_all = |hw: HwModel| {
            let factory = move || {
                Machine::new(
                    hw,
                    vec![
                        Box::new(ScriptProcess::new(vec![
                            Step::Inv(wr_op(X, 1)),
                            Step::Instr(PInstr::Store(0, 1)),
                            Step::Resp(wr_op(X, 1)),
                            Step::Inv(wr_op(Y, 1)),
                            Step::Instr(PInstr::Store(1, 1)),
                            Step::Resp(wr_op(Y, 1)),
                        ])) as Box<dyn Process>,
                        two_reads(Y, 1, X, 0),
                    ],
                )
            };
            let mut fresh_y_stale_x = false;
            explore(factory, 96, |r| {
                let reads: Vec<Val> = r
                    .trace
                    .instrs()
                    .iter()
                    .filter_map(|i| match i.instr {
                        Instr::Load { val, .. } => Some(val),
                        _ => None,
                    })
                    .collect();
                if reads == vec![1, 0] {
                    fresh_y_stale_x = true;
                    return true;
                }
                false
            });
            fresh_y_stale_x
        };
        assert!(!run_all(HwModel::Sc));
        assert!(!run_all(HwModel::Tso));
        assert!(run_all(HwModel::Pso));
    }

    #[test]
    fn store_forwarding_on_tso() {
        use crate::process::FnProcess;
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |last| {
            st += 1;
            match st {
                1 => Step::Inv(wr_op(X, 7)),
                2 => Step::Instr(PInstr::Store(0, 7)),
                3 => Step::Resp(wr_op(X, 7)),
                4 => Step::Inv(rd_op(X, 0)),
                5 => Step::Instr(PInstr::Load(0)),
                6 => {
                    assert_eq!(last, Some(7), "must forward from own buffer");
                    Step::Resp(rd_op(X, 7))
                }
                _ => Step::Done,
            }
        })) as Box<dyn Process>;
        // Schedule only Exec actions for cpu 0 (never drain first).
        let m = Machine::new(HwModel::Tso, vec![p]);
        let mut s = DirectedScheduler::new(vec![0; 32]);
        let r = m.run(&mut s, 100);
        assert!(r.completed);
    }

    #[test]
    fn cas_drains_buffer_and_is_atomic() {
        use crate::process::FnProcess;
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |last| {
            st += 1;
            match st {
                1 => Step::Inv(wr_op(X, 1)),
                2 => Step::Instr(PInstr::Store(0, 1)),
                3 => Step::Resp(wr_op(X, 1)),
                4 => Step::Inv(wr_op(Y, 2)),
                5 => Step::Instr(PInstr::Cas(1, 0, 2)),
                6 => {
                    assert_eq!(last, Some(1), "CAS should succeed");
                    Step::Resp(wr_op(Y, 2))
                }
                _ => Step::Done,
            }
        })) as Box<dyn Process>;
        let mut m = Machine::new(HwModel::Tso, vec![p]);
        m.poke(1, 0);
        let mut s = DirectedScheduler::new(vec![0; 32]);
        // After the run, both the buffered store and the CAS value must
        // be in memory.
        let r = m.run(&mut s, 100);
        assert!(r.completed);
    }

    #[test]
    fn run_bound_reports_incomplete() {
        use crate::process::FnProcess;
        // A process that spins forever on a CAS that can never succeed.
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |_| {
            st += 1;
            if st == 1 {
                Step::Inv(wr_op(X, 1))
            } else {
                Step::Instr(PInstr::Cas(0, 99, 1))
            }
        })) as Box<dyn Process>;
        let m = Machine::new(HwModel::Sc, vec![p]);
        let mut s = RandomScheduler::new(1);
        let r = m.run(&mut s, 50);
        assert!(!r.completed);
        assert_eq!(r.steps, 50);
        assert_eq!(r.trace.ops().len(), 1);
        assert!(!r.trace.ops()[0].complete);
    }

    #[test]
    fn run_stats_count_instrs_and_flushes() {
        // One store into a TSO buffer, drained by the scheduler, then a
        // CAS (which drains nothing further).
        use crate::process::FnProcess;
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |_| {
            st += 1;
            match st {
                1 => Step::Inv(wr_op(X, 1)),
                2 => Step::Instr(PInstr::Store(0, 1)),
                3 => Step::Resp(wr_op(X, 1)),
                4 => Step::Inv(rd_op(X, 0)),
                5 => Step::Instr(PInstr::Load(0)),
                6 => Step::Resp(rd_op(X, 1)),
                7 => Step::Inv(wr_op(Y, 2)),
                8 => Step::Instr(PInstr::Cas(1, 0, 2)),
                9 => Step::Resp(wr_op(Y, 2)),
                _ => Step::Done,
            }
        })) as Box<dyn Process>;
        let m = Machine::new(HwModel::Tso, vec![p]);
        let mut s = DirectedScheduler::new(vec![0; 64]);
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        assert_eq!(r.stats.stores, 1);
        assert_eq!(r.stats.loads, 1);
        assert_eq!(r.stats.cas_ops, 1);
        assert_eq!(r.stats.flushes, 1, "buffered store must flush exactly once");
        assert_eq!(r.stats.max_buffer_occupancy, 1);
        assert_eq!(r.stats.steps as usize, r.steps);
    }

    /// A reader of a single address as one operation, using `LoadDep`
    /// when `dep` is set.
    fn one_read(var: Var, addr: u32, dep: bool) -> Box<dyn Process> {
        use crate::process::FnProcess;
        let mut st = 0;
        Box::new(FnProcess::new(move |last| {
            st += 1;
            match st {
                1 => Step::Inv(rd_op(var, 0)),
                2 => Step::Instr(if dep {
                    PInstr::LoadDep(addr)
                } else {
                    PInstr::Load(addr)
                }),
                3 => Step::Resp(rd_op(var, last.unwrap())),
                _ => Step::Done,
            }
        }))
    }

    #[test]
    fn admissible_versions_respect_window_and_floors() {
        let mut m = Machine::new(HwModel::RMO, vec![one_read(X, 0, false)]);
        let s1 = m.mem.store(0, 1);
        let s2 = m.mem.store(0, 2);
        let s3 = m.mem.store(0, 3);
        let s4 = m.mem.store(0, 4);
        // RMO's window of 2: the newest three versions are admissible.
        assert_eq!(m.admissible_versions(0, 0), vec![(s4, 4), (s3, 3), (s2, 2)]);
        // Once the CPU observed version s3, version s2 is gone (its
        // overwriter s3 is at or below the floor).
        m.cpus[0].buffer.raise_addr_floor(0, s3);
        assert_eq!(m.admissible_versions(0, 0), vec![(s4, 4), (s3, 3)]);
        // A full fence pins the load to the current value.
        m.cpus[0].buffer.raise_global_floor(s4);
        assert_eq!(m.admissible_versions(0, 0), vec![(s4, 4)]);

        let mut m = Machine::new(HwModel::RELAXED, vec![one_read(X, 0, false)]);
        let s1b = m.mem.store(0, 1);
        assert_eq!(s1b, s1);
        let s2 = m.mem.store(0, 2);
        let s3 = m.mem.store(0, 3);
        let s4 = m.mem.store(0, 4);
        // Relaxed's window of 3 reaches one version further back.
        assert_eq!(
            m.admissible_versions(0, 0),
            vec![(s4, 4), (s3, 3), (s2, 2), (s1, 1)]
        );
    }

    #[test]
    fn stale_loads_only_on_windowed_models() {
        let run = |hw: HwModel| {
            let factory = move || Machine::new(hw, vec![writer(X, 0, 1), one_read(X, 0, false)]);
            explore(factory, 64, |_| false).stats.stale_loads
        };
        for hw in [
            HwModel::Sc,
            HwModel::TSO,
            HwModel::Tso,
            HwModel::PSO,
            HwModel::Pso,
        ] {
            assert_eq!(run(hw), 0, "{} must not read stale values", hw.name);
        }
        for hw in [HwModel::RMO, HwModel::ALPHA, HwModel::RELAXED] {
            assert!(run(hw) > 0, "{} must offer stale reads", hw.name);
        }
    }

    #[test]
    fn same_address_reads_are_monotone_under_relaxed() {
        // Coherence: a CPU that read x = 1 can never read x = 0 after,
        // even on the fully relaxed machine.
        let factory = || {
            Machine::new(
                HwModel::RELAXED,
                vec![writer(X, 0, 1), two_reads(X, 0, X, 0)],
            )
        };
        explore(factory, 96, |r| {
            let reads: Vec<Val> = r
                .trace
                .instrs()
                .iter()
                .filter(|i| i.proc == ProcId(1))
                .filter_map(|i| match i.instr {
                    Instr::Load { val, .. } => Some(val),
                    _ => None,
                })
                .collect();
            assert_ne!(reads, vec![1, 0], "monotone-read violation");
            false
        });
    }

    #[test]
    fn dep_loads_ordered_on_rmo_but_not_alpha() {
        let run = |hw: HwModel| {
            let factory = move || Machine::new(hw, vec![writer(X, 0, 1), one_read(X, 0, true)]);
            explore(factory, 64, |_| false).stats.stale_loads
        };
        // RMO orders dependent loads: a LoadDep always reads the
        // current value. Alpha does not.
        assert_eq!(run(HwModel::RMO), 0);
        assert!(run(HwModel::ALPHA) > 0);
        assert!(run(HwModel::RELAXED) > 0);
    }

    #[test]
    fn plain_tso_load_drains_own_store() {
        // Without forwarding, a load of an address with a pending own
        // store must first make the store globally visible.
        use crate::process::FnProcess;
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |last| {
            st += 1;
            match st {
                1 => Step::Inv(wr_op(X, 7)),
                2 => Step::Instr(PInstr::Store(0, 7)),
                3 => Step::Resp(wr_op(X, 7)),
                4 => Step::Inv(rd_op(X, 0)),
                5 => Step::Instr(PInstr::Load(0)),
                6 => {
                    assert_eq!(last, Some(7), "load must see own drained store");
                    Step::Resp(rd_op(X, 7))
                }
                _ => Step::Done,
            }
        })) as Box<dyn Process>;
        let m = Machine::new(HwModel::TSO, vec![p]);
        // Only ever pick Exec (never a scheduled drain): the forced
        // drain happens inside the load itself.
        let mut s = DirectedScheduler::new(vec![0; 32]);
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        assert_eq!(r.stats.flushes, 1);
        assert_eq!(r.final_mem, vec![(0, 7)]);
    }

    #[test]
    fn machine_stats_carry_model_name() {
        let m = Machine::new(HwModel::RMO, vec![writer(X, 0, 1)]);
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 100);
        assert_eq!(r.stats.model, "RMO");
    }

    #[test]
    fn explore_aggregates_stats() {
        let factory = || Machine::new(HwModel::Sc, vec![writer(X, 0, 1), writer(Y, 1, 2)]);
        let out = explore(factory, 64, |_| false);
        // Every run executes both stores.
        assert_eq!(out.stats.stores, 2 * out.runs as u64);
        assert!(out.stats.steps > 0);
    }

    #[test]
    fn footprints_follow_decisions() {
        // writer on SC (immediate stores): Inv, Store, Resp, Done —
        // four Exec decisions, no inner version picks.
        let m = Machine::new(HwModel::Sc, vec![writer(X, 0, 5)]);
        let mut s = DirectedScheduler::default();
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        assert_eq!(r.footprints.len(), 4);
        assert!(r.footprints.iter().all(|f| f.cpu == 0));
        assert!(r.footprints[0].inv && r.footprints[0].writes.is_empty());
        assert_eq!(r.footprints[1].writes, vec![0]);
        assert!(r.footprints[2].resp);
        assert_eq!(r.footprints[3], Footprint::on(0));
    }

    #[test]
    fn cas_footprint_is_fenced_read_write() {
        use crate::process::FnProcess;
        let mut st = 0;
        let p = Box::new(FnProcess::new(move |_| {
            st += 1;
            match st {
                1 => Step::Inv(wr_op(X, 1)),
                2 => Step::Instr(PInstr::Cas(0, 0, 1)),
                3 => Step::Resp(wr_op(X, 1)),
                _ => Step::Done,
            }
        })) as Box<dyn Process>;
        let m = Machine::new(HwModel::Tso, vec![p]);
        let mut s = DirectedScheduler::new(vec![0; 16]);
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        let f = &r.footprints[1];
        assert!(f.fence);
        assert_eq!(f.reads, vec![0]);
        assert_eq!(f.writes, vec![0], "successful CAS writes");
    }

    #[test]
    fn versioned_load_adds_inner_footprint() {
        let mut m = Machine::new(HwModel::RMO, vec![one_read(X, 0, false)]);
        m.mem.store(0, 1);
        m.mem.store(0, 2);
        let mut s = DirectedScheduler::new(vec![0; 16]);
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        // Inv, Load (outer), version pick (inner), Resp, Done.
        assert_eq!(r.footprints.len(), 5);
        assert_eq!(r.footprints[1].reads, vec![0]);
        assert_eq!(r.footprints[2].reads, vec![0]);
        assert!(!r.footprints[2].inv && !r.footprints[2].resp);
    }

    #[test]
    #[should_panic(expected = "scheduler chose index")]
    fn out_of_range_choice_panics() {
        struct Wild;
        impl Scheduler for Wild {
            fn choose(&mut self, _actions: &[Action]) -> usize {
                usize::MAX
            }
        }
        let m = Machine::new(HwModel::Sc, vec![writer(X, 0, 1)]);
        m.run(&mut Wild, 100);
    }

    #[test]
    fn abort_run_stops_without_completing() {
        struct AbortAfter {
            chooses: usize,
            limit: usize,
        }
        impl Scheduler for AbortAfter {
            fn choose(&mut self, _actions: &[Action]) -> usize {
                self.chooses += 1;
                0
            }
            fn abort_run(&self) -> bool {
                self.chooses > self.limit
            }
        }
        let m = Machine::new(HwModel::Sc, vec![writer(X, 0, 1)]);
        let mut s = AbortAfter {
            chooses: 0,
            limit: 2,
        };
        let r = m.run(&mut s, 100);
        assert!(!r.completed);
        assert!(r.aborted);
        assert_eq!(r.steps, 2);
        assert_eq!(r.footprints.len(), 2, "aborted decision records nothing");
    }

    #[test]
    fn observe_reports_every_footprint_in_order() {
        #[derive(Default)]
        struct Collect {
            fps: Vec<Footprint>,
        }
        impl Scheduler for Collect {
            fn choose(&mut self, _actions: &[Action]) -> usize {
                0
            }
            fn observe(&mut self, fp: &Footprint) {
                self.fps.push(fp.clone());
            }
        }
        let mut m = Machine::new(HwModel::RMO, vec![one_read(X, 0, false)]);
        m.mem.store(0, 1);
        m.mem.store(0, 2);
        let mut s = Collect::default();
        let r = m.run(&mut s, 100);
        assert!(r.completed);
        assert_eq!(s.fps, r.footprints);
    }

    #[test]
    fn explore_counts_runs() {
        // Two single-instruction processes → a handful of interleavings.
        let factory = || Machine::new(HwModel::Sc, vec![writer(X, 0, 1), writer(Y, 1, 2)]);
        let out = explore(factory, 64, |_| false);
        assert!(out.runs >= 2, "expected ≥2 interleavings, got {}", out.runs);
        assert_eq!(out.truncated, 0);
        assert!(!out.stopped_early);
    }
}
