//! Reactive processes: the programs the simulator runs.
//!
//! A [`Process`] is resumed with the result of its previous instruction
//! and yields its next [`Step`]. Memory instructions are issued as
//! *intents* ([`PInstr`]) — without result values, which the machine
//! fills in — while operation markers carry the
//! [`Op`](jungle_core::op::Op) they delimit (the invocation's `Op` may
//! contain placeholder values; it is backpatched when the response
//! supplies the final one).

use jungle_core::ids::Val;
use jungle_core::op::Op;
use jungle_isa::instr::Addr;

/// A hardware instruction intent (result values to be filled in by the
/// machine).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PInstr {
    /// Load from an address; the machine returns the observed value.
    Load(Addr),
    /// A load that is data/control **dependent** on an earlier load of
    /// the same process. On models whose execution semantics order
    /// dependent loads (`order_dep_loads`, e.g. RMO) it always observes
    /// the current value; on models that relax even dependent loads
    /// (Alpha, Relaxed) it behaves exactly like [`PInstr::Load`].
    LoadDep(Addr),
    /// Store a value to an address.
    Store(Addr, Val),
    /// Compare-and-swap `addr: expect → new`; the machine returns 1 if
    /// it succeeded and 0 otherwise.
    Cas(Addr, Val, Val),
}

/// The next step of a reactive process.
#[derive(Clone, Debug)]
pub enum Step {
    /// Issue a hardware instruction.
    Instr(PInstr),
    /// Begin an operation: emits the invocation marker `(., op)`.
    Inv(Op),
    /// End the current operation: emits `(/, op)` and backpatches the
    /// matching invocation with this (final) `Op`.
    Resp(Op),
    /// The process has finished.
    Done,
}

/// The result handed back to a process when it is resumed.
///
/// `None` after markers and at the first resumption; `Some(v)` carries a
/// load's observed value or a CAS's success flag (1/0). Stores complete
/// with `Some(0)` once *issued* (they may still sit in a store buffer).
pub type Resume = Option<Val>;

/// A reactive program run on one simulated CPU.
pub trait Process {
    /// Resume the process with the result of its previous step.
    fn next(&mut self, last: Resume) -> Step;
}

/// A process defined by a fixed script of steps, ignoring results.
/// Useful for litmus tests whose instruction stream is data-independent.
pub struct ScriptProcess {
    steps: std::vec::IntoIter<Step>,
}

impl ScriptProcess {
    /// Create a process that plays `steps` then finishes.
    pub fn new(steps: Vec<Step>) -> Self {
        ScriptProcess {
            steps: steps.into_iter(),
        }
    }
}

impl Process for ScriptProcess {
    fn next(&mut self, _last: Resume) -> Step {
        self.steps.next().unwrap_or(Step::Done)
    }
}

impl std::fmt::Debug for ScriptProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptProcess").finish_non_exhaustive()
    }
}

/// A process driven by a closure over an explicit state machine — the
/// general form used by the TM algorithm interpreters in `jungle-mc`.
pub struct FnProcess<F: FnMut(Resume) -> Step> {
    f: F,
}

impl<F: FnMut(Resume) -> Step> FnProcess<F> {
    /// Wrap a closure as a process.
    pub fn new(f: F) -> Self {
        FnProcess { f }
    }
}

impl<F: FnMut(Resume) -> Step> Process for FnProcess<F> {
    fn next(&mut self, last: Resume) -> Step {
        (self.f)(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_process_plays_and_finishes() {
        let mut p = ScriptProcess::new(vec![
            Step::Instr(PInstr::Store(0, 1)),
            Step::Instr(PInstr::Load(0)),
        ]);
        assert!(matches!(p.next(None), Step::Instr(PInstr::Store(0, 1))));
        assert!(matches!(p.next(Some(0)), Step::Instr(PInstr::Load(0))));
        assert!(matches!(p.next(Some(1)), Step::Done));
        assert!(matches!(p.next(None), Step::Done));
    }

    #[test]
    fn fn_process_sees_results() {
        let mut state = 0u32;
        let mut p = FnProcess::new(move |last| {
            state += 1;
            match state {
                1 => Step::Instr(PInstr::Load(7)),
                2 => {
                    assert_eq!(last, Some(42));
                    Step::Done
                }
                _ => Step::Done,
            }
        });
        assert!(matches!(p.next(None), Step::Instr(PInstr::Load(7))));
        assert!(matches!(p.next(Some(42)), Step::Done));
    }
}
