//! `SearchStats` unit tests on the paper's Figure 1–3 histories: the
//! traced checker entry points must report search counters that are
//! internally consistent and match the known structure of each figure.

use jungle_core::builder::HistoryBuilder;
use jungle_core::ids::{ProcId, X, Y};
use jungle_core::model::{Rmo, Sc};
use jungle_core::opacity::check_opacity_traced;
use jungle_core::sgla::check_sgla_traced;
use jungle_litmus::figures::all_litmus;

fn p(n: u32) -> ProcId {
    ProcId(n)
}

#[test]
fn fig1_allowed_outcome_stats() {
    // Figure 1, consistent outcome (y=1, x=1): 1 transaction + 2
    // non-transactional reads = 3 schedulable units; the first
    // serialization order already admits a witness.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), Y, 1);
    b.read(p(2), X, 1);
    let h = b.build().unwrap();
    let (v, s) = check_opacity_traced(&h, &Sc);
    assert!(v.is_opaque());
    assert_eq!(s.units, 3);
    assert_eq!(s.txn_orders, 1); // only one txn: one complete order
    assert_eq!(s.searches, 1);
    assert_eq!(s.peak_depth, 3); // a full witness was placed
    assert!(
        s.nodes >= 3,
        "at least one node per placed unit, got {}",
        s.nodes
    );
    assert!(s.wall_ns > 0, "traced entry point must measure wall time");
}

#[test]
fn fig1_forbidden_outcome_exhausts_search() {
    // Figure 1, the paper's headline outcome (y=1, x=0) under SC: the
    // checker must exhaust the search, visibly pruning and backtracking.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), Y, 1);
    b.read(p(2), X, 0);
    let h = b.build().unwrap();
    let (v, s) = check_opacity_traced(&h, &Sc);
    assert!(!v.is_opaque());
    assert!(
        s.prune_hits > 0,
        "rejection must come from the prefix checker"
    );
    assert!(s.peak_depth < s.units, "no full witness may be reached");

    // The same outcome is allowed under RMO: dropping the read-read
    // view edge lets the stale read of x serialize before the
    // transaction, so the search reaches full depth.
    let (v, s_rmo) = check_opacity_traced(&h, &Rmo);
    assert!(v.is_opaque());
    assert_eq!(s_rmo.peak_depth, s_rmo.units);
}

#[test]
fn fig2a_three_transactions_enumerate_orders() {
    // Figure 2(a) with the forbidden intermediate observation x=1: three
    // transactions, every serialization order consistent with real time
    // must be enumerated before rejecting.
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.write(p(1), X, 2);
    b.commit(p(1));
    b.start(p(2));
    b.read(p(2), X, 1);
    b.read(p(2), Y, 0);
    b.commit(p(2));
    b.start(p(1));
    b.write(p(1), Y, 2);
    b.commit(p(1));
    let h = b.build().unwrap();
    let (v, s) = check_opacity_traced(&h, &Sc);
    assert!(!v.is_opaque());
    assert_eq!(s.units, 3);
    // Real time totally orders the three transactions (each completes
    // before the next starts): exactly one complete order exists.
    assert_eq!(s.txn_orders, 1);
    assert!(s.backtracks > 0);
}

#[test]
fn fig2b_nontxn_only_message_passing() {
    // Figure 2(b): four non-transactional operations, no transactions.
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 1);
    b.write(p(1), Y, 1);
    b.read(p(2), Y, 1);
    b.read(p(2), X, 0);
    let h = b.build().unwrap();
    let (v, s) = check_opacity_traced(&h, &Sc);
    assert!(!v.is_opaque());
    assert_eq!(s.units, 4);
    assert_eq!(s.txn_orders, 1); // the single empty transaction order
    let (v, s) = check_opacity_traced(&h, &Rmo);
    assert!(v.is_opaque());
    assert_eq!(s.peak_depth, 4);
}

#[test]
fn fig3_units_and_depth() {
    // Figure 3(a) with v = 1 (opaque under SC): one non-transactional
    // write, two transactions, three non-transactional reads = 6 units.
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 1);
    b.start(p(1));
    b.read(p(2), Y, 1);
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), X, 1);
    b.start(p(3));
    b.commit(p(3));
    b.read(p(3), X, 1);
    let h = b.build().unwrap();
    let (v, s) = check_opacity_traced(&h, &Sc);
    assert!(v.is_opaque());
    assert_eq!(s.units, 6);
    assert_eq!(s.peak_depth, 6);
    assert!(s.nodes >= 6);
}

#[test]
fn sgla_traced_reports_stats_too() {
    let mut b = HistoryBuilder::new();
    b.start(p(1));
    b.write(p(1), X, 1);
    b.commit(p(1));
    b.read(p(2), X, 1);
    let h = b.build().unwrap();
    let (v, s) = check_sgla_traced(&h, &Sc);
    assert!(v.is_sgla());
    assert!(s.units > 0);
    assert!(s.wall_ns > 0);
    assert_eq!(s.searches, 1);
}

#[test]
fn all_litmus_outcomes_have_consistent_stats() {
    // Invariants that must hold for every bundled figure outcome: the
    // traced checker measures time, visits at least one node per placed
    // unit, and reaches full depth exactly when a witness exists.
    for litmus in all_litmus() {
        for o in &litmus.outcomes {
            let (v, s) = check_opacity_traced(&o.history, &Sc);
            let ctx = format!("{}/{}", litmus.name, o.label);
            assert!(s.units > 0, "{ctx}: no units");
            assert_eq!(s.searches, 1, "{ctx}");
            assert!(s.wall_ns > 0, "{ctx}: no wall time");
            assert!(s.peak_depth <= s.units, "{ctx}: depth overflow");
            assert!(s.nodes >= s.peak_depth, "{ctx}: fewer nodes than depth");
            if v.is_opaque() {
                assert_eq!(s.peak_depth, s.units, "{ctx}: witness without full depth");
            } else {
                assert!(s.txn_orders >= 1, "{ctx}: rejected without enumerating");
            }
        }
    }
}

#[test]
fn stats_absorb_accumulates_across_figures() {
    // Folding per-outcome stats (as the report binary does per figure)
    // sums counters and maxes depth.
    let litmus = &all_litmus()[0];
    let mut acc = jungle_obs::SearchStats::default();
    for o in &litmus.outcomes {
        let (_, s) = check_opacity_traced(&o.history, &Sc);
        acc.absorb(&s);
    }
    assert_eq!(acc.searches, litmus.outcomes.len() as u64);
    assert!(acc.units >= 3);
}
