//! Larger stress histories for the checker benchmarks.
//!
//! The figure litmus tests are tiny by design — a handful of operations
//! each — so they exercise correctness, not cost. The parallel checker
//! benchmarks (`jungle-bench`, experiment E5) need histories whose
//! serialization-order enumeration is wide enough that splitting it
//! across workers matters. These generators produce such histories
//! deterministically from their size parameters:
//!
//! * [`chain_history`] grows the *length* of the history while keeping
//!   every transaction real-time ordered — exactly one serialization
//!   order, so it measures the inner witness search (and the serial
//!   fallback for under-threshold inputs).
//! * [`wide_history`] grows the *width*: `p` fully concurrent
//!   transactions admit `p!` serialization orders, of which only those
//!   ending in a chosen transaction can justify the final
//!   non-transactional read. The checker must wade through the failing
//!   ones first.
//! * [`wide_unsat_history`] is the worst case: the trailing read
//!   observes a value nobody wrote, so *no* order succeeds and the
//!   checker exhausts all `p!` of them. This is the history where
//!   parallel prefix splitting pays off most.

use jungle_core::builder::HistoryBuilder;
use jungle_core::history::History;
use jungle_core::ids::{ProcId, Var};

/// A history with `k` committed transactions (2 ops each) and `k`
/// non-transactional reads, alternating across two processes. Every
/// transaction is real-time ordered after the previous one, so the
/// serialization order is unique and cost scales with history length
/// only.
pub fn chain_history(k: usize) -> History {
    let mut b = HistoryBuilder::new();
    let (p1, p2) = (ProcId(1), ProcId(2));
    for i in 0..k {
        let x = Var((i % 4) as u32);
        b.start(p1);
        b.write(p1, x, (i + 1) as u64);
        b.read(p1, x, (i + 1) as u64);
        b.commit(p1);
        b.read(p2, x, (i + 1) as u64);
    }
    b.build().expect("chain_history is well-formed")
}

/// `p` fully concurrent transactions (one per process) each writing its
/// own value to the single variable `x` and reading it back, followed
/// by a non-transactional read that observes transaction
/// `last_writer`'s value. All `p!` serialization orders are real-time
/// consistent, but only those placing `last_writer` last can justify
/// the final read — the history is opaque, with the witness buried
/// behind the failing orders the enumeration visits first.
///
/// # Panics
///
/// Panics if `last_writer >= p`.
pub fn wide_history(p: usize, last_writer: usize) -> History {
    assert!(last_writer < p, "last_writer must index one of the p txns");
    build_wide(p, (last_writer + 1) as u64)
}

/// Like [`wide_history`], but the trailing non-transactional read
/// observes a value no transaction wrote. No serialization order can
/// justify it, so the checker must exhaust all `p!` orders: the
/// worst-case (and most parallelizable) search.
pub fn wide_unsat_history(p: usize) -> History {
    build_wide(p, (p + 1_000) as u64)
}

fn build_wide(p: usize, observed: u64) -> History {
    assert!(p >= 1, "need at least one transaction");
    let x = Var(0);
    let mut b = HistoryBuilder::new();
    // All transactions start before any body op: pairwise concurrent.
    for i in 0..p {
        b.start(ProcId(i as u32 + 1));
    }
    for i in 0..p {
        let proc = ProcId(i as u32 + 1);
        b.write(proc, x, (i + 1) as u64);
        b.read(proc, x, (i + 1) as u64);
    }
    for i in 0..p {
        b.commit(ProcId(i as u32 + 1));
    }
    // The observer runs strictly after every commit.
    b.read(ProcId(p as u32 + 1), x, observed);
    b.build().expect("wide history is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::model::{Relaxed, Sc};
    use jungle_core::opacity::{check_opacity, check_opacity_par};
    use jungle_core::par::ParallelConfig;
    use jungle_core::sgla::check_sgla;

    fn all_parallel(threads: usize) -> ParallelConfig {
        ParallelConfig {
            threads,
            min_units: 0,
        }
    }

    #[test]
    fn chain_scales_and_stays_opaque() {
        for k in [1usize, 4, 8] {
            let h = chain_history(k);
            assert_eq!(h.len(), 5 * k);
            assert!(check_opacity(&h, &Sc).is_opaque(), "k={k}");
        }
    }

    #[test]
    fn wide_is_opaque_for_every_last_writer() {
        for w in 0..4 {
            let h = wide_history(4, w);
            assert_eq!(h.len(), 4 * 4 + 1);
            assert!(check_opacity(&h, &Sc).is_opaque(), "last_writer={w}");
            assert!(check_sgla(&h, &Sc).is_sgla(), "last_writer={w}");
        }
    }

    #[test]
    fn wide_unsat_fails_under_every_model() {
        let h = wide_unsat_history(4);
        assert!(!check_opacity(&h, &Sc).is_opaque());
        assert!(!check_opacity(&h, &Relaxed).is_opaque());
        assert!(!check_sgla(&h, &Sc).is_sgla());
    }

    #[test]
    fn parallel_agrees_on_stress_histories() {
        for h in [wide_history(4, 0), wide_unsat_history(4)] {
            let serial = check_opacity(&h, &Sc);
            for t in [1usize, 2, 4] {
                let par = check_opacity_par(&h, &Sc, &all_parallel(t));
                assert_eq!(par.is_opaque(), serial.is_opaque(), "threads={t}");
            }
        }
    }
}
