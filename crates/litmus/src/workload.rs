//! Parameterized workload generators for the benchmark harness.
//!
//! The `jungle-bench` experiments sweep these knobs: the fraction of
//! operations that are transactional, the read percentage, transaction
//! size, and the number of variables (contention). Workloads are
//! generated deterministically from a seed so every STM sees the same
//! operation stream.

use jungle_core::ids::Val;
use jungle_stm::api::{Ctx, TmAlgo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadCfg {
    /// Number of shared variables.
    pub n_vars: usize,
    /// Percent (0–100) of *operations* executed inside transactions.
    pub txn_pct: u32,
    /// Percent (0–100) of accesses that are reads.
    pub read_pct: u32,
    /// Operations per transaction.
    pub txn_len: usize,
    /// Total operation count per thread.
    pub ops: usize,
}

impl Default for WorkloadCfg {
    fn default() -> Self {
        WorkloadCfg {
            n_vars: 64,
            txn_pct: 50,
            read_pct: 90,
            txn_len: 4,
            ops: 10_000,
        }
    }
}

/// One pre-generated access.
#[derive(Clone, Copy, Debug)]
pub enum Access {
    /// Read of a variable.
    Read(usize),
    /// Write of a value to a variable.
    Write(usize, Val),
}

/// One pre-generated workload item.
#[derive(Clone, Debug)]
pub enum Item {
    /// A transaction of several accesses.
    Txn(Vec<Access>),
    /// A single non-transactional access.
    Nt(Access),
}

/// Generate a deterministic operation stream.
pub fn generate(cfg: &WorkloadCfg, seed: u64) -> Vec<Item> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    let mut remaining = cfg.ops;
    let mut fresh: Val = 1;
    while remaining > 0 {
        let access = |rng: &mut StdRng, fresh: &mut Val| {
            let var = rng.gen_range(0..cfg.n_vars);
            if rng.gen_range(0..100) < cfg.read_pct {
                Access::Read(var)
            } else {
                *fresh += 1;
                Access::Write(var, *fresh % 1_000_000)
            }
        };
        if rng.gen_range(0..100) < cfg.txn_pct {
            let k = cfg.txn_len.min(remaining);
            let ops = (0..k).map(|_| access(&mut rng, &mut fresh)).collect();
            items.push(Item::Txn(ops));
            remaining -= k;
        } else {
            items.push(Item::Nt(access(&mut rng, &mut fresh)));
            remaining -= 1;
        }
    }
    items
}

/// Execution statistics of one workload run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted transaction attempts (retried).
    pub aborts: u64,
    /// Non-transactional operations executed.
    pub nt_ops: u64,
    /// Checksum of read values (prevents dead-code elimination in
    /// benches).
    pub checksum: u64,
}

/// Execute a pre-generated workload on an STM with the given thread
/// context.
pub fn execute(tm: &dyn TmAlgo, cx: &mut Ctx, items: &[Item]) -> RunStats {
    let mut stats = RunStats::default();
    for item in items {
        match item {
            Item::Nt(Access::Read(v)) => {
                stats.checksum = stats.checksum.wrapping_add(tm.nt_read(cx, *v));
                stats.nt_ops += 1;
            }
            Item::Nt(Access::Write(v, val)) => {
                tm.nt_write(cx, *v, *val);
                stats.nt_ops += 1;
            }
            Item::Txn(ops) => loop {
                tm.txn_start(cx);
                let mut aborted = false;
                let mut sum = 0u64;
                for op in ops {
                    let res = match op {
                        Access::Read(v) => match tm.txn_read(cx, *v) {
                            Ok(val) => {
                                sum = sum.wrapping_add(val);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        },
                        Access::Write(v, val) => tm.txn_write(cx, *v, *val),
                    };
                    if res.is_err() {
                        aborted = true;
                        break;
                    }
                }
                if !aborted && tm.txn_commit(cx).is_ok() {
                    stats.commits += 1;
                    stats.checksum = stats.checksum.wrapping_add(sum);
                    break;
                }
                if aborted {
                    tm.txn_abort(cx);
                }
                stats.aborts += 1;
            },
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::ids::ProcId;
    use jungle_stm::{GlobalLockStm, StrongStm, Tl2Stm, VersionedStm, WriteTxnStm};

    #[test]
    fn generation_deterministic_and_sized() {
        let cfg = WorkloadCfg {
            ops: 100,
            ..WorkloadCfg::default()
        };
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 1);
        assert_eq!(a.len(), b.len());
        let total: usize = a
            .iter()
            .map(|i| match i {
                Item::Txn(ops) => ops.len(),
                Item::Nt(_) => 1,
            })
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn pure_nontxn_workload() {
        let cfg = WorkloadCfg {
            txn_pct: 0,
            ops: 50,
            ..WorkloadCfg::default()
        };
        let items = generate(&cfg, 2);
        assert!(items.iter().all(|i| matches!(i, Item::Nt(_))));
    }

    #[test]
    fn executes_on_every_stm() {
        let cfg = WorkloadCfg {
            n_vars: 8,
            ops: 500,
            ..WorkloadCfg::default()
        };
        let items = generate(&cfg, 3);
        let stms: Vec<Box<dyn TmAlgo>> = vec![
            Box::new(GlobalLockStm::new(cfg.n_vars)),
            Box::new(WriteTxnStm::new(cfg.n_vars)),
            Box::new(VersionedStm::new(cfg.n_vars)),
            Box::new(StrongStm::new(cfg.n_vars)),
            Box::new(StrongStm::new_optimized(cfg.n_vars)),
            Box::new(Tl2Stm::new(cfg.n_vars)),
        ];
        for tm in &stms {
            let mut cx = Ctx::new(ProcId(0), None);
            let stats = execute(tm.as_ref(), &mut cx, &items);
            assert!(stats.commits > 0, "{} committed nothing", tm.name());
            assert!(stats.nt_ops > 0);
            assert_eq!(stats.aborts, 0, "{} aborted single-threaded", tm.name());
        }
    }

    #[test]
    fn concurrent_execution_completes() {
        use std::sync::Arc;
        let cfg = WorkloadCfg {
            n_vars: 4,
            ops: 2_000,
            read_pct: 60,
            ..WorkloadCfg::default()
        };
        let tm = Arc::new(StrongStm::new(cfg.n_vars));
        let mut joins = Vec::new();
        for t in 0..3u32 {
            let tm = tm.clone();
            let items = generate(&cfg, u64::from(t));
            joins.push(std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                execute(tm.as_ref(), &mut cx, &items)
            }));
        }
        for j in joins {
            let stats = j.join().unwrap();
            assert!(stats.commits > 0);
        }
    }
}
