//! Running `jungle-mc` programs on the *real* STMs with OS threads.
//!
//! [`run_once`] executes a [`Program`] once and returns each thread's
//! read results; [`sample_outcomes`] repeats it to approximate the set
//! of reachable outcomes (each iteration on a fresh STM instance);
//! [`run_recorded`] additionally records the execution as a trace for
//! the `jungle-core` checkers.

use jungle_core::ids::ProcId;
use jungle_core::registry::ModelEntry;
use jungle_isa::trace::Trace;
use jungle_mc::program::{Program, Stmt, TxOp};
use jungle_mc::verify::{trace_satisfies, CheckKind};
use jungle_stm::api::{Ctx, TmAlgo};
use jungle_stm::recorder::Recorder;
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};

/// One thread's observable result: the values of its reads (inside
/// committed transactions and non-transactional), in program order.
pub type ThreadReads = Vec<u64>;

/// Execute one thread's program against the STM. Committing
/// transactions retry on abort; aborting transactions run their ops
/// once and abort.
fn run_thread(tm: &dyn TmAlgo, cx: &mut Ctx, prog: &[Stmt]) -> ThreadReads {
    let mut reads = Vec::new();
    for stmt in prog {
        match stmt {
            Stmt::NtRead(v) => reads.push(tm.nt_read(cx, v.0 as usize)),
            Stmt::NtWrite(v, val) => tm.nt_write(cx, v.0 as usize, *val),
            Stmt::TxnGuard { guard, expect, ops } => {
                // Retry loop: read the guard; run the body only when it
                // matches; commit either way.
                loop {
                    tm.txn_start(cx);
                    let mut attempt_reads = Vec::new();
                    let mut aborted = false;
                    match tm.txn_read(cx, guard.0 as usize) {
                        Err(_) => aborted = true,
                        Ok(g) => {
                            attempt_reads.push(g);
                            if g == *expect {
                                for op in ops {
                                    let res = match op {
                                        TxOp::Read(v) => match tm.txn_read(cx, v.0 as usize) {
                                            Ok(val) => {
                                                attempt_reads.push(val);
                                                Ok(())
                                            }
                                            Err(e) => Err(e),
                                        },
                                        TxOp::Write(v, val) => tm.txn_write(cx, v.0 as usize, *val),
                                    };
                                    if res.is_err() {
                                        aborted = true;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    if aborted {
                        tm.txn_abort(cx);
                        continue;
                    }
                    if tm.txn_commit(cx).is_ok() {
                        reads.extend(attempt_reads);
                        break;
                    }
                }
            }
            Stmt::Txn { ops, abort } => {
                if *abort {
                    tm.txn_start(cx);
                    let mut ok = true;
                    for op in ops {
                        let res = match op {
                            TxOp::Read(v) => tm.txn_read(cx, v.0 as usize).map(|_| ()),
                            TxOp::Write(v, val) => tm.txn_write(cx, v.0 as usize, *val),
                        };
                        if res.is_err() {
                            ok = false;
                            break;
                        }
                    }
                    let _ = ok;
                    tm.txn_abort(cx);
                } else {
                    // Retry loop; only the successful attempt's reads
                    // count.
                    loop {
                        tm.txn_start(cx);
                        let mut attempt_reads = Vec::new();
                        let mut aborted = false;
                        for op in ops {
                            match op {
                                TxOp::Read(v) => match tm.txn_read(cx, v.0 as usize) {
                                    Ok(val) => attempt_reads.push(val),
                                    Err(_) => {
                                        aborted = true;
                                        break;
                                    }
                                },
                                TxOp::Write(v, val) => {
                                    if tm.txn_write(cx, v.0 as usize, *val).is_err() {
                                        aborted = true;
                                        break;
                                    }
                                }
                            }
                        }
                        if aborted {
                            tm.txn_abort(cx);
                            continue;
                        }
                        if tm.txn_commit(cx).is_ok() {
                            reads.extend(attempt_reads);
                            break;
                        }
                    }
                }
            }
        }
    }
    reads
}

/// Run the program once on `tm`, one OS thread per program thread,
/// released simultaneously by a barrier.
pub fn run_once<A: TmAlgo + Send + Sync + 'static>(
    program: &Program,
    tm: &Arc<A>,
    rec: Option<Arc<Recorder>>,
) -> Vec<ThreadReads> {
    let n = program.n_threads();
    let barrier = Arc::new(Barrier::new(n));
    let mut joins = Vec::with_capacity(n);
    for (i, t) in program.0.iter().enumerate() {
        let tm = tm.clone();
        let stmts = t.0.clone();
        let barrier = barrier.clone();
        let rec = rec.clone();
        joins.push(std::thread::spawn(move || {
            let mut cx = Ctx::new(ProcId(i as u32), rec);
            barrier.wait();
            run_thread(tm.as_ref(), &mut cx, &stmts)
        }));
    }
    joins
        .into_iter()
        .map(|j| j.join().expect("program thread panicked"))
        .collect()
}

/// Run the program `iters` times (fresh STM each time) and count the
/// distinct outcomes.
pub fn sample_outcomes<A: TmAlgo + Send + Sync + 'static>(
    program: &Program,
    mk_tm: impl Fn() -> A,
    iters: usize,
) -> BTreeMap<Vec<ThreadReads>, usize> {
    let mut counts = BTreeMap::new();
    for _ in 0..iters {
        let tm = Arc::new(mk_tm());
        let out = run_once(program, &tm, None);
        *counts.entry(out).or_insert(0) += 1;
    }
    counts
}

/// Run the program once with history recording; returns the outcome and
/// the recorded trace.
pub fn run_recorded<A: TmAlgo + Send + Sync + 'static>(
    program: &Program,
    mk_tm: impl Fn() -> A,
) -> (Vec<ThreadReads>, Trace) {
    let tm = Arc::new(mk_tm());
    let rec = Arc::new(Recorder::new());
    let out = run_once(program, &tm, Some(rec.clone()));
    let trace = Arc::try_unwrap(rec)
        .expect("all threads joined")
        .into_trace()
        .expect("recorded trace is well-formed");
    (out, trace)
}

/// Run the program `iters` times on real OS threads with recording, and
/// judge each recorded trace for opacity parametrized by the registry
/// `entry`'s memory model. Returns `(outcome, opaque?)` pairs — the
/// real-STM counterpart of the simulator sweeps, sharing the same
/// unified model handle.
pub fn run_judged<A: TmAlgo + Send + Sync + 'static>(
    program: &Program,
    mk_tm: impl Fn() -> A,
    entry: &ModelEntry,
    iters: usize,
) -> Vec<(Vec<ThreadReads>, bool)> {
    (0..iters)
        .map(|_| {
            let (out, trace) = run_recorded(program, &mk_tm);
            let ok = trace_satisfies(&trace, entry.model, CheckKind::Opacity);
            (out, ok)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::fig1_program;
    use jungle_stm::{GlobalLockStm, StrongStm};

    #[test]
    fn fig1_on_strong_stm_never_shows_anomaly() {
        // The strong-atomicity STM forbids r1=1 ∧ r2=0 (it is opaque
        // parametrized by SC).
        let program = fig1_program();
        let outcomes = sample_outcomes(&program, || StrongStm::new(2), 300);
        for out in outcomes.keys() {
            let reads = &out[1]; // thread 2's [r1 (y), r2 (x)]
            assert!(
                !(reads[0] == 1 && reads[1] == 0),
                "strong STM exhibited the Figure 1 anomaly"
            );
        }
    }

    #[test]
    fn fig1_outcomes_are_subset_of_domain() {
        let program = fig1_program();
        let outcomes = sample_outcomes(&program, || GlobalLockStm::new(2), 100);
        for out in outcomes.keys() {
            for v in &out[1] {
                assert!(*v <= 1);
            }
        }
    }

    #[test]
    fn recorded_run_produces_complete_trace() {
        let program = fig1_program();
        let (_, trace) = run_recorded(&program, || GlobalLockStm::new(2));
        // 4 ops in the txn thread (start, 2 writes, commit) + 2 reads.
        assert_eq!(trace.ops().len(), 6);
        assert!(trace.ops().iter().all(|o| o.complete));
    }

    #[test]
    fn judged_runs_accept_strong_stm_under_sc_entry() {
        // The strong STM is SC-opaque on the Figure 1 program; every
        // real-thread run judged through the registry entry agrees.
        let program = fig1_program();
        let e = jungle_core::registry::entry("SC").unwrap();
        for (out, ok) in run_judged(&program, || StrongStm::new(2), e, 25) {
            assert!(ok, "non-opaque recorded trace for outcome {out:?}");
        }
    }
}
