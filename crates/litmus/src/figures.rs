//! The paper's figures as checkable litmus tests.
//!
//! Each litmus test is a family of histories indexed by observed values
//! together with the verdict the paper states (or that the definition
//! of parametrized opacity implies) for each memory model. The
//! `litmus_explorer` example prints the full table; the workspace test
//! suite asserts every verdict.

use jungle_core::builder::HistoryBuilder;
use jungle_core::history::History;
use jungle_core::ids::{ProcId, Val, X, Y, Z};
use jungle_core::model::{all_models, MemoryModel};
use jungle_core::opacity::check_opacity;
use jungle_core::registry::{registry, ModelEntry};

fn p(n: u32) -> ProcId {
    ProcId(n)
}

/// One litmus outcome: a history plus a short label for the observed
/// values.
pub struct Outcome {
    /// Label, e.g. `"r1=1 r2=0"`.
    pub label: String,
    /// The history realizing the outcome.
    pub history: History,
}

/// A named litmus test: a set of outcomes to judge per model.
pub struct Litmus {
    /// Identifier, e.g. `"fig1"`.
    pub name: &'static str,
    /// What the paper asks about this test.
    pub question: &'static str,
    /// The outcomes to judge.
    pub outcomes: Vec<Outcome>,
}

impl Litmus {
    /// Judge every outcome under every bundled memory model, returning
    /// `(outcome label, model name, opaque?)` triples.
    pub fn table(&self) -> Vec<(String, &'static str, bool)> {
        let mut rows = Vec::new();
        for o in &self.outcomes {
            for m in all_models() {
                rows.push((
                    o.label.clone(),
                    m.name(),
                    check_opacity(&o.history, m).is_opaque(),
                ));
            }
        }
        rows
    }

    /// Judge one outcome under one model.
    pub fn judge(&self, label: &str, model: &dyn MemoryModel) -> Option<bool> {
        self.outcomes
            .iter()
            .find(|o| o.label == label)
            .map(|o| check_opacity(&o.history, model).is_opaque())
    }

    /// Judge one outcome under a registry entry's memory model (the
    /// unified handle shared with the simulator and the model checker).
    pub fn judge_entry(&self, label: &str, entry: &ModelEntry) -> Option<bool> {
        self.judge(label, entry.model)
    }

    /// [`Litmus::table`] keyed by registry entries instead of raw
    /// models: `(outcome label, registry key, opaque?)` triples over the
    /// full executable zoo.
    pub fn table_registry(&self) -> Vec<(String, &'static str, bool)> {
        let mut rows = Vec::new();
        for o in &self.outcomes {
            for e in registry() {
                rows.push((
                    o.label.clone(),
                    e.key,
                    check_opacity(&o.history, e.model).is_opaque(),
                ));
            }
        }
        rows
    }
}

/// Figure 1: `atomic { x:=1; y:=1 }` ∥ `r1:=y; r2:=x` — can
/// `r1 = 1 ∧ r2 = 0`?
pub fn fig1() -> Litmus {
    let mk = |ry: Val, rx: Val| {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.commit(p(1));
        b.read(p(2), Y, ry);
        b.read(p(2), X, rx);
        Outcome {
            label: format!("r1={ry} r2={rx}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "fig1",
        question: "Can r1 = 1 and r2 = 0? It depends on the memory model.",
        outcomes: vec![mk(0, 0), mk(0, 1), mk(1, 0), mk(1, 1)],
    }
}

/// Figure 2(a): thread 1 runs `atomic { x:=1; x:=2 }` then
/// `atomic { y:=2 }`; thread 2 computes `z := x − y` transactionally.
/// Can `z < 0` (i.e. can the snapshot be `(x,y)` with `x < y`)?
pub fn fig2a() -> Litmus {
    let mk = |x_obs: Val, y_obs: Val| {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.write(p(1), X, 2);
        b.commit(p(1));
        b.start(p(2));
        b.read(p(2), X, x_obs);
        b.read(p(2), Y, y_obs);
        b.commit(p(2));
        b.start(p(1));
        b.write(p(1), Y, 2);
        b.commit(p(1));
        Outcome {
            label: format!("x={x_obs} y={y_obs}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "fig2a",
        question: "Can z = x − y be negative? (x=1 must never be seen; y=2 implies x=2.)",
        outcomes: vec![mk(2, 0), mk(1, 0), mk(1, 2), mk(0, 0), mk(0, 2), mk(2, 2)],
    }
}

/// Figure 2(b): purely non-transactional message passing —
/// `x:=1; y:=1` ∥ `r1:=y; r2:=x`. Can `r1 = 1 ∧ r2 = 0`?
pub fn fig2b() -> Litmus {
    let mk = |ry: Val, rx: Val| {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.write(p(1), Y, 1);
        b.read(p(2), Y, ry);
        b.read(p(2), X, rx);
        Outcome {
            label: format!("r1={ry} r2={rx}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "fig2b",
        question: "Purely non-transactional: the memory model alone decides.",
        outcomes: vec![mk(0, 0), mk(1, 1), mk(1, 0)],
    }
}

/// Figure 2(c): isolation — `z := x` non-transactionally while
/// `atomic { x:=1; x:=2 }` runs (can z = 1?), and a transaction reading
/// `z` twice around a non-transactional `z` write (can r1 ≠ r2?).
pub fn fig2c() -> Litmus {
    let leak = |zv: Val| {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.read(p(2), X, zv); // z := x
        b.write(p(1), X, 2);
        b.commit(p(1));
        Outcome {
            label: format!("z={zv}"),
            history: b.build().unwrap(),
        }
    };
    let torn = |r1: Val, r2: Val| {
        let mut b = HistoryBuilder::new();
        b.start(p(2));
        b.read(p(2), Z, r1);
        b.write(p(1), Z, 5);
        b.read(p(2), Z, r2);
        b.commit(p(2));
        Outcome {
            label: format!("r1={r1} r2={r2}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "fig2c",
        question: "Isolation: z ≠ 1, and r1 = r2, under every memory model.",
        outcomes: vec![
            leak(0),
            leak(1),
            leak(2),
            torn(0, 0),
            torn(5, 5),
            torn(0, 5),
        ],
    }
}

/// Figure 3(a): the history `h` with the free parameter `v` read by
/// `p2` (and `v' = 1` read by `p3`; see §3.3).
pub fn fig3(v: Val) -> History {
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 1); // 1
    b.start(p(1)); // 2
    b.read(p(2), Y, 1); // 3
    b.write(p(1), Y, 1); // 4
    b.commit(p(1)); // 5
    b.read(p(2), X, v); // 6
    b.start(p(3)); // 7
    b.commit(p(3)); // 8
    b.read(p(3), X, 1); // 9: v' = 1
    b.build().unwrap()
}

/// Figure 3(b): the sequential history `s1` (legal iff `v = v' = 1`).
pub fn fig3_s1(v: Val, vp: Val) -> History {
    let mut b = HistoryBuilder::new();
    b.write(p(1), X, 1);
    b.start(p(1));
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), Y, 1);
    b.read(p(2), X, v);
    b.start(p(3));
    b.commit(p(3));
    b.read(p(3), X, vp);
    b.build().unwrap()
}

/// Figure 3(c): the sequential history `s2` (legal iff `v = 0`,
/// `v' = 1`).
pub fn fig3_s2(v: Val, vp: Val) -> History {
    let mut b = HistoryBuilder::new();
    b.read(p(2), X, v);
    b.write(p(1), X, 1);
    b.start(p(1));
    b.write(p(1), Y, 1);
    b.commit(p(1));
    b.read(p(2), Y, 1);
    b.start(p(3));
    b.commit(p(3));
    b.read(p(3), X, vp);
    b.build().unwrap()
}

/// Store buffering (SB): `x:=1; r1:=y` ∥ `y:=1; r2:=x` — the classic
/// TSO witness, here purely non-transactional. `r1 = r2 = 0` needs
/// write→read reordering.
pub fn sb() -> Litmus {
    let mk = |r1: Val, r2: Val| {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.read(p(1), Y, r1);
        b.write(p(2), Y, 1);
        b.read(p(2), X, r2);
        Outcome {
            label: format!("r1={r1} r2={r2}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "sb",
        question: "Store buffering: r1 = r2 = 0 requires w→r reordering (TSO+).",
        outcomes: vec![mk(0, 0), mk(1, 0), mk(0, 1), mk(1, 1)],
    }
}

/// Load buffering (LB): `r1:=x; y:=1` ∥ `r2:=y; x:=1` — `r1 = r2 = 1`
/// needs read→write reordering.
pub fn lb() -> Litmus {
    let mk = |r1: Val, r2: Val| {
        let mut b = HistoryBuilder::new();
        b.read(p(1), X, r1);
        b.write(p(1), Y, 1);
        b.read(p(2), Y, r2);
        b.write(p(2), X, 1);
        Outcome {
            label: format!("r1={r1} r2={r2}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "lb",
        question: "Load buffering: r1 = r2 = 1 requires r→w reordering (RMO/Alpha).",
        outcomes: vec![mk(0, 0), mk(1, 1)],
    }
}

/// Independent reads of independent writes (IRIW): two writers, two
/// readers observing them in opposite orders. In the paper's
/// formalization each witness must legalize *all* reads jointly, so the
/// anomaly requires read→read reordering at the readers (store
/// atomicity itself is not relaxable in the framework).
pub fn iriw() -> Litmus {
    let mk = |a1: Val, a2: Val, b1: Val, b2: Val| {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.write(p(2), Y, 1);
        b.read(p(3), X, a1);
        b.read(p(3), Y, a2);
        b.read(p(4), Y, b1);
        b.read(p(4), X, b2);
        Outcome {
            label: format!("p3=({a1},{a2}) p4=({b1},{b2})"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "iriw",
        question: "IRIW: opposite observation orders at the two readers.",
        outcomes: vec![mk(1, 0, 1, 0), mk(1, 1, 1, 1), mk(0, 0, 0, 0)],
    }
}

/// SB with interposed same-address reads (`SB+rfi`): `x:=1; r1:=x;
/// r2:=y` ∥ `y:=1; r3:=y; r4:=x`. The weak outcome
/// `r1=r3=1, r2=r4=0` requires the forwarded reads (`r1`, `r3` read the
/// thread's own buffered store) to *not* order the later reads — it
/// separates plain formal TSO (read→read always kept: forbidden) from
/// TSO with visible store-to-load forwarding (allowed, as on x86).
/// This is the litmus-level witness for the registry's distinction
/// between the `"TSO"` and `"TSO+fwd"` entries — the pre-registry
/// simulator always forwarded, so it executed `TSO+fwd` while the
/// checker's plain `Tso` model forbade this shape.
pub fn sb_forwarding() -> Litmus {
    let mk = |r2: Val, r4: Val| {
        let mut b = HistoryBuilder::new();
        b.write(p(1), X, 1);
        b.read(p(1), X, 1); // r1: forwarded from the own store
        b.read(p(1), Y, r2);
        b.write(p(2), Y, 1);
        b.read(p(2), Y, 1); // r3: forwarded
        b.read(p(2), X, r4);
        Outcome {
            label: format!("r2={r2} r4={r4}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "sb+rfi",
        question: "SB with forwarded reads interposed: r2 = r4 = 0 separates TSO from TSO+fwd.",
        outcomes: vec![mk(0, 0), mk(1, 0), mk(1, 1)],
    }
}

/// The transactional counterpart of SB: both threads' accesses wrapped
/// in transactions — every anomaly vanishes under every model
/// (transactional semantics are model-independent).
pub fn sb_transactional() -> Litmus {
    let mk = |r1: Val, r2: Val| {
        let mut b = HistoryBuilder::new();
        b.start(p(1));
        b.write(p(1), X, 1);
        b.read(p(1), Y, r1);
        b.commit(p(1));
        b.start(p(2));
        b.write(p(2), Y, 1);
        b.read(p(2), X, r2);
        b.commit(p(2));
        Outcome {
            label: format!("r1={r1} r2={r2}"),
            history: b.build().unwrap(),
        }
    };
    Litmus {
        name: "sb-txn",
        question: "SB with both sides transactional: r1 = r2 = 0 forbidden everywhere.",
        outcomes: vec![mk(0, 0), mk(0, 1), mk(1, 1)],
    }
}

/// All litmus tests with per-model verdict tables (Figures 1–2 plus the
/// classic non-transactional shapes).
pub fn all_litmus() -> Vec<Litmus> {
    vec![
        fig1(),
        fig2a(),
        fig2b(),
        fig2c(),
        sb(),
        lb(),
        iriw(),
        sb_forwarding(),
        sb_transactional(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::legal::every_op_legal;
    use jungle_core::model::{Rmo, Sc};
    use jungle_core::spec::SpecRegistry;

    #[test]
    fn fig1_paper_verdicts() {
        let l = fig1();
        // The headline: allowed under RMO (Martin et al.), forbidden
        // under SC (Larus et al.).
        assert_eq!(l.judge("r1=1 r2=0", &Sc), Some(false));
        assert_eq!(l.judge("r1=1 r2=0", &Rmo), Some(true));
        assert_eq!(l.judge("r1=1 r2=1", &Sc), Some(true));
        assert_eq!(l.judge("r1=0 r2=0", &Sc), Some(true));
    }

    #[test]
    fn fig2a_paper_verdicts() {
        let l = fig2a();
        // z < 0 would need y observed fresher than x: forbidden.
        assert_eq!(l.judge("x=1 y=0", &Sc), Some(false)); // intermediate x
        assert_eq!(l.judge("x=1 y=2", &Sc), Some(false));
        assert_eq!(l.judge("x=0 y=2", &Sc), Some(false)); // y=2 ⟹ x=2
        assert_eq!(l.judge("x=2 y=0", &Sc), Some(true)); // z = 2
        assert_eq!(l.judge("x=0 y=0", &Sc), Some(false)); // T1a ≺ T2 in real time
    }

    #[test]
    fn fig2c_isolation_model_independent() {
        let l = fig2c();
        for m in all_models() {
            if m.name() == "Junk-SC" {
                continue; // havoc legitimately allows junk values
            }
            assert_eq!(
                l.judge("z=1", m),
                Some(false),
                "z=1 leaked under {}",
                m.name()
            );
            assert_eq!(
                l.judge("r1=0 r2=5", m),
                Some(false),
                "torn read under {}",
                m.name()
            );
            assert_eq!(l.judge("z=0", m), Some(true));
            assert_eq!(l.judge("r1=0 r2=0", m), Some(true));
        }
    }

    #[test]
    fn fig3_sequential_histories_legality() {
        let specs = SpecRegistry::registers();
        // s1 legal iff v = v' = 1.
        assert!(every_op_legal(&fig3_s1(1, 1), &specs));
        assert!(!every_op_legal(&fig3_s1(0, 1), &specs));
        assert!(!every_op_legal(&fig3_s1(1, 0), &specs));
        // s2 legal iff v = 0 and v' = 1.
        assert!(every_op_legal(&fig3_s2(0, 1), &specs));
        assert!(!every_op_legal(&fig3_s2(1, 1), &specs));
        assert!(!every_op_legal(&fig3_s2(0, 0), &specs));
    }

    #[test]
    fn fig3_s1_s2_respect_rt_order_of_h() {
        // "Note that s1 and s2 respect ≺h": both are permutations of h
        // whose order extends h's real-time order on the common ops.
        let h = fig3(1);
        let closure = h.rt_closure();
        for s in [fig3_s1(1, 1), fig3_s2(0, 1)] {
            // Map h's op ids to positions in s by (proc, op shape) — use
            // position of equal proc+op kinds; simpler: check the txn
            // order and the p1-write-before-txn constraints explicitly.
            let _ = &closure;
            assert_eq!(s.len(), h.len());
            assert!(s.is_sequential());
        }
    }

    #[test]
    fn classic_litmus_verdicts() {
        use jungle_core::model::{Alpha, Pso, Relaxed, Rmo, Tso};
        // SB: the weak outcome needs w→r reordering.
        let t = sb();
        assert_eq!(t.judge("r1=0 r2=0", &Sc), Some(false));
        assert_eq!(t.judge("r1=0 r2=0", &Tso), Some(true));
        assert_eq!(t.judge("r1=0 r2=0", &Pso), Some(true));
        assert_eq!(t.judge("r1=1 r2=1", &Sc), Some(true));

        // LB: the weak outcome needs r→w reordering — beyond TSO/PSO.
        let t = lb();
        assert_eq!(t.judge("r1=1 r2=1", &Sc), Some(false));
        assert_eq!(t.judge("r1=1 r2=1", &Tso), Some(false));
        assert_eq!(t.judge("r1=1 r2=1", &Pso), Some(false));
        assert_eq!(t.judge("r1=1 r2=1", &Rmo), Some(true));
        assert_eq!(t.judge("r1=1 r2=1", &Alpha), Some(true));
        assert_eq!(t.judge("r1=0 r2=0", &Sc), Some(true));

        // IRIW: opposite orders need read-read reordering at the readers.
        let t = iriw();
        assert_eq!(t.judge("p3=(1,0) p4=(1,0)", &Sc), Some(false));
        assert_eq!(t.judge("p3=(1,0) p4=(1,0)", &Tso), Some(false));
        assert_eq!(t.judge("p3=(1,0) p4=(1,0)", &Rmo), Some(true));
        assert_eq!(t.judge("p3=(1,1) p4=(1,1)", &Sc), Some(true));

        // Transactional SB: forbidden even under the fully relaxed model.
        let t = sb_transactional();
        assert_eq!(t.judge("r1=0 r2=0", &Relaxed), Some(false));
        assert_eq!(t.judge("r1=0 r2=0", &Alpha), Some(false));
        assert_eq!(t.judge("r1=0 r2=1", &Sc), Some(true));
    }

    #[test]
    fn sb_forwarding_separates_the_two_tsos() {
        use jungle_core::model::{Pso, Tso, TsoForwarding};
        let t = sb_forwarding();
        // The weak outcome: forbidden by plain formal TSO (read→read
        // kept), allowed once forwarded reads stop ordering later reads.
        assert_eq!(t.judge("r2=0 r4=0", &Sc), Some(false));
        assert_eq!(t.judge("r2=0 r4=0", &Tso), Some(false));
        assert_eq!(t.judge("r2=0 r4=0", &TsoForwarding), Some(true));
        assert_eq!(t.judge("r2=0 r4=0", &Pso), Some(false)); // plain PSO keeps r→r too
                                                             // The strong outcomes are fine everywhere.
        assert_eq!(t.judge("r2=1 r4=1", &Sc), Some(true));
        assert_eq!(t.judge("r2=1 r4=0", &Tso), Some(true));
        // Same verdicts through the registry facade.
        use jungle_core::registry::entry;
        assert_eq!(
            t.judge_entry("r2=0 r4=0", entry("TSO").unwrap()),
            Some(false)
        );
        assert_eq!(
            t.judge_entry("r2=0 r4=0", entry("TSO+fwd").unwrap()),
            Some(true)
        );
    }

    #[test]
    fn table_has_full_coverage() {
        for l in all_litmus() {
            let t = l.table();
            assert_eq!(t.len(), l.outcomes.len() * all_models().len());
            let tr = l.table_registry();
            assert_eq!(
                tr.len(),
                l.outcomes.len() * jungle_core::registry::registry().len()
            );
        }
    }
}
