//! The figures' scenarios as thread programs, shared between the
//! `jungle-mc` simulator and the real-STM [`runner`](crate::runner).

use jungle_core::ids::{X, Y};
use jungle_mc::program::{Program, Stmt, ThreadProg, TxOp};

/// Figure 1 as a program: one transaction writing `x` then `y`, one
/// thread reading `y` then `x` non-transactionally.
pub fn fig1_program() -> Program {
    Program(vec![
        ThreadProg(vec![Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 1)])]),
        ThreadProg(vec![Stmt::NtRead(Y), Stmt::NtRead(X)]),
    ])
}

/// Figure 2(b) as a program: purely non-transactional message passing.
pub fn fig2b_program() -> Program {
    Program(vec![
        ThreadProg(vec![Stmt::NtWrite(X, 1), Stmt::NtWrite(Y, 1)]),
        ThreadProg(vec![Stmt::NtRead(Y), Stmt::NtRead(X)]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_have_expected_shape() {
        assert_eq!(fig1_program().n_threads(), 2);
        assert_eq!(fig2b_program().vars().len(), 2);
    }
}
