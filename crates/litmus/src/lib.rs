//! # jungle-litmus — the paper's figures as executable litmus tests
//!
//! Every figure of the paper is materialized here as data plus its
//! expected verdicts:
//!
//! * [`figures`] — Figures 1, 2(a–c), 3 and 4 as histories/traces with
//!   the paper's allowed/forbidden outcomes per memory model, checkable
//!   via `jungle-core` (the `litmus_explorer` example prints the whole
//!   table).
//! * [`programs`] — the same scenarios as thread programs runnable both
//!   on the `jungle-mc` simulator and on the real `jungle-stm` STMs.
//! * [`runner`] — drives the real STMs with OS threads, collecting
//!   observed outcome frequencies and (optionally) recorded traces.
//! * [`workload`] — parameterized workload generators for the
//!   `jungle-bench` experiments (read/write mixes, transaction sizes,
//!   non-transactional fractions).
//! * [`stress`] — larger generated histories (long chains, wide fully
//!   concurrent transaction sets) sized for the parallel-checker
//!   benchmarks rather than figure-level correctness checks.

#![warn(missing_docs)]

pub mod figures;
pub mod programs;
pub mod runner;
pub mod stress;
pub mod workload;
