//! Online recording of real STM executions as traces.
//!
//! Checking a *real* concurrent execution against parametrized opacity
//! must not invent orderings that did not happen — so the recorder
//! captures each operation as an **interval**: [`Recorder::begin`]
//! grabs an invocation timestamp when the operation starts, and
//! [`Recorder::finish`] emits both the invocation and response events
//! once the operation completes and its observed values are known. The
//! result converts to a [`Trace`](jungle_isa::trace::Trace) of
//! invocation/response markers, and the paper's trace-correspondence
//! machinery decides whether *some* corresponding history satisfies
//! opacity/SGLA — the exact definition of a TM implementation
//! guaranteeing the property, sound against scheduling races by
//! construction.
//!
//! An operation that never produces a response (e.g. a TL2 read whose
//! validation fails, aborting the transaction) simply never calls
//! `finish`: per the paper's trace grammar the operation instance does
//! not exist, and the abort that follows is the next operation.
//!
//! Loss accounting audit: the recorder itself **never drops** events —
//! its buffer is unbounded and the only narrowing conversion
//! ([`Recorder::begin`]'s op-id allocation) is checked, panicking
//! rather than aliasing ids on overflow. Bounded buffering (with its
//! explicit block-vs-drop-with-exact-counter policy, surfaced through
//! `MonitorStats::events_dropped` in the metrics snapshot) lives in
//! the online [`tap`](crate::tap) instead.

use jungle_core::ids::{OpId, ProcId, Val, Var};
use jungle_core::op::{Command, Op};
use jungle_isa::instr::{Instr, InstrInstance};
use jungle_isa::trace::{Trace, TraceError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Handle for an operation in flight: carries its id and the timestamp
/// of its invocation.
#[derive(Clone, Copy, Debug)]
pub struct OpToken {
    id: u32,
    inv_seq: u64,
}

#[derive(Debug)]
struct Event {
    seq: u64,
    proc: ProcId,
    op: OpId,
    marker: Marker,
}

#[derive(Debug)]
enum Marker {
    Inv(Op),
    Resp(Op),
}

/// Concurrent interval recorder.
///
/// Timestamps come from lock-free atomic fetch-adds; only the event
/// push takes a mutex, which is off the measured path in every
/// experiment that cares (instrumentation-cost runs use no recorder).
#[derive(Debug, Default)]
pub struct Recorder {
    seq: AtomicU64,
    next_op: AtomicU64,
    events: Mutex<Vec<Event>>,
}

/// Build a read operation value.
pub fn rd_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Read { var, val })
}

/// Build a write operation value.
pub fn wr_op(var: Var, val: Val) -> Op {
    Op::Cmd(Command::Write { var, val })
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Mark the start of an operation; pass the token to
    /// [`Recorder::finish`] when it completes. Dropping the token
    /// without finishing erases the operation (it never responded).
    ///
    /// # Panics
    ///
    /// If more than `u32::MAX - 1` operations are begun: op ids are
    /// 32-bit, and silently wrapping would alias distinct operations
    /// in the resulting trace.
    pub fn begin(&self) -> OpToken {
        let raw = self.next_op.fetch_add(1, Ordering::SeqCst);
        let id = u32::try_from(raw)
            .ok()
            .and_then(|n| n.checked_add(1))
            .expect("Recorder: op id space (u32) exhausted");
        let inv_seq = self.seq.fetch_add(1, Ordering::SeqCst);
        OpToken { id, inv_seq }
    }

    /// Number of operations begun so far (including unfinished ones).
    pub fn ops_recorded(&self) -> u64 {
        self.next_op.load(Ordering::SeqCst)
    }

    /// Complete the operation `token` as `op` (with observed values
    /// filled in), emitting its invocation and response events.
    pub fn finish(&self, proc: ProcId, token: OpToken, op: Op) {
        let resp_seq = self.seq.fetch_add(1, Ordering::SeqCst);
        let mut events = self.events.lock().unwrap();
        events.push(Event {
            seq: token.inv_seq,
            proc,
            op: OpId(token.id),
            marker: Marker::Inv(op.clone()),
        });
        events.push(Event {
            seq: resp_seq,
            proc,
            op: OpId(token.id),
            marker: Marker::Resp(op),
        });
    }

    /// Record a zero-width operation at the current instant (begin +
    /// finish).
    pub fn instant(&self, proc: ProcId, op: Op) {
        let t = self.begin();
        self.finish(proc, t, op);
    }

    /// Number of recorded events (two per completed operation).
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().unwrap().is_empty()
    }

    /// Drain into a marker-only trace ordered by timestamp. Call after
    /// all worker threads have joined.
    pub fn into_trace(self) -> Result<Trace, TraceError> {
        let mut evs = self.events.into_inner().unwrap();
        evs.sort_by_key(|e| e.seq);
        let instrs = evs
            .into_iter()
            .map(|e| {
                let instr = match e.marker {
                    Marker::Inv(op) => Instr::Inv(op),
                    Marker::Resp(op) => Instr::Resp(op),
                };
                InstrInstance {
                    instr,
                    proc: e.proc,
                    op: e.op,
                }
            })
            .collect();
        Trace::new(instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::ids::X;

    #[test]
    fn interval_recording_roundtrips() {
        let r = Recorder::new();
        let p = ProcId(0);
        r.instant(p, Op::Start);
        let t = r.begin();
        r.finish(p, t, rd_op(X, 42));
        r.instant(p, Op::Commit);
        let trace = r.into_trace().unwrap();
        assert_eq!(trace.ops().len(), 3);
        assert!(trace.ops().iter().all(|o| o.complete));
        let h = trace.canonical_history().unwrap();
        assert!(h
            .ops()
            .iter()
            .any(|o| matches!(o.op, Op::Cmd(Command::Read { val: 42, .. }))));
    }

    #[test]
    fn unfinished_token_erases_operation() {
        let r = Recorder::new();
        let p = ProcId(0);
        r.instant(p, Op::Start);
        let _dropped = r.begin(); // a read that failed validation
        r.instant(p, Op::Abort);
        let trace = r.into_trace().unwrap();
        assert_eq!(trace.ops().len(), 2); // start + abort only
    }

    #[test]
    fn intervals_overlap_across_threads() {
        let r = std::sync::Arc::new(Recorder::new());
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let r = r.clone();
            joins.push(std::thread::spawn(move || {
                let p = ProcId(t);
                for i in 0..25 {
                    let tok = r.begin();
                    r.finish(p, tok, wr_op(X, u64::from(t * 100 + i)));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let r = std::sync::Arc::try_unwrap(r).unwrap();
        let trace = r.into_trace().unwrap();
        assert_eq!(trace.ops().len(), 100);
        assert!(trace.canonical_history().is_ok());
    }

    #[test]
    fn ops_recorded_counts_begins() {
        let r = Recorder::new();
        assert_eq!(r.ops_recorded(), 0);
        r.instant(ProcId(0), Op::Start);
        let _unfinished = r.begin();
        assert_eq!(r.ops_recorded(), 2); // finished + unfinished both count
        assert_eq!(r.len(), 2); // but only the finished op has events
    }

    #[test]
    fn empty_recorder() {
        let r = Recorder::new();
        assert!(r.is_empty());
        assert_eq!(r.into_trace().unwrap().ops().len(), 0);
    }
}
