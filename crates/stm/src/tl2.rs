//! A TL2-style STM (Dice, Shalev, Shavit — DISC'06): the
//! weak-atomicity baseline.
//!
//! TL2 guarantees opacity *between transactions* using a global version
//! clock and per-variable versioned write-locks, but its
//! non-transactional operations are plain loads and stores with **no
//! protocol at all** — mixing them with transactions on the same
//! variables yields no parametrized-opacity guarantee for any model
//! (the workspace's `privatization` example demonstrates an actual
//! violation). It exists here as the performance baseline the paper's
//! §6.1 discussion implies: what a TM costs when one gives up on
//! non-transactional guarantees entirely.

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::cell::Heap;
use crate::recorder::{rd_op, wr_op};
use jungle_core::ids::Var;
use jungle_core::op::Op;
use jungle_isa::tm::Instrumentation;
use std::sync::atomic::{AtomicU64, Ordering};

/// Version-lock encoding: `version << 1 | locked`.
fn locked(w: u64) -> bool {
    w & 1 == 1
}

fn version(w: u64) -> u64 {
    w >> 1
}

fn enc(version: u64, locked: bool) -> u64 {
    (version << 1) | u64::from(locked)
}

/// Spin budget when acquiring write locks at commit.
const LOCK_SPIN: usize = 64;

/// The TL2-style STM.
pub struct Tl2Stm {
    data: Heap,
    /// Per-variable version locks.
    vlocks: Heap,
    clock: AtomicU64,
}

impl Tl2Stm {
    /// An STM over `n_vars` word variables.
    pub fn new(n_vars: usize) -> Self {
        Tl2Stm {
            data: Heap::new(n_vars),
            vlocks: Heap::new(n_vars),
            clock: AtomicU64::new(0),
        }
    }

    fn rollback(&self, cx: &mut Ctx) {
        // Release any commit-time locks at their pre-lock version.
        for &var in &cx.locks {
            let w = self.vlocks.load(var);
            debug_assert!(locked(w));
            self.vlocks.store(var, enc(version(w), false));
        }
        cx.reset_txn();
    }
}

impl TmAlgo for Tl2Stm {
    fn name(&self) -> &'static str {
        "tl2"
    }

    fn instrumentation(&self) -> Instrumentation {
        // Plain non-transactional accesses — but unlike the Figure 6
        // family this buys no strong guarantee; see the module docs.
        Instrumentation::Uninstrumented
    }

    fn txn_start(&self, cx: &mut Ctx) {
        cx.reset_txn();
        cx.rv = self.clock.load(Ordering::SeqCst);
        if let Some(r) = cx.rec() {
            r.instant(cx.pid, Op::Start);
        }
    }

    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_reads.inc(cx.shard());
        }
        if let Some(v) = cx.ws_get(var) {
            if let (Some(r), Some(t)) = (cx.rec(), tok) {
                r.finish(cx.pid, t, rd_op(Var(var as u32), v));
            }
            return Ok(v);
        }
        // Sample lock, read data, revalidate.
        let v1 = self.vlocks.load(var);
        if locked(v1) || version(v1) > cx.rv {
            self.rollback(cx);
            return Err(Aborted);
        }
        let val = self.data.load(var);
        let v2 = self.vlocks.load(var);
        if v2 != v1 {
            self.rollback(cx);
            return Err(Aborted);
        }
        cx.readset.push((var, v1));
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), val));
        }
        Ok(val)
    }

    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_writes.inc(cx.shard());
        }
        cx.ws_put(var, val);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
        Ok(())
    }

    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        if cx.writeset.is_empty() {
            // Read-only transactions were validated as they went.
            cx.reset_txn();
            if let (Some(r), Some(t)) = (cx.rec(), tok) {
                r.finish(cx.pid, t, Op::Commit);
            }
            if let Some(m) = cx.met() {
                m.commits.inc(cx.shard());
            }
            return Ok(());
        }
        // Phase 1: lock the write set.
        for i in 0..cx.writeset.len() {
            let var = cx.writeset[i].0;
            let mut acquired = false;
            for _ in 0..LOCK_SPIN {
                let w = self.vlocks.load(var);
                if !locked(w) && self.vlocks.cas(var, w, enc(version(w), true)) {
                    if let Some(m) = cx.met() {
                        m.lock_acquisitions.inc(cx.shard());
                    }
                    cx.locks.push(var);
                    acquired = true;
                    break;
                }
                if let Some(m) = cx.met() {
                    m.lock_spins.inc(cx.shard());
                }
                std::hint::spin_loop();
            }
            if !acquired {
                self.rollback(cx);
                if let Some(m) = cx.met() {
                    m.aborts.inc(cx.shard());
                }
                return Err(Aborted);
            }
        }
        // Phase 2: increment the clock.
        let wv = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        // Phase 3: validate the read set.
        if wv > cx.rv + 1 {
            for i in 0..cx.readset.len() {
                let (var, v1) = cx.readset[i];
                let w = self.vlocks.load(var);
                let locked_by_me = cx.locks.contains(&var);
                if version(w) > cx.rv || (locked(w) && !locked_by_me) || version(w) != version(v1) {
                    self.rollback(cx);
                    if let Some(m) = cx.met() {
                        m.aborts.inc(cx.shard());
                    }
                    return Err(Aborted);
                }
            }
        }
        // Phase 4: publish and release with the new version.
        for i in 0..cx.writeset.len() {
            let (var, val) = cx.writeset[i];
            self.data.store(var, val);
        }
        for i in 0..cx.writeset.len() {
            let var = cx.writeset[i].0;
            self.vlocks.store(var, enc(wv, false));
        }
        cx.locks.clear();
        cx.reset_txn();
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Commit);
        }
        if let Some(m) = cx.met() {
            m.commits.inc(cx.shard());
        }
        Ok(())
    }

    fn txn_abort(&self, cx: &mut Ctx) {
        let tok = cx.rec().map(|r| r.begin());
        self.rollback(cx);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Abort);
        }
        if let Some(m) = cx.met() {
            m.aborts.inc(cx.shard());
        }
    }

    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        let v = self.data.load(var);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), v));
        }
        v
    }

    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        self.data.store(var, val);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use jungle_core::ids::ProcId;
    use std::sync::Arc;

    #[test]
    fn version_lock_encoding() {
        let w = enc(5, true);
        assert!(locked(w));
        assert_eq!(version(w), 5);
        let w = enc(9, false);
        assert!(!locked(w));
        assert_eq!(version(w), 9);
    }

    #[test]
    fn single_thread_txn() {
        let tm = Tl2Stm::new(2);
        let mut cx = Ctx::new(ProcId(0), None);
        let v = atomically(&tm, &mut cx, |tx| {
            tx.write(0, 5)?;
            let a = tx.read(0)?;
            tx.write(1, a * 2)?;
            Ok(a)
        });
        assert_eq!(v, 5);
        assert_eq!(tm.nt_read(&mut cx, 1), 10);
    }

    #[test]
    fn concurrent_counter() {
        let tm = Arc::new(Tl2Stm::new(1));
        let threads = 4;
        let per = 300u64;
        let mut joins = Vec::new();
        for t in 0..threads {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                for _ in 0..per {
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut cx = Ctx::new(ProcId(9), None);
        assert_eq!(tm.nt_read(&mut cx, 0), u64::from(threads) * per);
    }

    #[test]
    fn bank_transfer_invariant_between_txns() {
        // Transfers preserve the total; transactional snapshot reads
        // must always see a consistent total (opacity between
        // transactions).
        let tm = Arc::new(Tl2Stm::new(2));
        {
            let mut cx = Ctx::new(ProcId(0), None);
            tm.nt_write(&mut cx, 0, 500);
            tm.nt_write(&mut cx, 1, 500);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mover = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(1), None);
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    let amt = i % 100;
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        let a = tx.read(0)?;
                        let b = tx.read(1)?;
                        if a >= amt {
                            tx.write(0, a - amt)?;
                            tx.write(1, b + amt)?;
                        }
                        Ok(())
                    });
                }
            })
        };
        let mut cx = Ctx::new(ProcId(2), None);
        for _ in 0..2000 {
            let (a, b) = atomically(tm.as_ref(), &mut cx, |tx| Ok((tx.read(0)?, tx.read(1)?)));
            assert_eq!(a + b, 1000, "torn transactional snapshot");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        mover.join().unwrap();
    }

    #[test]
    fn aborted_reads_never_observed_by_user_code() {
        // Validation failures surface as retries; the closure's final
        // successful execution sees a consistent snapshot.
        let tm = Arc::new(Tl2Stm::new(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(0), None);
                let mut i = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        tx.write(0, i)?;
                        tx.write(1, i)
                    });
                }
            })
        };
        let mut cx = Ctx::new(ProcId(1), None);
        for _ in 0..2000 {
            let (a, b) = atomically(tm.as_ref(), &mut cx, |tx| Ok((tx.read(0)?, tx.read(1)?)));
            assert_eq!(a, b, "TL2 snapshot isolation violated");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        w.join().unwrap();
    }
}
