//! Encoding of typed values into the 64-bit cells of the shared heap.
//!
//! The paper (and the STMs here) operate on word-sized shared
//! variables; [`Word`] is the bridge that lets the typed
//! [`TVar`](crate::tvar::TVar) facade store any value with a faithful
//! 64-bit encoding.
//!
//! Note: [`VersionedStm`](crate::versioned::VersionedStm) steals the
//! upper 32 bits of every cell for `(pid, version)` metadata, so it can
//! only store values whose encodings fit 32 bits — the typed facade
//! checks this at runtime.

/// A value with a faithful encoding into a `u64` word.
pub trait Word: Copy {
    /// Encode into a word.
    fn to_word(self) -> u64;
    /// Decode from a word produced by [`Word::to_word`].
    fn from_word(w: u64) -> Self;
    /// Number of significant bits of the encoding (used to reject
    /// types too wide for the versioned STM's packed cells).
    const BITS: u32;
}

macro_rules! uint_word {
    ($($t:ty),*) => {$(
        impl Word for $t {
            fn to_word(self) -> u64 {
                self as u64
            }
            fn from_word(w: u64) -> Self {
                w as $t
            }
            const BITS: u32 = <$t>::BITS;
        }
    )*};
}

uint_word!(u8, u16, u32, u64, usize);

macro_rules! int_word {
    ($($t:ty => $u:ty),*) => {$(
        impl Word for $t {
            fn to_word(self) -> u64 {
                <$u>::from_ne_bytes(self.to_ne_bytes()) as u64
            }
            fn from_word(w: u64) -> Self {
                <$t>::from_ne_bytes((w as $u).to_ne_bytes())
            }
            const BITS: u32 = <$t>::BITS;
        }
    )*};
}

int_word!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl Word for bool {
    fn to_word(self) -> u64 {
        u64::from(self)
    }
    fn from_word(w: u64) -> Self {
        w != 0
    }
    const BITS: u32 = 1;
}

impl Word for f32 {
    fn to_word(self) -> u64 {
        u64::from(self.to_bits())
    }
    fn from_word(w: u64) -> Self {
        f32::from_bits(w as u32)
    }
    const BITS: u32 = 32;
}

impl Word for f64 {
    fn to_word(self) -> u64 {
        self.to_bits()
    }
    fn from_word(w: u64) -> Self {
        f64::from_bits(w)
    }
    const BITS: u32 = 64;
}

impl Word for char {
    fn to_word(self) -> u64 {
        u64::from(u32::from(self))
    }
    fn from_word(w: u64) -> Self {
        char::from_u32(w as u32).unwrap_or('\u{FFFD}')
    }
    const BITS: u32 = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<W: Word + PartialEq + std::fmt::Debug>(vals: &[W]) {
        for &v in vals {
            assert_eq!(W::from_word(v.to_word()), v);
        }
    }

    #[test]
    fn unsigned_roundtrip() {
        roundtrip(&[0u8, 1, u8::MAX]);
        roundtrip(&[0u16, u16::MAX]);
        roundtrip(&[0u32, u32::MAX]);
        roundtrip(&[0u64, u64::MAX, 0xDEAD_BEEF]);
    }

    #[test]
    fn signed_roundtrip() {
        roundtrip(&[0i8, -1, i8::MIN, i8::MAX]);
        roundtrip(&[0i32, -123456, i32::MIN, i32::MAX]);
        roundtrip(&[0i64, -1, i64::MIN, i64::MAX]);
    }

    #[test]
    fn float_bool_char_roundtrip() {
        roundtrip(&[0.0f32, -1.5, f32::INFINITY]);
        roundtrip(&[0.0f64, -2.25, f64::MAX]);
        roundtrip(&[true, false]);
        roundtrip(&['a', '🦀', '\0']);
        // NaN needs a bit-level check (NaN != NaN).
        assert!(f64::from_word(f64::NAN.to_word()).is_nan());
    }

    #[test]
    fn declared_bit_widths() {
        assert_eq!(<u8 as Word>::BITS, 8);
        assert_eq!(<bool as Word>::BITS, 1);
        assert_eq!(<f32 as Word>::BITS, 32);
        assert_eq!(<i64 as Word>::BITS, 64);
        assert_eq!(<char as Word>::BITS, 32);
    }
}
