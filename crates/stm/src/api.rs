//! The common STM interface: thread contexts, the object-safe
//! [`TmAlgo`] trait, and the [`atomically`] retry combinator.
//!
//! Transactional operations may fail with [`Aborted`] (conflict detected
//! by the pessimistic [`StrongStm`](crate::strong::StrongStm) or
//! validation failure in [`Tl2Stm`](crate::tl2::Tl2Stm)); `atomically`
//! rolls the transaction back and retries with randomized backoff. The
//! global-lock family never aborts spontaneously.

use crate::recorder::Recorder;
use crate::tap::{StmTap, TapOp};
use jungle_core::ids::ProcId;
use jungle_obs::trace::{self, EventKind};
use jungle_obs::TmMetrics;
use std::sync::Arc;

/// Marker error: the current transaction has been aborted and rolled
/// back; retry it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Aborted;

/// Per-thread context: identity, read/write sets, and per-algorithm
/// scratch state. One `Ctx` per thread, reused across transactions.
#[derive(Debug)]
pub struct Ctx {
    /// This thread's process id (also its CPU/slot id).
    pub pid: ProcId,
    /// Read set: `(var, word-as-loaded)`.
    pub readset: Vec<(usize, u64)>,
    /// Write set: `(var, value-to-write)`, insertion ordered.
    pub writeset: Vec<(usize, u64)>,
    /// Per-process version counter (versioned STM).
    pub version: u32,
    /// TL2 read version (snapshot of the global clock).
    pub rv: u64,
    /// Metadata slots this transaction holds exclusively (strong STM).
    pub locks: Vec<usize>,
    /// Metadata slots this transaction holds in shared mode (strong
    /// STM).
    pub shared: Vec<usize>,
    /// Optional history recorder.
    pub rec: Option<Arc<Recorder>>,
    /// Optional shared runtime metrics. `None` (the default) keeps
    /// every operation on the bare, uncounted path.
    pub metrics: Option<Arc<TmMetrics>>,
    /// Optional live event tap feeding the streaming monitor. `None`
    /// (the default) keeps operations on the unpublished path.
    pub tap: Option<Arc<StmTap>>,
    /// Scratch RNG state for backoff (xorshift).
    pub rng: u64,
    /// Committed transactions on this thread (via [`atomically`]).
    pub commits: u64,
    /// Aborted attempts on this thread (via [`atomically`]).
    pub aborts: u64,
}

impl Ctx {
    /// A context for thread `pid`, optionally recording its history.
    pub fn new(pid: ProcId, rec: Option<Arc<Recorder>>) -> Self {
        Ctx {
            pid,
            readset: Vec::new(),
            writeset: Vec::new(),
            version: 0,
            rv: 0,
            locks: Vec::new(),
            shared: Vec::new(),
            rec,
            metrics: None,
            tap: None,
            rng: 0x9E37_79B9_7F4A_7C15 ^ (u64::from(pid.0) << 17 | 1),
            commits: 0,
            aborts: 0,
        }
    }

    /// Attach a shared metrics block (builder style).
    pub fn with_metrics(mut self, metrics: Arc<TmMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attach a live event tap (builder style). Every subsequent
    /// begin/read/write/commit/abort on this context is published.
    pub fn with_tap(mut self, tap: Arc<StmTap>) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Publish `op` to the tap, if one is attached.
    #[inline]
    pub fn tap_publish(&self, op: TapOp) {
        if let Some(t) = &self.tap {
            t.publish(self.pid, op);
        }
    }

    /// Borrow the recorder, if recording is enabled.
    pub fn rec(&self) -> Option<&Recorder> {
        self.rec.as_deref()
    }

    /// Borrow the metrics block, if attached.
    #[inline]
    pub fn met(&self) -> Option<&TmMetrics> {
        self.metrics.as_deref()
    }

    /// This context's counter-shard hint (its process id).
    #[inline]
    pub fn shard(&self) -> usize {
        self.pid.0 as usize
    }

    /// Clear per-transaction state (sets and held locks lists).
    pub fn reset_txn(&mut self) {
        self.readset.clear();
        self.writeset.clear();
        self.locks.clear();
        self.shared.clear();
    }

    /// Look up the write set.
    pub fn ws_get(&self, var: usize) -> Option<u64> {
        self.writeset
            .iter()
            .rev()
            .find(|(v, _)| *v == var)
            .map(|(_, w)| *w)
    }

    /// Look up the read set.
    pub fn rs_get(&self, var: usize) -> Option<u64> {
        self.readset
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, w)| *w)
    }

    /// Insert or update a write-set entry.
    pub fn ws_put(&mut self, var: usize, val: u64) {
        match self.writeset.iter_mut().find(|(v, _)| *v == var) {
            Some(e) => e.1 = val,
            None => self.writeset.push((var, val)),
        }
    }

    /// Next pseudo-random number (xorshift64*), for backoff jitter.
    pub fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// An executable STM algorithm (object-safe).
///
/// Transactional calls must occur between a successful
/// [`TmAlgo::txn_start`] and a [`TmAlgo::txn_commit`] /
/// [`TmAlgo::txn_abort`]; non-transactional calls must occur outside.
/// On [`Aborted`], the algorithm has already rolled back and released
/// everything — the caller just retries.
pub trait TmAlgo: Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// The instrumentation class of the non-transactional operations.
    fn instrumentation(&self) -> jungle_isa::tm::Instrumentation;

    /// Begin a transaction.
    fn txn_start(&self, cx: &mut Ctx);

    /// Transactional read.
    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted>;

    /// Transactional write (buffered until commit).
    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted>;

    /// Attempt to commit. On `Err(Aborted)` the transaction has been
    /// rolled back.
    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted>;

    /// Abort and roll back the running transaction.
    fn txn_abort(&self, cx: &mut Ctx);

    /// Non-transactional read.
    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64;

    /// Non-transactional write.
    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64);
}

/// Transaction handle passed to the [`atomically`] closure.
pub struct Tx<'a> {
    tm: &'a dyn TmAlgo,
    cx: &'a mut Ctx,
}

impl<'a> Tx<'a> {
    /// Read variable `var`.
    pub fn read(&mut self, var: usize) -> Result<u64, Aborted> {
        let val = self.tm.txn_read(self.cx, var)?;
        self.cx.tap_publish(TapOp::Read {
            var: var as u64,
            val,
        });
        Ok(val)
    }

    /// Write `val` to variable `var`.
    pub fn write(&mut self, var: usize, val: u64) -> Result<(), Aborted> {
        self.tm.txn_write(self.cx, var, val)?;
        self.cx.tap_publish(TapOp::Write {
            var: var as u64,
            val,
        });
        Ok(())
    }

    /// This thread's process id.
    pub fn pid(&self) -> ProcId {
        self.cx.pid
    }
}

/// Run `body` as a transaction, retrying on abort with randomized
/// exponential backoff. Returns the closure's result after a successful
/// commit.
pub fn atomically<R>(
    tm: &dyn TmAlgo,
    cx: &mut Ctx,
    mut body: impl FnMut(&mut Tx<'_>) -> Result<R, Aborted>,
) -> R {
    let mut attempt = 0u32;
    let pid = u64::from(cx.pid.0);
    loop {
        trace::emit(EventKind::TxnBegin, pid, u64::from(attempt));
        // Tap ordering: `Begin` goes out *before* the algorithm starts
        // and `Commit`/`Abort` *after* it finishes, so the ring's
        // arrival order under-approximates the true real-time order
        // (see the `tap` module docs).
        cx.tap_publish(TapOp::Begin);
        tm.txn_start(cx);
        let out = {
            let mut tx = Tx { tm, cx };
            body(&mut tx)
        };
        match out {
            Ok(r) => {
                if tm.txn_commit(cx).is_ok() {
                    cx.commits += 1;
                    trace::emit(EventKind::TxnCommit, pid, u64::from(attempt));
                    if let Some(t) = &cx.tap {
                        t.publish_commit(cx.pid);
                    }
                    return r;
                }
            }
            Err(Aborted) => {
                // The algorithm rolled back when it raised the abort;
                // make sure boundary bookkeeping is closed too.
                tm.txn_abort(cx);
            }
        }
        cx.aborts += 1;
        trace::emit(EventKind::TxnAbort, pid, u64::from(attempt));
        cx.tap_publish(TapOp::Abort);
        attempt = attempt.saturating_add(1);
        backoff(cx, attempt);
    }
}

fn backoff(cx: &mut Ctx, attempt: u32) {
    let spins = 1u64 << attempt.min(10);
    let jitter = cx.next_rand() % spins.max(1);
    for _ in 0..(spins + jitter) {
        std::hint::spin_loop();
    }
    if attempt > 10 {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_sets() {
        let mut cx = Ctx::new(ProcId(0), None);
        assert_eq!(cx.ws_get(3), None);
        cx.ws_put(3, 7);
        cx.ws_put(3, 9);
        assert_eq!(cx.ws_get(3), Some(9));
        assert_eq!(cx.writeset.len(), 1);
        cx.readset.push((1, 5));
        assert_eq!(cx.rs_get(1), Some(5));
        cx.reset_txn();
        assert!(cx.readset.is_empty() && cx.writeset.is_empty());
    }

    #[test]
    fn metrics_count_commits_and_nt_classes() {
        use crate::global_lock::GlobalLockStm;
        let tm = GlobalLockStm::new(2);
        let metrics = Arc::new(TmMetrics::new());
        let mut cx = Ctx::new(ProcId(0), None).with_metrics(metrics.clone());
        atomically(&tm, &mut cx, |tx| {
            tx.write(0, 1)?;
            tx.read(1)
        });
        tm.nt_read(&mut cx, 0);
        tm.nt_write(&mut cx, 1, 9);
        let s = metrics.snapshot();
        assert_eq!(s.commits, 1);
        assert_eq!(s.aborts, 0);
        assert_eq!(s.txn_reads, 1);
        assert_eq!(s.txn_writes, 1);
        assert_eq!(s.lock_acquisitions, 1);
        assert_eq!(s.nontxn_uninstrumented, 2);
        assert_eq!(s.nontxn_instrumented, 0);
    }

    #[test]
    fn no_metrics_means_no_counting_path() {
        use crate::global_lock::GlobalLockStm;
        let tm = GlobalLockStm::new(1);
        let mut cx = Ctx::new(ProcId(0), None);
        assert!(cx.met().is_none());
        atomically(&tm, &mut cx, |tx| tx.write(0, 1));
        assert_eq!(cx.commits, 1); // local bookkeeping still works
    }

    #[test]
    fn rng_varies_by_pid_and_advances() {
        let mut a = Ctx::new(ProcId(0), None);
        let mut b = Ctx::new(ProcId(1), None);
        assert_ne!(a.next_rand(), b.next_rand());
        let x = a.next_rand();
        let y = a.next_rand();
        assert_ne!(x, y);
    }
}
