//! # jungle-stm — executable software transactional memories
//!
//! Where `jungle-mc` interprets the paper's TM algorithms on a simulated
//! multiprocessor, this crate runs them *for real*: five STM
//! implementations over a shared heap of `AtomicU64` cells, exercised by
//! actual threads, with an optional [`recorder::Recorder`] that captures
//! the execution as a `jungle-core` history for online opacity/SGLA
//! checking, and an optional live [`tap::StmTap`] that streams every
//! transactional operation into a bounded ring for the
//! `jungle-monitor` crate. The implementations reproduce the paper's
//! design points:
//!
//! | STM | paper artifact | non-txn reads | non-txn writes |
//! |---|---|---|---|
//! | [`GlobalLockStm`] | Fig. 6 / Thm 3, 7 | plain load | plain store |
//! | [`WriteTxnStm`] | Thm 4 | plain load | lock + store + unlock |
//! | [`VersionedStm`] | Thm 5 | plain load | single packed store |
//! | [`StrongStm`] | §6.1 (Shpeisman et al.) | record check (or plain when `optimized_reads`) | ownership acquisition |
//! | [`Tl2Stm`] | baseline weak-atomicity STM | plain load (**unsafe mix**) | plain store (**unsafe mix**) |
//!
//! All five implement the object-safe [`TmAlgo`] trait; user code goes
//! through [`atomically`] (retry-on-abort) or the typed
//! [`tvar::TVarSpace`] facade.
//!
//! Memory-ordering note: the implementations use `SeqCst` throughout.
//! The paper's subject is the *programmer-visible* model of
//! non-transactional operations relative to transactions, which these
//! STMs establish with their instrumentation protocols; relaxing the
//! internal orderings is an optimization orthogonal to the reproduction
//! and is deliberately not attempted.

#![warn(missing_docs)]

pub mod api;
pub mod cell;
pub mod collections;
pub mod global_lock;
pub mod recorder;
pub mod strong;
pub mod tap;
pub mod tl2;
pub mod tvar;
pub mod versioned;
pub mod word;
pub mod write_txn;

pub use api::{atomically, Aborted, Ctx, TmAlgo, Tx};
pub use cell::Heap;
pub use collections::{QueueState, TArray, TCounter, TQueue};
pub use global_lock::GlobalLockStm;
pub use jungle_obs::{TmMetrics, TmSnapshot};
pub use recorder::Recorder;
pub use strong::StrongStm;
pub use tap::{StmTap, TapEvent, TapOp};
pub use tl2::Tl2Stm;
pub use tvar::{TVar, TVarSpace};
pub use versioned::VersionedStm;
pub use word::Word;
pub use write_txn::WriteTxnStm;
