//! Theorem 4's STM: non-transactional writes as one-write transactions.
//!
//! Identical to the Figure 6 global-lock STM except that a
//! non-transactional write acquires the global lock, stores, and
//! releases — "treating every non-transactional write as a transaction
//! in itself". Reads remain plain loads, so the STM guarantees opacity
//! parametrized by any `M ∉ Mrr`. The cost (measured by
//! `jungle-bench`): a non-transactional write spins on the global lock
//! and is *unbounded* — the motivation for Theorem 5's constant-time
//! scheme.

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::global_lock::{Fig6Core, RawCodec};
use crate::recorder::wr_op;
use jungle_core::ids::Var;
use jungle_isa::tm::Instrumentation;

/// The Theorem 4 STM.
pub struct WriteTxnStm {
    core: Fig6Core<RawCodec>,
}

impl WriteTxnStm {
    /// An STM over `n_vars` word variables.
    pub fn new(n_vars: usize) -> Self {
        WriteTxnStm {
            core: Fig6Core::new(n_vars, RawCodec),
        }
    }
}

impl TmAlgo for WriteTxnStm {
    fn name(&self) -> &'static str {
        "write-txn"
    }

    fn instrumentation(&self) -> Instrumentation {
        Instrumentation::UnboundedWrites
    }

    fn txn_start(&self, cx: &mut Ctx) {
        self.core.txn_start(cx);
    }

    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted> {
        Ok(self.core.txn_read(cx, var))
    }

    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted> {
        self.core.txn_write(cx, var, val);
        Ok(())
    }

    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted> {
        self.core.txn_commit(cx);
        if let Some(m) = cx.met() {
            m.commits.inc(cx.shard());
        }
        Ok(())
    }

    fn txn_abort(&self, cx: &mut Ctx) {
        self.core.txn_abort(cx);
        if let Some(m) = cx.met() {
            m.aborts.inc(cx.shard());
        }
    }

    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        self.core.nt_read(cx, var)
    }

    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        if let Some(m) = cx.met() {
            m.nontxn_instrumented.inc(cx.shard());
        }
        let tok = cx.rec().map(|r| r.begin());
        self.core.acquire(cx);
        self.core.heap.store(var, val);
        self.core.release();
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use jungle_core::ids::ProcId;

    #[test]
    fn nt_write_respects_running_txn() {
        // A non-transactional write cannot land in the middle of a
        // transaction's commit: it waits for the lock.
        use std::sync::Arc;
        let tm = Arc::new(WriteTxnStm::new(2));
        let tm2 = tm.clone();
        let writer = std::thread::spawn(move || {
            let mut cx = Ctx::new(ProcId(1), None);
            for i in 0..500 {
                tm2.nt_write(&mut cx, 0, i);
                tm2.nt_write(&mut cx, 1, i);
            }
        });
        let mut cx = Ctx::new(ProcId(0), None);
        for _ in 0..500 {
            let (a, b) = atomically(tm.as_ref(), &mut cx, |tx| Ok((tx.read(0)?, tx.read(1)?)));
            // Both variables written under the lock by the same loop
            // iteration or a mix of adjacent ones; values never exceed
            // 500 and reads see committed values only.
            assert!(a < 500 && b < 500);
        }
        writer.join().unwrap();
    }

    #[test]
    fn basic_txn_path_unchanged() {
        let tm = WriteTxnStm::new(2);
        let mut cx = Ctx::new(ProcId(0), None);
        atomically(&tm, &mut cx, |tx| tx.write(0, 3));
        assert_eq!(tm.nt_read(&mut cx, 0), 3);
        assert_eq!(tm.instrumentation(), Instrumentation::UnboundedWrites);
    }
}
