//! Typed transactional variables over any [`TmAlgo`].
//!
//! [`TVarSpace`] owns an STM instance and hands out typed [`TVar`]
//! handles; [`TVarThread::atomically`] runs a closure transactionally
//! with typed reads and writes. This is the downstream-facing API the
//! workspace examples use.
//!
//! ```
//! use jungle_stm::{GlobalLockStm, TVarSpace};
//!
//! let space = TVarSpace::new(GlobalLockStm::new(16));
//! let balance = space.tvar::<u64>(0);
//! let flag = space.tvar::<bool>(1);
//!
//! let mut th = space.thread(0);
//! th.atomically(|tx| {
//!     tx.write(&balance, 100u64)?;
//!     tx.write(&flag, true)
//! });
//! assert_eq!(th.read_now(&balance), 100);
//! assert!(th.read_now(&flag));
//! ```

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::recorder::Recorder;
use crate::word::Word;
use jungle_core::ids::ProcId;
use std::marker::PhantomData;
use std::sync::Arc;

/// A typed handle to one shared variable (slot) of a [`TVarSpace`].
#[derive(Debug)]
pub struct TVar<W: Word> {
    slot: usize,
    _ty: PhantomData<fn() -> W>,
}

impl<W: Word> Clone for TVar<W> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<W: Word> Copy for TVar<W> {}

impl<W: Word> TVar<W> {
    /// The underlying heap slot.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

/// A shared space of typed transactional variables backed by an STM
/// algorithm. Cheap to clone (shares the STM and recorder).
pub struct TVarSpace<A: TmAlgo> {
    tm: Arc<A>,
    recorder: Option<Arc<Recorder>>,
}

impl<A: TmAlgo> Clone for TVarSpace<A> {
    fn clone(&self) -> Self {
        TVarSpace {
            tm: self.tm.clone(),
            recorder: self.recorder.clone(),
        }
    }
}

impl<A: TmAlgo> TVarSpace<A> {
    /// Wrap an STM instance.
    pub fn new(tm: A) -> Self {
        TVarSpace {
            tm: Arc::new(tm),
            recorder: None,
        }
    }

    /// Wrap an STM instance with history recording enabled. The
    /// returned recorder handle yields the execution's trace once all
    /// threads are done (`Arc::try_unwrap(rec)?.into_trace()`).
    pub fn recorded(tm: A) -> (Self, Arc<Recorder>) {
        let rec = Arc::new(Recorder::new());
        (
            TVarSpace {
                tm: Arc::new(tm),
                recorder: Some(rec.clone()),
            },
            rec,
        )
    }

    /// A typed variable at heap slot `slot`.
    pub fn tvar<W: Word>(&self, slot: usize) -> TVar<W> {
        TVar {
            slot,
            _ty: PhantomData,
        }
    }

    /// The underlying algorithm.
    pub fn algo(&self) -> &A {
        &self.tm
    }

    /// Create the handle for thread `pid`. Each OS thread gets its own
    /// (the handle owns the thread's STM context).
    pub fn thread(&self, pid: u32) -> TVarThread<A> {
        TVarThread {
            tm: self.tm.clone(),
            cx: Ctx::new(ProcId(pid), self.recorder.clone()),
        }
    }
}

/// A per-thread handle owning the thread's [`Ctx`].
pub struct TVarThread<A: TmAlgo> {
    tm: Arc<A>,
    cx: Ctx,
}

/// Typed transaction handle.
pub struct TypedTx<'a> {
    tm: &'a dyn TmAlgo,
    cx: &'a mut Ctx,
}

impl<'a> TypedTx<'a> {
    /// Transactionally read a variable.
    pub fn read<W: Word>(&mut self, var: &TVar<W>) -> Result<W, Aborted> {
        self.tm.txn_read(self.cx, var.slot).map(W::from_word)
    }

    /// Transactionally write a variable.
    pub fn write<W: Word>(&mut self, var: &TVar<W>, val: W) -> Result<(), Aborted> {
        self.tm.txn_write(self.cx, var.slot, val.to_word())
    }

    /// Read-modify-write helper; returns the new value.
    pub fn modify<W: Word>(&mut self, var: &TVar<W>, f: impl FnOnce(W) -> W) -> Result<W, Aborted> {
        let v = f(self.read(var)?);
        self.write(var, v)?;
        Ok(v)
    }
}

impl<A: TmAlgo> TVarThread<A> {
    /// Run `body` transactionally, retrying on conflict, and return its
    /// result after a successful commit.
    pub fn atomically<R>(
        &mut self,
        mut body: impl FnMut(&mut TypedTx<'_>) -> Result<R, Aborted>,
    ) -> R {
        let tm: &A = &self.tm;
        let mut attempt = 0u32;
        loop {
            tm.txn_start(&mut self.cx);
            let out = {
                let mut tx = TypedTx {
                    tm,
                    cx: &mut self.cx,
                };
                body(&mut tx)
            };
            match out {
                Ok(r) => {
                    if tm.txn_commit(&mut self.cx).is_ok() {
                        return r;
                    }
                }
                Err(Aborted) => tm.txn_abort(&mut self.cx),
            }
            attempt = attempt.saturating_add(1);
            let spins = 1u64 << attempt.min(10);
            let jitter = self.cx.next_rand() % spins.max(1);
            for _ in 0..(spins + jitter) {
                std::hint::spin_loop();
            }
            if attempt > 10 {
                std::thread::yield_now();
            }
        }
    }

    /// This thread's process id.
    pub fn pid(&self) -> ProcId {
        self.cx.pid
    }

    /// Non-transactionally read a variable ("read now").
    pub fn read_now<W: Word>(&mut self, var: &TVar<W>) -> W {
        W::from_word(self.tm.nt_read(&mut self.cx, var.slot))
    }

    /// Non-transactionally write a variable ("write now").
    pub fn write_now<W: Word>(&mut self, var: &TVar<W>, val: W) {
        self.tm.nt_write(&mut self.cx, var.slot, val.to_word());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_lock::GlobalLockStm;
    use crate::strong::StrongStm;
    use crate::tl2::Tl2Stm;
    use crate::versioned::VersionedStm;

    #[test]
    fn typed_roundtrip_all_types() {
        let space = TVarSpace::new(GlobalLockStm::new(8));
        let a = space.tvar::<i64>(0);
        let b = space.tvar::<bool>(1);
        let c = space.tvar::<f64>(2);
        let d = space.tvar::<char>(3);
        let mut th = space.thread(0);
        th.atomically(|tx| {
            tx.write(&a, -42i64)?;
            tx.write(&b, true)?;
            tx.write(&c, 2.5f64)?;
            tx.write(&d, '🦀')
        });
        assert_eq!(th.read_now(&a), -42);
        assert!(th.read_now(&b));
        assert_eq!(th.read_now(&c), 2.5);
        assert_eq!(th.read_now(&d), '🦀');
    }

    #[test]
    fn modify_helper() {
        let space = TVarSpace::new(Tl2Stm::new(2));
        let ctr = space.tvar::<u64>(0);
        let mut th = space.thread(0);
        let v = th.atomically(|tx| tx.modify(&ctr, |v| v + 10));
        assert_eq!(v, 10);
        assert_eq!(th.read_now(&ctr), 10);
    }

    #[test]
    fn threads_share_space() {
        let space = TVarSpace::new(StrongStm::new(1));
        let ctr = space.tvar::<u64>(0);
        let mut joins = Vec::new();
        for t in 0..4 {
            let space = space.clone();
            joins.push(std::thread::spawn(move || {
                let mut th = space.thread(t);
                for _ in 0..100 {
                    th.atomically(|tx| tx.modify(&ctr, |v| v + 1));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut th = space.thread(9);
        assert_eq!(th.read_now(&ctr), 400);
    }

    #[test]
    fn versioned_space_persists_thread_version() {
        // The thread handle owns its Ctx, so the versioned STM's local
        // version counter advances monotonically across operations.
        let space = TVarSpace::new(VersionedStm::new(1));
        let x = space.tvar::<u32>(0);
        let mut th = space.thread(0);
        for i in 0..10u32 {
            th.write_now(&x, i);
        }
        assert_eq!(th.read_now(&x), 9);
    }

    #[test]
    fn recorded_space_produces_trace() {
        let (space, rec) = TVarSpace::recorded(GlobalLockStm::new(2));
        let x = space.tvar::<u64>(0);
        let mut th = space.thread(0);
        th.atomically(|tx| tx.write(&x, 5));
        th.read_now(&x);
        drop(th);
        drop(space);
        let trace = Arc::try_unwrap(rec).unwrap().into_trace().unwrap();
        assert_eq!(trace.ops().len(), 4); // start, write, commit, nt-read
    }
}
