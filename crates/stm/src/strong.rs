//! The strong-atomicity STM of §6.1 (after Shpeisman et al., PLDI'07).
//!
//! Every variable has a *transactional record* alongside its data word.
//! A record is **shared** (holding a reader count), **exclusive**
//! (owned by a writing transaction), or **exclusive anonymous** (owned
//! by a non-transactional write in flight) — the states described in
//! §6.1. (The paper's fourth state, *private*, is a compiler-assisted
//! optimization for provably thread-local data; privatization is instead
//! demonstrated dynamically in the workspace's `privatization` example.)
//!
//! * Transactions acquire records at encounter time — shared for reads,
//!   exclusive for writes (upgrading if needed) — buffer their writes,
//!   publish at commit while still holding every record, and only then
//!   release (strict two-phase locking ⇒ opacity). Contention aborts the
//!   transaction after a bounded spin; [`atomically`](crate::atomically)
//!   retries with backoff.
//! * A **non-transactional write** waits for the record to be free and
//!   takes it in exclusive-anonymous mode around its store.
//! * A **non-transactional read** waits while the record is
//!   transactionally exclusive — this is the read instrumentation that
//!   makes the STM *strongly atomic* (opacity parametrized by SC). The
//!   `optimized_reads` variant drops that check — §6.1's observation
//!   that for memory models allowing read reordering (`M ∉ Mrr ∪ Mwr`)
//!   non-transactional reads can stay uninstrumented — and
//!   `jungle-bench` measures exactly what that saves.

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::cell::Heap;
use crate::recorder::{rd_op, wr_op};
use jungle_core::ids::Var;
use jungle_core::op::Op;
use jungle_isa::tm::Instrumentation;
use jungle_obs::trace::{self, EventKind};

const TAG_SHIFT: u32 = 62;
const TAG_SHARED: u64 = 0;
const TAG_EXCL: u64 = 1;
const TAG_ANON: u64 = 2;
const TAG_PRIVATE: u64 = 3;

fn tag(w: u64) -> u64 {
    w >> TAG_SHIFT
}

fn readers(w: u64) -> u64 {
    debug_assert_eq!(tag(w), TAG_SHARED);
    w
}

fn enc_shared(n: u64) -> u64 {
    n
}

fn enc_excl(pid: u32) -> u64 {
    (TAG_EXCL << TAG_SHIFT) | (u64::from(pid) + 1)
}

fn enc_anon(pid: u32) -> u64 {
    (TAG_ANON << TAG_SHIFT) | (u64::from(pid) + 1)
}

fn enc_private(pid: u32) -> u64 {
    (TAG_PRIVATE << TAG_SHIFT) | (u64::from(pid) + 1)
}

fn owner(w: u64) -> u64 {
    w & !(3 << TAG_SHIFT)
}

/// Bounded spin budget before a transaction gives up and aborts.
const TXN_SPIN: usize = 256;

/// The §6.1 strong-atomicity STM.
pub struct StrongStm {
    data: Heap,
    meta: Heap,
    optimized_reads: bool,
}

impl StrongStm {
    /// Fully instrumented variant: strong atomicity — opacity
    /// parametrized by sequential consistency.
    pub fn new(n_vars: usize) -> Self {
        StrongStm {
            data: Heap::new(n_vars),
            meta: Heap::new(n_vars),
            optimized_reads: false,
        }
    }

    /// Read-optimized variant (§6.1): non-transactional reads are plain
    /// loads; correct for models that may reorder reads
    /// (`M ∉ Mrr ∪ Mwr`).
    pub fn new_optimized(n_vars: usize) -> Self {
        StrongStm {
            data: Heap::new(n_vars),
            meta: Heap::new(n_vars),
            optimized_reads: true,
        }
    }

    /// Take `var` into the **private** record state (§6.1's fourth
    /// state): the calling thread gains protocol-free access via
    /// [`StrongStm::private_read`] / [`StrongStm::private_write`] until
    /// it calls [`StrongStm::publish`]. Waits for the record to be
    /// free (no readers, no owner). Never call from inside a
    /// transaction.
    pub fn privatize(&self, cx: &mut Ctx, var: usize) {
        let mut spins = 0u32;
        loop {
            let w = self.meta.load(var);
            if tag(w) == TAG_SHARED
                && readers(w) == 0
                && self.meta.cas(var, w, enc_private(cx.pid.0))
            {
                return;
            }
            std::hint::spin_loop();
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
                spins = 0;
            }
        }
    }

    /// Release a privatized variable back to the shared state.
    pub fn publish(&self, cx: &mut Ctx, var: usize) {
        let w = self.meta.load(var);
        assert_eq!(tag(w), TAG_PRIVATE, "publish of a non-private variable");
        assert_eq!(owner(w), u64::from(cx.pid.0) + 1, "publish by non-owner");
        self.meta.store(var, enc_shared(0));
    }

    /// Protocol-free read of a variable this thread privatized.
    pub fn private_read(&self, cx: &Ctx, var: usize) -> u64 {
        debug_assert_eq!(tag(self.meta.load(var)), TAG_PRIVATE);
        debug_assert_eq!(owner(self.meta.load(var)), u64::from(cx.pid.0) + 1);
        self.data.load(var)
    }

    /// Protocol-free write to a variable this thread privatized.
    pub fn private_write(&self, cx: &Ctx, var: usize, val: u64) {
        debug_assert_eq!(tag(self.meta.load(var)), TAG_PRIVATE);
        debug_assert_eq!(owner(self.meta.load(var)), u64::from(cx.pid.0) + 1);
        self.data.store(var, val);
    }

    fn release_all(&self, cx: &mut Ctx) {
        for &var in &cx.locks {
            self.meta.store(var, enc_shared(0));
        }
        for &var in &cx.shared {
            loop {
                let w = self.meta.load(var);
                debug_assert_eq!(tag(w), TAG_SHARED);
                if self.meta.cas(var, w, enc_shared(readers(w) - 1)) {
                    break;
                }
            }
        }
        cx.reset_txn();
    }

    /// Acquire `var`'s record in shared mode; `Err` aborts (rollback
    /// already done).
    fn acquire_shared(&self, cx: &mut Ctx, var: usize) -> Result<(), Aborted> {
        for _ in 0..TXN_SPIN {
            let w = self.meta.load(var);
            match tag(w) {
                TAG_SHARED => {
                    if self.meta.cas(var, w, enc_shared(readers(w) + 1)) {
                        if let Some(m) = cx.met() {
                            m.lock_acquisitions.inc(cx.shard());
                        }
                        cx.shared.push(var);
                        return Ok(());
                    }
                    if let Some(m) = cx.met() {
                        m.cas_failures.inc(cx.shard());
                    }
                    trace::emit(EventKind::StmCasFail, u64::from(cx.pid.0), var as u64);
                }
                // Anonymous owners finish in O(1); exclusive owners may
                // hold until commit — spin a bounded amount for both.
                _ => {
                    if let Some(m) = cx.met() {
                        m.lock_spins.inc(cx.shard());
                    }
                    std::hint::spin_loop()
                }
            }
        }
        self.release_all(cx);
        Err(Aborted)
    }

    /// Acquire `var`'s record exclusively (upgrading a shared hold).
    fn acquire_excl(&self, cx: &mut Ctx, var: usize) -> Result<(), Aborted> {
        let upgrading = cx.shared.contains(&var);
        for _ in 0..TXN_SPIN {
            let w = self.meta.load(var);
            match tag(w) {
                TAG_SHARED => {
                    let expect = if upgrading {
                        enc_shared(1)
                    } else {
                        enc_shared(0)
                    };
                    if w == expect {
                        if self.meta.cas(var, w, enc_excl(cx.pid.0)) {
                            if let Some(m) = cx.met() {
                                m.lock_acquisitions.inc(cx.shard());
                            }
                            if upgrading {
                                cx.shared.retain(|&v| v != var);
                            }
                            cx.locks.push(var);
                            return Ok(());
                        }
                        if let Some(m) = cx.met() {
                            m.cas_failures.inc(cx.shard());
                        }
                        trace::emit(EventKind::StmCasFail, u64::from(cx.pid.0), var as u64);
                    } else {
                        if let Some(m) = cx.met() {
                            m.lock_spins.inc(cx.shard());
                        }
                        std::hint::spin_loop(); // other readers present
                    }
                }
                _ => {
                    if let Some(m) = cx.met() {
                        m.lock_spins.inc(cx.shard());
                    }
                    std::hint::spin_loop()
                }
            }
        }
        self.release_all(cx);
        Err(Aborted)
    }
}

impl TmAlgo for StrongStm {
    fn name(&self) -> &'static str {
        if self.optimized_reads {
            "strong-optimized"
        } else {
            "strong"
        }
    }

    fn instrumentation(&self) -> Instrumentation {
        if self.optimized_reads {
            // Reads de-instrumented; writes still acquire ownership.
            Instrumentation::UnboundedWrites
        } else {
            Instrumentation::Full
        }
    }

    fn txn_start(&self, cx: &mut Ctx) {
        cx.reset_txn();
        if let Some(r) = cx.rec() {
            r.instant(cx.pid, Op::Start);
        }
    }

    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_reads.inc(cx.shard());
        }
        if let Some(v) = cx.ws_get(var) {
            if let (Some(r), Some(t)) = (cx.rec(), tok) {
                r.finish(cx.pid, t, rd_op(Var(var as u32), v));
            }
            return Ok(v);
        }
        if let Some(v) = cx.rs_get(var) {
            if let (Some(r), Some(t)) = (cx.rec(), tok) {
                r.finish(cx.pid, t, rd_op(Var(var as u32), v));
            }
            return Ok(v);
        }
        if !cx.locks.contains(&var) && !cx.shared.contains(&var) {
            self.acquire_shared(cx, var)?;
        }
        let v = self.data.load(var);
        cx.readset.push((var, v));
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), v));
        }
        Ok(v)
    }

    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_writes.inc(cx.shard());
        }
        if !cx.locks.contains(&var) {
            self.acquire_excl(cx, var)?;
        }
        cx.ws_put(var, val);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
        Ok(())
    }

    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted> {
        let tok = cx.rec().map(|r| r.begin());
        for i in 0..cx.writeset.len() {
            let (var, val) = cx.writeset[i];
            debug_assert!(cx.locks.contains(&var));
            self.data.store(var, val);
        }
        self.release_all(cx);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Commit);
        }
        if let Some(m) = cx.met() {
            m.commits.inc(cx.shard());
        }
        Ok(())
    }

    fn txn_abort(&self, cx: &mut Ctx) {
        let tok = cx.rec().map(|r| r.begin());
        self.release_all(cx);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Abort);
        }
        if let Some(m) = cx.met() {
            m.aborts.inc(cx.shard());
        }
    }

    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            if self.optimized_reads {
                m.nontxn_uninstrumented.inc(cx.shard());
            } else {
                m.nontxn_instrumented.inc(cx.shard());
            }
        }
        if !self.optimized_reads {
            // Wait while a transaction holds the record exclusively.
            let mut spins = 0u32;
            while tag(self.meta.load(var)) == TAG_EXCL {
                std::hint::spin_loop();
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
        let v = self.data.load(var);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), v));
        }
        v
    }

    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.nontxn_instrumented.inc(cx.shard());
        }
        // Gain exclusive-anonymous ownership.
        let mut spins = 0u32;
        loop {
            let w = self.meta.load(var);
            if tag(w) == TAG_SHARED && readers(w) == 0 && self.meta.cas(var, w, enc_anon(cx.pid.0))
            {
                if let Some(m) = cx.met() {
                    m.lock_acquisitions.inc(cx.shard());
                }
                break;
            }
            if let Some(m) = cx.met() {
                m.lock_spins.inc(cx.shard());
            }
            std::hint::spin_loop();
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
                spins = 0;
            }
        }
        self.data.store(var, val);
        self.meta.store(var, enc_shared(0));
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use jungle_core::ids::ProcId;
    use std::sync::Arc;

    #[test]
    fn record_encodings() {
        assert_eq!(tag(enc_shared(0)), TAG_SHARED);
        assert_eq!(tag(enc_shared(5)), TAG_SHARED);
        assert_eq!(tag(enc_excl(0)), TAG_EXCL);
        assert_eq!(tag(enc_anon(3)), TAG_ANON);
        assert_eq!(readers(enc_shared(7)), 7);
        assert_ne!(enc_excl(0), enc_anon(0));
    }

    #[test]
    fn single_thread_semantics() {
        let tm = StrongStm::new(3);
        let mut cx = Ctx::new(ProcId(0), None);
        let v = atomically(&tm, &mut cx, |tx| {
            tx.write(0, 10)?;
            let a = tx.read(0)?; // own write
            tx.write(1, a + 1)?;
            tx.read(2)
        });
        assert_eq!(v, 0);
        assert_eq!(tm.nt_read(&mut cx, 0), 10);
        assert_eq!(tm.nt_read(&mut cx, 1), 11);
        // All records free after commit.
        assert_eq!(tm.meta.load(0), enc_shared(0));
        assert_eq!(tm.meta.load(1), enc_shared(0));
    }

    #[test]
    fn upgrade_read_to_write() {
        let tm = StrongStm::new(1);
        let mut cx = Ctx::new(ProcId(0), None);
        atomically(&tm, &mut cx, |tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 5)
        });
        assert_eq!(tm.nt_read(&mut cx, 0), 5);
        assert_eq!(tm.meta.load(0), enc_shared(0));
    }

    #[test]
    fn conflicting_txns_serialize_via_abort_retry() {
        let tm = Arc::new(StrongStm::new(1));
        let threads = 4;
        let per = 200u64;
        let mut joins = Vec::new();
        for t in 0..threads {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                for _ in 0..per {
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut cx = Ctx::new(ProcId(9), None);
        assert_eq!(tm.nt_read(&mut cx, 0), u64::from(threads) * per);
    }

    #[test]
    fn nt_write_waits_for_readers() {
        // A transaction holds a shared record; a concurrent nt write
        // must not land until the transaction finishes.
        let tm = Arc::new(StrongStm::new(2));
        let mut cx = Ctx::new(ProcId(0), None);
        tm.txn_start(&mut cx);
        let _ = tm.txn_read(&mut cx, 0).unwrap();
        let tm2 = tm.clone();
        let h = std::thread::spawn(move || {
            let mut cx1 = Ctx::new(ProcId(1), None);
            tm2.nt_write(&mut cx1, 0, 99); // blocks until record free
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!h.is_finished(), "nt write must wait for the shared record");
        tm.txn_commit(&mut cx).unwrap();
        h.join().unwrap();
        assert_eq!(tm.nt_read(&mut cx, 0), 99);
    }

    #[test]
    fn strong_reads_never_see_mid_commit_reorder() {
        // Writer transactions keep x == y; instrumented nt reads must
        // never observe y's new value with x's old one when read y-
        // then-x (the Figure 1 anomaly under SC).
        let tm = Arc::new(StrongStm::new(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(0), None);
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        tx.write(0, i)?;
                        tx.write(1, i)
                    });
                }
            })
        };
        let mut cx = Ctx::new(ProcId(1), None);
        for _ in 0..3000 {
            let y = tm.nt_read(&mut cx, 1);
            let x = tm.nt_read(&mut cx, 0);
            assert!(
                x >= y,
                "strong atomicity violated: y={y} fresh but x={x} stale"
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn privatize_publish_roundtrip() {
        let tm = StrongStm::new(2);
        let mut cx = Ctx::new(ProcId(0), None);
        tm.nt_write(&mut cx, 0, 5);
        tm.privatize(&mut cx, 0);
        assert_eq!(tm.private_read(&cx, 0), 5);
        tm.private_write(&cx, 0, 6);
        tm.private_write(&cx, 0, 7);
        tm.publish(&mut cx, 0);
        assert_eq!(tm.nt_read(&mut cx, 0), 7);
    }

    #[test]
    fn private_blocks_other_threads() {
        let tm = Arc::new(StrongStm::new(1));
        let mut cx = Ctx::new(ProcId(0), None);
        tm.privatize(&mut cx, 0);
        let tm2 = tm.clone();
        let h = std::thread::spawn(move || {
            let mut cx1 = Ctx::new(ProcId(1), None);
            tm2.nt_write(&mut cx1, 0, 99); // must wait for publish
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(
            !h.is_finished(),
            "nt write must wait for the private record"
        );
        tm.private_write(&cx, 0, 42);
        tm.publish(&mut cx, 0);
        h.join().unwrap();
        assert_eq!(tm.nt_read(&mut cx, 0), 99);
    }

    #[test]
    fn private_blocks_transactions() {
        let tm = Arc::new(StrongStm::new(1));
        let mut cx = Ctx::new(ProcId(0), None);
        tm.privatize(&mut cx, 0);
        let tm2 = tm.clone();
        let h = std::thread::spawn(move || {
            let mut cx1 = Ctx::new(ProcId(1), None);
            // Conflicting transaction aborts and retries until publish.
            atomically(tm2.as_ref(), &mut cx1, |tx| {
                let v = tx.read(0)?;
                tx.write(0, v + 1)
            });
            cx1.aborts
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        tm.private_write(&cx, 0, 10);
        tm.publish(&mut cx, 0);
        let aborts = h.join().unwrap();
        assert_eq!(tm.nt_read(&mut cx, 0), 11);
        assert!(
            aborts >= 1,
            "the transaction should have aborted while private"
        );
    }

    #[test]
    fn ctx_counts_commits_and_aborts() {
        let tm = StrongStm::new(1);
        let mut cx = Ctx::new(ProcId(0), None);
        for _ in 0..5 {
            atomically(&tm, &mut cx, |tx| tx.write(0, 1));
        }
        assert_eq!(cx.commits, 5);
        assert_eq!(cx.aborts, 0);
    }

    #[test]
    fn optimized_variant_plain_reads() {
        let tm = StrongStm::new_optimized(1);
        assert_eq!(tm.name(), "strong-optimized");
        let mut cx = Ctx::new(ProcId(0), None);
        tm.nt_write(&mut cx, 0, 7);
        assert_eq!(tm.nt_read(&mut cx, 0), 7);
    }
}
