//! Live event tap: publish every transactional operation of a running
//! STM into a bounded ring for the streaming monitor.
//!
//! Unlike the interval [`Recorder`](crate::recorder::Recorder) — which
//! buffers a whole execution under a mutex and converts it to a trace
//! *after* the workers join — the tap is an **online** channel: each
//! begin/read/write/commit/abort is pushed into a bounded MPSC
//! [`EventRing`] as it happens, and a consumer (the `jungle-monitor`
//! crate) drains it concurrently. Backpressure is explicit
//! ([`Backpressure::Block`] never loses an event; [`Backpressure::Drop`]
//! counts every loss exactly — `published + dropped` always equals the
//! number of publish attempts, never a silent truncation).
//!
//! ### Event-ordering discipline (soundness)
//!
//! The monitor reconstructs a real-time order from ring arrival order,
//! so publish sites are placed to make that order an
//! **under-approximation** of the true one:
//!
//! * `Begin` is published *before* the algorithm's `txn_start`;
//! * `Commit` / `Abort` are published *after* the algorithm completed
//!   the commit/rollback;
//! * reads and writes are published after the operation succeeded.
//!
//! Hence if the ring shows transaction `T` committing before `T'`
//! began, then `T` really did complete before `T'` started. A race can
//! only *hide* a real-time edge (making the monitor's check more
//! permissive for that pair, possibly escalating), never invent one —
//! so the tap can cause extra work, but never a false violation.
//!
//! `Commit` events carry a ticket from a process-wide counter fetched
//! at publish time; the monitor uses ticket order to track the latest
//! committed value per variable across window boundaries.

use jungle_core::ids::ProcId;
use jungle_obs::ring::{Backpressure, EventRing};
use std::sync::atomic::{AtomicU64, Ordering};

/// One transactional operation as seen by the tap. Variables are
/// widened to `u64` so no publish site ever truncates an index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TapOp {
    /// A transaction attempt started.
    Begin,
    /// A transactional read observed `val` at `var`.
    Read {
        /// Variable index.
        var: u64,
        /// Observed value.
        val: u64,
    },
    /// A transactional write of `val` to `var` was buffered.
    Write {
        /// Variable index.
        var: u64,
        /// Written value.
        val: u64,
    },
    /// The attempt committed; `ticket` is its position in the
    /// process-wide commit-publish order.
    Commit {
        /// Commit-publish ticket (monotonic across all threads).
        ticket: u64,
    },
    /// The attempt aborted and rolled back.
    Abort,
}

/// A tap event: the issuing process plus the operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TapEvent {
    /// The process (thread slot) that issued the operation.
    pub pid: ProcId,
    /// What happened.
    pub op: TapOp,
}

/// The shared tap: a bounded event ring plus the commit ticket
/// counter. Attach one to each thread's [`Ctx`](crate::api::Ctx) via
/// [`Ctx::with_tap`](crate::api::Ctx::with_tap) and hand the same
/// `Arc` to the monitor as the consumer end.
pub struct StmTap {
    ring: EventRing<TapEvent>,
    tickets: AtomicU64,
}

impl std::fmt::Debug for StmTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmTap")
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .field("queue_depth", &self.queue_depth())
            .field("policy", &self.policy())
            .finish()
    }
}

impl StmTap {
    /// A tap whose ring holds at least `cap` events under `policy`.
    pub fn new(cap: usize, policy: Backpressure) -> Self {
        StmTap {
            ring: EventRing::new(cap, policy),
            tickets: AtomicU64::new(0),
        }
    }

    /// Publish one event. Returns `false` iff the event was dropped
    /// (counted — see [`StmTap::dropped`]).
    #[inline]
    pub fn publish(&self, pid: ProcId, op: TapOp) -> bool {
        self.ring.push(TapEvent { pid, op })
    }

    /// Publish a `Commit` for `pid`, drawing the next ticket.
    #[inline]
    pub fn publish_commit(&self, pid: ProcId) -> bool {
        let ticket = self.tickets.fetch_add(1, Ordering::AcqRel);
        self.publish(pid, TapOp::Commit { ticket })
    }

    /// Pop the oldest event (single consumer).
    pub fn pop(&self) -> Option<TapEvent> {
        self.ring.pop()
    }

    /// Drain up to `max` events into `out`; returns the count moved.
    pub fn drain_into(&self, out: &mut Vec<TapEvent>, max: usize) -> usize {
        self.ring.drain_into(out, max)
    }

    /// Events successfully published (exact).
    pub fn published(&self) -> u64 {
        self.ring.published()
    }

    /// Events dropped because the ring was full under
    /// [`Backpressure::Drop`] or closed (exact — never silent).
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Approximate backlog (published, not yet consumed).
    pub fn queue_depth(&self) -> usize {
        self.ring.len()
    }

    /// The ring's backpressure policy.
    pub fn policy(&self) -> Backpressure {
        self.ring.policy()
    }

    /// Close the tap: producers stop publishing (counted as drops);
    /// the consumer drains what remains.
    pub fn close(&self) {
        self.ring.close()
    }

    /// Has the tap been closed?
    pub fn is_closed(&self) -> bool {
        self.ring.is_closed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{atomically, Ctx};
    use crate::global_lock::GlobalLockStm;
    use std::sync::Arc;

    #[test]
    fn publishes_txn_lifecycle_in_order() {
        let tap = Arc::new(StmTap::new(64, Backpressure::Block));
        let tm = GlobalLockStm::new(2);
        let mut cx = Ctx::new(ProcId(0), None).with_tap(tap.clone());
        atomically(&tm, &mut cx, |tx| {
            tx.write(0, 7)?;
            tx.read(0)
        });
        let mut evs = Vec::new();
        tap.drain_into(&mut evs, usize::MAX);
        let ops: Vec<TapOp> = evs.iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            vec![
                TapOp::Begin,
                TapOp::Write { var: 0, val: 7 },
                TapOp::Read { var: 0, val: 7 },
                TapOp::Commit { ticket: 0 },
            ]
        );
        assert!(evs.iter().all(|e| e.pid == ProcId(0)));
        assert_eq!(tap.published(), 4);
        assert_eq!(tap.dropped(), 0);
    }

    #[test]
    fn commit_tickets_are_unique_and_dense() {
        let tap = Arc::new(StmTap::new(1024, Backpressure::Block));
        let tm = Arc::new(GlobalLockStm::new(4));
        let joins: Vec<_> = (0..4u32)
            .map(|t| {
                let tap = tap.clone();
                let tm = tm.clone();
                std::thread::spawn(move || {
                    let mut cx = Ctx::new(ProcId(t), None).with_tap(tap);
                    for i in 0..10 {
                        atomically(&*tm, &mut cx, |tx| tx.write(t as usize, i));
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let mut evs = Vec::new();
        tap.drain_into(&mut evs, usize::MAX);
        let mut tickets: Vec<u64> = evs
            .iter()
            .filter_map(|e| match e.op {
                TapOp::Commit { ticket } => Some(ticket),
                _ => None,
            })
            .collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..40).collect::<Vec<u64>>());
    }

    #[test]
    fn drop_policy_accounts_every_attempt() {
        let tap = StmTap::new(4, Backpressure::Drop);
        let attempts = 50u64;
        for i in 0..attempts {
            tap.publish(ProcId(0), TapOp::Write { var: 0, val: i });
        }
        assert_eq!(tap.published() + tap.dropped(), attempts);
        assert!(tap.dropped() > 0);
        // Drained events free space: counters keep the invariant.
        let mut out = Vec::new();
        tap.drain_into(&mut out, usize::MAX);
        assert_eq!(out.len() as u64, tap.published());
        tap.publish(ProcId(0), TapOp::Abort);
        assert_eq!(tap.published() + tap.dropped(), attempts + 1);
    }
}
