//! Theorem 5's STM: constant-time write instrumentation.
//!
//! Every heap cell holds a packed word `value:32 | pid:8 | version:24`.
//! A non-transactional write increments the thread's *local* version
//! counter and issues **one store** of a fresh packed word — the
//! constant-time instrumentation of the theorem. A non-transactional
//! read is a plain load (the decode is register arithmetic, not an
//! instruction the memory model can reorder). Transactions run under
//! the Figure 6 global lock and publish with CAS keyed on the *whole
//! packed word* latched at first read, so any intervening
//! non-transactional write — which necessarily changes `(pid, version)`
//! even when it stores the same value — makes the CAS fail and
//! serializes after the transaction. This is what defeats the ABA
//! window that Theorem 2 exploits against plain stores.
//!
//! Guarantees opacity parametrized by any `M ∉ Mrr ∪ Mwr` (e.g. Alpha).

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::global_lock::{Codec, Fig6Core};
use jungle_isa::tm::Instrumentation;

/// Packed word layout `value:32 | pid:8 | version:24`.
pub mod packing {
    use jungle_core::ids::ProcId;

    /// Maximum storable value.
    pub const MAX_VALUE: u64 = u32::MAX as u64;

    /// Pack a value with writer identity and version.
    pub fn pack(value: u64, pid: ProcId, version: u32) -> u64 {
        debug_assert!(value <= MAX_VALUE, "versioned STM stores 32-bit values");
        (value << 32) | (u64::from(pid.0 & 0xFF) << 24) | u64::from(version & 0x00FF_FFFF)
    }

    /// Extract the value.
    pub fn value(word: u64) -> u64 {
        word >> 32
    }

    /// Extract the writer process.
    pub fn pid(word: u64) -> ProcId {
        ProcId(((word >> 24) & 0xFF) as u32)
    }

    /// Extract the writer-local version.
    pub fn version(word: u64) -> u32 {
        (word & 0x00FF_FFFF) as u32
    }
}

struct PackedCodec;

impl Codec for PackedCodec {
    fn decode(&self, word: u64) -> u64 {
        packing::value(word)
    }
    fn encode(&self, cx: &mut Ctx, val: u64) -> u64 {
        cx.version = cx.version.wrapping_add(1);
        packing::pack(val, cx.pid, cx.version)
    }
}

/// The Theorem 5 STM.
pub struct VersionedStm {
    core: Fig6Core<PackedCodec>,
}

impl VersionedStm {
    /// An STM over `n_vars` packed-word variables (values ≤ `u32::MAX`).
    pub fn new(n_vars: usize) -> Self {
        VersionedStm {
            core: Fig6Core::new(n_vars, PackedCodec),
        }
    }
}

impl VersionedStm {
    /// Footnote 4 of the paper: on models that forbid reordering
    /// *data-dependent* reads (`M ∈ M^d_rr` — RMO, Java), plain loads
    /// suffice for independent reads but a data-dependent
    /// non-transactional read needs "special synchronization … for
    /// example, a volatile access may be considered as a single
    /// operation transaction". This is that access path: a
    /// single-operation transaction under the global lock. Use it for
    /// reads whose address was computed from a prior non-transactional
    /// read; use plain [`TmAlgo::nt_read`] everywhere else.
    pub fn nt_read_volatile(&self, cx: &mut Ctx, var: usize) -> u64 {
        if let Some(m) = cx.met() {
            m.nontxn_instrumented.inc(cx.shard());
        }
        self.core.acquire(cx);
        let tok = cx.rec().map(|r| r.begin());
        let val = packing::value(self.core.heap.load(var));
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(
                cx.pid,
                t,
                crate::recorder::rd_op(jungle_core::ids::Var(var as u32), val),
            );
        }
        self.core.release();
        val
    }
}

impl TmAlgo for VersionedStm {
    fn name(&self) -> &'static str {
        "versioned"
    }

    fn instrumentation(&self) -> Instrumentation {
        Instrumentation::ConstantTimeWrites { bound: 1 }
    }

    fn txn_start(&self, cx: &mut Ctx) {
        self.core.txn_start(cx);
    }

    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted> {
        Ok(self.core.txn_read(cx, var))
    }

    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted> {
        debug_assert!(val <= packing::MAX_VALUE);
        self.core.txn_write(cx, var, val);
        Ok(())
    }

    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted> {
        self.core.txn_commit(cx);
        if let Some(m) = cx.met() {
            m.commits.inc(cx.shard());
        }
        Ok(())
    }

    fn txn_abort(&self, cx: &mut Ctx) {
        self.core.txn_abort(cx);
        if let Some(m) = cx.met() {
            m.aborts.inc(cx.shard());
        }
    }

    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        self.core.nt_read(cx, var)
    }

    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        debug_assert!(val <= packing::MAX_VALUE);
        // One store of a fresh packed word — constant-time, but still
        // instrumentation relative to a bare store.
        if let Some(m) = cx.met() {
            m.nontxn_instrumented.inc(cx.shard());
        }
        self.core.nt_write_plain(cx, var, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;
    use jungle_core::ids::ProcId;

    #[test]
    fn packing_roundtrip_and_freshness() {
        let a = packing::pack(5, ProcId(1), 1);
        let b = packing::pack(5, ProcId(2), 1);
        let c = packing::pack(5, ProcId(1), 2);
        assert_eq!(packing::value(a), 5);
        assert_eq!(packing::pid(a), ProcId(1));
        assert_eq!(packing::version(c), 2);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn values_roundtrip_through_txn_and_nt() {
        let tm = VersionedStm::new(3);
        let mut cx = Ctx::new(ProcId(0), None);
        tm.nt_write(&mut cx, 0, 41);
        assert_eq!(tm.nt_read(&mut cx, 0), 41);
        let v = atomically(&tm, &mut cx, |tx| {
            let v = tx.read(0)?;
            tx.write(1, v + 1)?;
            tx.read(1)
        });
        assert_eq!(v, 42);
        assert_eq!(tm.nt_read(&mut cx, 1), 42);
    }

    #[test]
    fn same_value_nt_write_defeats_aba() {
        // Theorem 2's scenario: a transaction reads x (latching word w),
        // another thread writes the *same value* non-transactionally,
        // then the transaction commits. With raw words the CAS would
        // succeed (ABA); with packed words it must fail, so the
        // non-transactional write survives.
        let tm = VersionedStm::new(1);
        let mut cx0 = Ctx::new(ProcId(0), None);
        let mut cx1 = Ctx::new(ProcId(1), None);

        tm.txn_start(&mut cx0);
        let v = tm.txn_read(&mut cx0, 0).unwrap();
        assert_eq!(v, 0);
        tm.txn_write(&mut cx0, 0, 7).unwrap();
        // Concurrent non-transactional write of the same value (0) that
        // the transaction read.
        tm.nt_write(&mut cx1, 0, 0);
        tm.txn_commit(&mut cx0).unwrap();
        // The commit CAS failed (word changed), so the cell holds the
        // non-transactional write's 0, not the transactional 7.
        assert_eq!(tm.nt_read(&mut cx1, 0), 0);
    }

    #[test]
    fn volatile_read_is_serialized_with_transactions() {
        // A volatile (single-op-transaction) read can never land between
        // a transaction's commit CASes: it waits for the global lock.
        use std::sync::Arc;
        let tm = Arc::new(VersionedStm::new(2));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let w = {
            let tm = tm.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(0), None);
                let mut i = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    i += 1;
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        tx.write(0, i % 1000)?;
                        tx.write(1, i % 1000)
                    });
                }
            })
        };
        let mut cx = Ctx::new(ProcId(1), None);
        for _ in 0..2000 {
            // Volatile reads of x then y: must never see y fresher
            // than x (the writer stores x first, all under the lock).
            let x = tm.nt_read_volatile(&mut cx, 0);
            let y = tm.nt_read_volatile(&mut cx, 1);
            // Between the two volatile reads a whole commit may land,
            // so y ≥ x is the invariant (modulo the wrap at 1000).
            if x > 0 && y > 0 && x < 900 && y < 900 {
                assert!(
                    y >= x,
                    "volatile reads observed reordered commits: x={x} y={y}"
                );
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        w.join().unwrap();
    }

    #[test]
    fn concurrent_mixed_traffic_values_stay_in_domain() {
        use std::sync::Arc;
        let tm = Arc::new(VersionedStm::new(4));
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                for i in 0..300u64 {
                    if t % 2 == 0 {
                        atomically(tm.as_ref(), &mut cx, |tx| {
                            let v = tx.read((i % 4) as usize)?;
                            assert!(v <= 1000, "decoded value out of domain: {v}");
                            tx.write(((i + 1) % 4) as usize, i % 1000)
                        });
                    } else {
                        tm.nt_write(&mut cx, (i % 4) as usize, i % 1000);
                        let v = tm.nt_read(&mut cx, ((i + 2) % 4) as usize);
                        assert!(v <= 1000, "decoded value out of domain: {v}");
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
