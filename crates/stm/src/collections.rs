//! Transactional data structures over typed [`TVar`]s — the
//! downstream-facing layer showing the STMs as a usable library, in the
//! spirit of the paper's "coarse-grained code blocks that appear to be
//! executed atomically".
//!
//! * [`TArray`] — a fixed-size array of typed transactional cells with
//!   bulk snapshot/fill operations.
//! * [`TQueue`] — a bounded MPMC ring buffer whose enqueue/dequeue are
//!   single transactions (busy-retrying when full/empty).
//! * [`TCounter`] — a counter with transactional and (where the STM's
//!   guarantees permit) non-transactional fast-path reads.

use crate::api::{Aborted, TmAlgo};
use crate::tvar::{TVar, TVarSpace, TVarThread, TypedTx};
use crate::word::Word;

/// A fixed-size array of transactional cells of `W`.
pub struct TArray<W: Word> {
    cells: Vec<TVar<W>>,
}

impl<W: Word> TArray<W> {
    /// Allocate `len` cells starting at heap slot `base`.
    pub fn new<A: TmAlgo>(space: &TVarSpace<A>, base: usize, len: usize) -> Self {
        TArray {
            cells: (0..len).map(|i| space.tvar::<W>(base + i)).collect(),
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell at `i`.
    pub fn at(&self, i: usize) -> &TVar<W> {
        &self.cells[i]
    }

    /// Transactionally read cell `i`.
    pub fn get(&self, tx: &mut TypedTx<'_>, i: usize) -> Result<W, Aborted> {
        tx.read(&self.cells[i])
    }

    /// Transactionally write cell `i`.
    pub fn set(&self, tx: &mut TypedTx<'_>, i: usize, v: W) -> Result<(), Aborted> {
        tx.write(&self.cells[i], v)
    }

    /// Transactionally snapshot the whole array (one atomic read of
    /// every cell).
    pub fn snapshot(&self, tx: &mut TypedTx<'_>) -> Result<Vec<W>, Aborted> {
        self.cells.iter().map(|c| tx.read(c)).collect()
    }

    /// Transactionally fill every cell with `v`.
    pub fn fill(&self, tx: &mut TypedTx<'_>, v: W) -> Result<(), Aborted> {
        for c in &self.cells {
            tx.write(c, v)?;
        }
        Ok(())
    }
}

/// A bounded transactional MPMC queue of `u64` values.
///
/// Layout: `base` = head index, `base+1` = tail index, `base+2 ..
/// base+2+cap` = slots. `tail - head` is the fill level; indices grow
/// monotonically and wrap modulo capacity on access.
pub struct TQueue {
    head: TVar<u64>,
    tail: TVar<u64>,
    slots: Vec<TVar<u64>>,
}

/// Error returned by the non-blocking queue operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueState {
    /// The queue was full (enqueue) — nothing was changed.
    Full,
    /// The queue was empty (dequeue) — nothing was changed.
    Empty,
}

impl TQueue {
    /// Allocate a queue with `cap` slots starting at heap slot `base`
    /// (uses `cap + 2` slots).
    pub fn new<A: TmAlgo>(space: &TVarSpace<A>, base: usize, cap: usize) -> Self {
        assert!(cap > 0);
        TQueue {
            head: space.tvar(base),
            tail: space.tvar(base + 1),
            slots: (0..cap).map(|i| space.tvar(base + 2 + i)).collect(),
        }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Transactionally enqueue; reports [`QueueState::Full`] without
    /// side effects when there is no room.
    pub fn try_enqueue(
        &self,
        tx: &mut TypedTx<'_>,
        v: u64,
    ) -> Result<Result<(), QueueState>, Aborted> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if (tail - head) as usize >= self.slots.len() {
            return Ok(Err(QueueState::Full));
        }
        tx.write(&self.slots[(tail as usize) % self.slots.len()], v)?;
        tx.write(&self.tail, tail + 1)?;
        Ok(Ok(()))
    }

    /// Transactionally dequeue; reports [`QueueState::Empty`] without
    /// side effects when there is nothing to take.
    pub fn try_dequeue(&self, tx: &mut TypedTx<'_>) -> Result<Result<u64, QueueState>, Aborted> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        if head == tail {
            return Ok(Err(QueueState::Empty));
        }
        let v = tx.read(&self.slots[(head as usize) % self.slots.len()])?;
        tx.write(&self.head, head + 1)?;
        Ok(Ok(v))
    }

    /// Enqueue, retrying (with fresh transactions) while full.
    pub fn enqueue_blocking<A: TmAlgo>(&self, th: &mut TVarThread<A>, v: u64) {
        loop {
            let done = th.atomically(|tx| self.try_enqueue(tx, v));
            if done.is_ok() {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Dequeue, retrying while empty.
    pub fn dequeue_blocking<A: TmAlgo>(&self, th: &mut TVarThread<A>) -> u64 {
        loop {
            if let Ok(v) = th.atomically(|tx| self.try_dequeue(tx)) {
                return v;
            }
            std::thread::yield_now();
        }
    }

    /// Transactional fill level.
    pub fn len_txn(&self, tx: &mut TypedTx<'_>) -> Result<usize, Aborted> {
        let head = tx.read(&self.head)?;
        let tail = tx.read(&self.tail)?;
        Ok((tail - head) as usize)
    }
}

/// A shared counter with a non-transactional fast-path read.
pub struct TCounter {
    cell: TVar<u64>,
}

impl TCounter {
    /// Allocate at heap slot `slot`.
    pub fn new<A: TmAlgo>(space: &TVarSpace<A>, slot: usize) -> Self {
        TCounter {
            cell: space.tvar(slot),
        }
    }

    /// Transactionally add `n`, returning the new value.
    pub fn add(&self, tx: &mut TypedTx<'_>, n: u64) -> Result<u64, Aborted> {
        tx.modify(&self.cell, |v| v + n)
    }

    /// Non-transactional read ("read now"): safe to use exactly when the
    /// backing STM guarantees opacity parametrized by the programmer's
    /// model for uninstrumented reads (§5–§6 of the paper decide which).
    pub fn read_now<A: TmAlgo>(&self, th: &mut TVarThread<A>) -> u64 {
        th.read_now(&self.cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global_lock::GlobalLockStm;
    use crate::strong::StrongStm;
    use crate::tl2::Tl2Stm;

    #[test]
    fn tarray_snapshot_and_fill() {
        let space = TVarSpace::new(GlobalLockStm::new(16));
        let arr = TArray::<u32>::new(&space, 0, 8);
        assert_eq!(arr.len(), 8);
        let mut th = space.thread(0);
        th.atomically(|tx| arr.fill(tx, 7u32));
        let snap = th.atomically(|tx| arr.snapshot(tx));
        assert_eq!(snap, vec![7u32; 8]);
        th.atomically(|tx| arr.set(tx, 3, 9u32));
        assert_eq!(th.atomically(|tx| arr.get(tx, 3)), 9);
    }

    #[test]
    fn tqueue_fifo_single_thread() {
        let space = TVarSpace::new(Tl2Stm::new(16));
        let q = TQueue::new(&space, 0, 4);
        let mut th = space.thread(0);
        for i in 1..=4 {
            assert_eq!(th.atomically(|tx| q.try_enqueue(tx, i)), Ok(()));
        }
        assert_eq!(
            th.atomically(|tx| q.try_enqueue(tx, 99)),
            Err(QueueState::Full)
        );
        for i in 1..=4 {
            assert_eq!(th.atomically(|tx| q.try_dequeue(tx)), Ok(i));
        }
        assert_eq!(
            th.atomically(|tx| q.try_dequeue(tx)),
            Err(QueueState::Empty)
        );
    }

    #[test]
    fn tqueue_wraps_around() {
        let space = TVarSpace::new(GlobalLockStm::new(16));
        let q = TQueue::new(&space, 0, 2);
        let mut th = space.thread(0);
        for round in 0..10u64 {
            assert_eq!(th.atomically(|tx| q.try_enqueue(tx, round)), Ok(()));
            assert_eq!(th.atomically(|tx| q.try_dequeue(tx)), Ok(round));
        }
    }

    #[test]
    fn tqueue_concurrent_producers_consumers() {
        let space = TVarSpace::new(StrongStm::new(32));
        let q = std::sync::Arc::new(TQueue::new(&space, 0, 8));
        let per_producer: u64 = 400;
        // Every thread returns the sum of values it produced (negated
        // role is encoded by sign-free bookkeeping: producers return
        // their sum, consumers return theirs; totals must match).
        let mut joins = Vec::new();
        for t in 0..2u32 {
            let space = space.clone();
            let q = q.clone();
            joins.push(std::thread::spawn(move || {
                let mut th = space.thread(t);
                let mut sum = 0u64;
                for i in 0..per_producer {
                    let v = u64::from(t) * 10_000 + i;
                    q.enqueue_blocking(&mut th, v);
                    sum += v;
                }
                sum
            }));
        }
        for t in 2..4u32 {
            let space = space.clone();
            let q = q.clone();
            joins.push(std::thread::spawn(move || {
                let mut th = space.thread(t);
                let mut sum = 0u64;
                for _ in 0..per_producer {
                    sum += q.dequeue_blocking(&mut th);
                }
                sum
            }));
        }
        let sums: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let produced_total = sums[0] + sums[1];
        let consumed_total = sums[2] + sums[3];
        assert_eq!(produced_total, consumed_total, "values lost or duplicated");
        // And the queue ends empty.
        let mut th = space.thread(9);
        assert_eq!(th.atomically(|tx| q.len_txn(tx)), 0);
    }

    #[test]
    fn tcounter_mixed_access() {
        let space = TVarSpace::new(StrongStm::new(2));
        let c = TCounter::new(&space, 0);
        let mut th = space.thread(0);
        let v = th.atomically(|tx| c.add(tx, 5));
        assert_eq!(v, 5);
        assert_eq!(c.read_now(&mut th), 5);
    }
}
