//! The shared heap: a fixed array of atomic word cells.
//!
//! Every STM in this crate stores variable `v`'s data in `Heap` slot
//! `v`; STMs that need per-variable metadata (ownership records, TL2
//! version locks) allocate a parallel metadata heap.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-size array of atomic 64-bit cells, zero-initialized.
#[derive(Debug)]
pub struct Heap {
    cells: Box<[AtomicU64]>,
}

impl Heap {
    /// Allocate `n` zeroed cells.
    pub fn new(n: usize) -> Self {
        let cells = (0..n).map(|_| AtomicU64::new(0)).collect();
        Heap { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the heap has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic load of cell `i`.
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.cells[i].load(Ordering::SeqCst)
    }

    /// Atomic store to cell `i`.
    #[inline]
    pub fn store(&self, i: usize, v: u64) {
        self.cells[i].store(v, Ordering::SeqCst);
    }

    /// Atomic compare-and-swap on cell `i`; returns `true` on success.
    #[inline]
    pub fn cas(&self, i: usize, expect: u64, new: u64) -> bool {
        self.cells[i]
            .compare_exchange(expect, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Atomic fetch-add on cell `i`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, i: usize, v: u64) -> u64 {
        self.cells[i].fetch_add(v, Ordering::SeqCst)
    }

    /// Direct reference to the underlying atomic (for spin loops that
    /// want weaker polling).
    #[inline]
    pub fn raw(&self, i: usize) -> &AtomicU64 {
        &self.cells[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let h = Heap::new(4);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        for i in 0..4 {
            assert_eq!(h.load(i), 0);
        }
    }

    #[test]
    fn store_load_cas() {
        let h = Heap::new(2);
        h.store(0, 5);
        assert_eq!(h.load(0), 5);
        assert!(h.cas(0, 5, 9));
        assert!(!h.cas(0, 5, 11));
        assert_eq!(h.load(0), 9);
        assert_eq!(h.fetch_add(1, 3), 0);
        assert_eq!(h.load(1), 3);
    }

    #[test]
    fn concurrent_fetch_add_is_atomic() {
        let h = std::sync::Arc::new(Heap::new(1));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    h.fetch_add(0, 1);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.load(0), 4000);
    }
}
