//! The uninstrumented global-lock STM of Figure 6 (Theorems 3 and 7),
//! plus the shared machinery ([`Fig6Core`]) reused by the Theorem 4 and
//! Theorem 5 variants.
//!
//! Transactions serialize on one global lock; reads are latched into a
//! read set on first access; writes are buffered and published at commit
//! with one CAS per variable, keyed on the word latched by the earlier
//! transactional read (Figure 6). Non-transactional operations are plain
//! atomic loads and stores — uninstrumented — so this STM guarantees
//! opacity only parametrized by fully relaxed models (Theorem 3), and
//! SGLA for every model (Theorem 7).

use crate::api::{Aborted, Ctx, TmAlgo};
use crate::cell::Heap;
use crate::recorder::{rd_op, wr_op};
use jungle_core::ids::{ProcId, Var};
use jungle_core::op::Op;
use jungle_isa::tm::Instrumentation;
use jungle_obs::trace::{self, EventKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// Value/word codec: how program values map to heap words. The plain
/// STMs store values directly; the versioned STM packs metadata in.
pub(crate) trait Codec: Sync {
    /// Decode a heap word into a program value.
    fn decode(&self, word: u64) -> u64;
    /// Encode a program value into a fresh heap word (may consume a
    /// per-thread version number).
    fn encode(&self, cx: &mut Ctx, val: u64) -> u64;
}

/// Identity codec for the raw-word STMs.
pub(crate) struct RawCodec;

impl Codec for RawCodec {
    fn decode(&self, word: u64) -> u64 {
        word
    }
    fn encode(&self, _cx: &mut Ctx, val: u64) -> u64 {
        val
    }
}

/// Shared implementation of the Figure 6 transactional protocol.
pub(crate) struct Fig6Core<C: Codec> {
    pub heap: Heap,
    lock: AtomicU64,
    pub codec: C,
}

fn lock_word(p: ProcId) -> u64 {
    u64::from(p.0) + 1
}

impl<C: Codec> Fig6Core<C> {
    pub fn new(n_vars: usize, codec: C) -> Self {
        Fig6Core {
            heap: Heap::new(n_vars),
            lock: AtomicU64::new(0),
            codec,
        }
    }

    pub fn acquire(&self, cx: &Ctx) {
        loop {
            if self
                .lock
                .compare_exchange(0, lock_word(cx.pid), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                if let Some(m) = cx.met() {
                    m.lock_acquisitions.inc(cx.shard());
                }
                return;
            }
            if let Some(m) = cx.met() {
                m.lock_spins.inc(cx.shard());
            }
            let mut spins = 0u32;
            while self.lock.load(Ordering::Relaxed) != 0 {
                std::hint::spin_loop();
                spins += 1;
                if spins > 64 {
                    // Uniprocessor-friendly: the holder cannot release
                    // while we burn its timeslice.
                    std::thread::yield_now();
                    spins = 0;
                }
            }
        }
    }

    pub fn release(&self) {
        self.lock.store(0, Ordering::SeqCst);
    }

    pub fn txn_start(&self, cx: &mut Ctx) {
        let tok = cx.rec().map(|r| r.begin());
        self.acquire(cx);
        cx.reset_txn();
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Start);
        }
    }

    pub fn txn_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_reads.inc(cx.shard());
        }
        let val = if let Some(v) = cx.ws_get(var) {
            v
        } else if let Some(w) = cx.rs_get(var) {
            self.codec.decode(w)
        } else {
            let w = self.heap.load(var);
            cx.readset.push((var, w));
            self.codec.decode(w)
        };
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), val));
        }
        val
    }

    pub fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        let tok = cx.rec().map(|r| r.begin());
        if let Some(m) = cx.met() {
            m.txn_writes.inc(cx.shard());
        }
        // Figure 6: a transactional write first latches the current
        // word (a transactional read) for the commit-time CAS.
        if cx.rs_get(var).is_none() && cx.ws_get(var).is_none() {
            let w = self.heap.load(var);
            cx.readset.push((var, w));
        }
        cx.ws_put(var, val);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
    }

    pub fn txn_commit(&self, cx: &mut Ctx) {
        let tok = cx.rec().map(|r| r.begin());
        for i in 0..cx.writeset.len() {
            let (var, val) = cx.writeset[i];
            let expected = cx
                .rs_get(var)
                .expect("Figure 6: every written variable was read first");
            let new = self.codec.encode(cx, val);
            // The CAS result is deliberately ignored (Figure 6): a
            // failure means a non-transactional write intervened and
            // serializes after this transaction.
            if !self.heap.cas(var, expected, new) {
                if let Some(m) = cx.met() {
                    m.cas_failures.inc(cx.shard());
                }
                trace::emit(EventKind::StmCasFail, u64::from(cx.pid.0), var as u64);
            }
        }
        self.release();
        cx.reset_txn();
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Commit);
        }
    }

    pub fn txn_abort(&self, cx: &mut Ctx) {
        let tok = cx.rec().map(|r| r.begin());
        self.release();
        cx.reset_txn();
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, Op::Abort);
        }
    }

    pub fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        let tok = cx.rec().map(|r| r.begin());
        let val = self.codec.decode(self.heap.load(var));
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, rd_op(Var(var as u32), val));
        }
        val
    }

    /// Uninstrumented (or codec-packed) non-transactional write: a
    /// single store.
    pub fn nt_write_plain(&self, cx: &mut Ctx, var: usize, val: u64) {
        let tok = cx.rec().map(|r| r.begin());
        let w = self.codec.encode(cx, val);
        self.heap.store(var, w);
        if let (Some(r), Some(t)) = (cx.rec(), tok) {
            r.finish(cx.pid, t, wr_op(Var(var as u32), val));
        }
    }
}

/// The Figure 6 STM: uninstrumented non-transactional operations.
pub struct GlobalLockStm {
    core: Fig6Core<RawCodec>,
}

impl GlobalLockStm {
    /// An STM over `n_vars` word variables.
    pub fn new(n_vars: usize) -> Self {
        GlobalLockStm {
            core: Fig6Core::new(n_vars, RawCodec),
        }
    }
}

impl TmAlgo for GlobalLockStm {
    fn name(&self) -> &'static str {
        "global-lock"
    }

    fn instrumentation(&self) -> Instrumentation {
        Instrumentation::Uninstrumented
    }

    fn txn_start(&self, cx: &mut Ctx) {
        self.core.txn_start(cx);
    }

    fn txn_read(&self, cx: &mut Ctx, var: usize) -> Result<u64, Aborted> {
        Ok(self.core.txn_read(cx, var))
    }

    fn txn_write(&self, cx: &mut Ctx, var: usize, val: u64) -> Result<(), Aborted> {
        self.core.txn_write(cx, var, val);
        Ok(())
    }

    fn txn_commit(&self, cx: &mut Ctx) -> Result<(), Aborted> {
        self.core.txn_commit(cx);
        if let Some(m) = cx.met() {
            m.commits.inc(cx.shard());
        }
        Ok(())
    }

    fn txn_abort(&self, cx: &mut Ctx) {
        self.core.txn_abort(cx);
        if let Some(m) = cx.met() {
            m.aborts.inc(cx.shard());
        }
    }

    fn nt_read(&self, cx: &mut Ctx, var: usize) -> u64 {
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        self.core.nt_read(cx, var)
    }

    fn nt_write(&self, cx: &mut Ctx, var: usize, val: u64) {
        if let Some(m) = cx.met() {
            m.nontxn_uninstrumented.inc(cx.shard());
        }
        self.core.nt_write_plain(cx, var, val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::atomically;

    #[test]
    fn single_thread_txn_semantics() {
        let tm = GlobalLockStm::new(4);
        let mut cx = Ctx::new(ProcId(0), None);
        let out = atomically(&tm, &mut cx, |tx| {
            tx.write(0, 7)?;
            let v = tx.read(0)?; // read-own-write
            tx.write(1, v + 1)?;
            tx.read(2) // initial value
        });
        assert_eq!(out, 0);
        assert_eq!(tm.nt_read(&mut cx, 0), 7);
        assert_eq!(tm.nt_read(&mut cx, 1), 8);
    }

    #[test]
    fn explicit_abort_discards() {
        let tm = GlobalLockStm::new(2);
        let mut cx = Ctx::new(ProcId(0), None);
        tm.txn_start(&mut cx);
        tm.txn_write(&mut cx, 0, 99).unwrap();
        tm.txn_abort(&mut cx);
        assert_eq!(tm.nt_read(&mut cx, 0), 0);
    }

    #[test]
    fn nt_ops_are_plain() {
        let tm = GlobalLockStm::new(2);
        let mut cx = Ctx::new(ProcId(0), None);
        tm.nt_write(&mut cx, 1, 42);
        assert_eq!(tm.nt_read(&mut cx, 1), 42);
        assert_eq!(tm.instrumentation(), Instrumentation::Uninstrumented);
    }

    #[test]
    fn concurrent_counter_increments_all_applied() {
        use std::sync::Arc;
        let tm = Arc::new(GlobalLockStm::new(1));
        let threads = 4;
        let per = 200;
        let mut joins = Vec::new();
        for t in 0..threads {
            let tm = tm.clone();
            joins.push(std::thread::spawn(move || {
                let mut cx = Ctx::new(ProcId(t), None);
                for _ in 0..per {
                    atomically(tm.as_ref(), &mut cx, |tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1)
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut cx = Ctx::new(ProcId(9), None);
        assert_eq!(tm.nt_read(&mut cx, 0), u64::from(threads) * per);
    }

    #[test]
    fn recorded_history_shape() {
        use crate::recorder::Recorder;
        let rec = std::sync::Arc::new(Recorder::new());
        let tm = GlobalLockStm::new(2);
        let mut cx = Ctx::new(ProcId(0), Some(rec.clone()));
        atomically(&tm, &mut cx, |tx| {
            tx.write(0, 5)?;
            tx.read(1)
        });
        tm.nt_read(&mut cx, 0);
        drop(cx);
        let trace = std::sync::Arc::try_unwrap(rec)
            .unwrap()
            .into_trace()
            .unwrap();
        // start, write, read, commit, nt-read = 5 operations.
        assert_eq!(trace.ops().len(), 5);
        let h = trace.canonical_history().unwrap();
        assert_eq!(h.txns().len(), 1);
    }
}
