//! The portable schedule log: a versioned, JSON-serializable record of
//! every scheduler decision of one machine run.
//!
//! A simulated-machine run is fully determined by the sequence of
//! choose-point decisions its [`Scheduler`](jungle_memsim::Scheduler)
//! makes — which process steps, which buffered store drains, which
//! admissible stale version a load observes (and, through the TM
//! algorithms' reactive spin loops, whether a CAS sees the value it
//! expects). A [`ScheduleLog`] captures that sequence together with
//! enough context to re-execute and *verify* it later: the bundled
//! experiment id, the model key, the property, the recorded trace's
//! structural fingerprint, and the Theorem 1 class of the original
//! violation.

use jungle_mc::CheckKind;
use jungle_memsim::ChoicePoint;
use jungle_obs::Json;
use std::path::Path;

/// Current on-disk format version. Bumped on any incompatible change;
/// [`ScheduleLog::from_json`] rejects logs from other versions rather
/// than misreading them.
pub const FORMAT_VERSION: u64 = 1;

/// A recorded schedule: decision sequence plus replay context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleLog {
    /// Format version ([`FORMAT_VERSION`] when produced by this crate).
    pub version: u64,
    /// Id of the bundled experiment the log was recorded against
    /// (e.g. `"thm1-case1/SC"`), when there is one — this is how
    /// `report --replay` resolves the program/algorithm/model triple.
    pub experiment: Option<String>,
    /// Registry key of the memory model the property was parametrized
    /// by (and, for checker-game experiments, SC execution).
    pub model: String,
    /// The property the recorded run was checked against.
    pub kind: CheckKind,
    /// Sweep seed whose scheduler produced the recording, if the log
    /// came from a seeded sweep (shrunk logs keep the original's seed).
    pub seed: Option<u64>,
    /// Step bound the recorded run executed under.
    pub max_steps: usize,
    /// `Trace::cache_key` of the recorded run — the history fingerprint
    /// a replay must reproduce.
    pub fingerprint: u64,
    /// Did the recorded trace violate the property?
    pub violating: bool,
    /// Theorem 1 class (`"Mrr"`/`"Mrw"`/`"Mwr"`/`"Mww"`) the explainer
    /// assigned to the recorded violation, when it could.
    pub class: Option<String>,
    /// The decision sequence.
    pub decisions: Vec<ChoicePoint>,
}

impl ScheduleLog {
    /// Serialize to the versioned JSON object. Decisions are encoded
    /// compactly as `[chosen, options, action]` triples.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("version", self.version.into())
            .push(
                "experiment",
                match &self.experiment {
                    Some(id) => id.as_str().into(),
                    None => Json::Null,
                },
            )
            .push("model", self.model.as_str().into())
            .push("kind", self.kind.tag().into())
            .push(
                "seed",
                match self.seed {
                    Some(s) => s.into(),
                    None => Json::Null,
                },
            )
            .push("max_steps", self.max_steps.into())
            .push("fingerprint", self.fingerprint.into())
            .push("violating", self.violating.into())
            .push(
                "class",
                match &self.class {
                    Some(c) => c.as_str().into(),
                    None => Json::Null,
                },
            )
            .push(
                "decisions",
                Json::Arr(
                    self.decisions
                        .iter()
                        .map(|d| {
                            Json::Arr(vec![d.chosen.into(), d.options.into(), d.action.into()])
                        })
                        .collect(),
                ),
            );
        j
    }

    /// Rebuild a log from its JSON form. Errors name the offending
    /// field; a version mismatch is an error, not a best-effort parse.
    pub fn from_json(j: &Json) -> Result<ScheduleLog, String> {
        let num = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("schedule log missing numeric field '{key}'"))
        };
        let version = num("version")?;
        if version != FORMAT_VERSION {
            return Err(format!(
                "schedule log format version {version} (this build reads {FORMAT_VERSION})"
            ));
        }
        let opt_text =
            |key: &str| -> Option<String> { j.get(key).and_then(Json::as_str).map(str::to_string) };
        let kind_tag = j
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("schedule log missing string field 'kind'")?;
        let kind = CheckKind::from_tag(kind_tag)
            .ok_or_else(|| format!("schedule log has unknown kind '{kind_tag}'"))?;
        let violating = match j.get("violating") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("schedule log missing boolean field 'violating'".into()),
        };
        let decisions = match j.get("decisions") {
            Some(Json::Arr(rows)) => rows
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    let Json::Arr(t) = row else {
                        return Err(format!(
                            "decision {i} is not a [chosen, options, action] triple"
                        ));
                    };
                    let get = |k: usize| {
                        t.get(k)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("decision {i} field {k} is not a number"))
                    };
                    Ok(ChoicePoint {
                        chosen: get(0)? as usize,
                        options: get(1)? as usize,
                        action: get(2)?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => return Err("schedule log missing array field 'decisions'".into()),
        };
        Ok(ScheduleLog {
            version,
            experiment: opt_text("experiment"),
            model: opt_text("model").ok_or("schedule log missing string field 'model'")?,
            kind,
            seed: j.get("seed").and_then(Json::as_u64),
            max_steps: num("max_steps")? as usize,
            fingerprint: num("fingerprint")?,
            violating,
            class: opt_text("class"),
            decisions,
        })
    }

    /// Write the log as pretty-enough single-line JSON to `path`,
    /// creating parent directories as needed.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Read a log back from `path`.
    pub fn load(path: &Path) -> Result<ScheduleLog, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let j = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        ScheduleLog::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScheduleLog {
        ScheduleLog {
            version: FORMAT_VERSION,
            experiment: Some("thm1-case1/SC".into()),
            model: "SC".into(),
            kind: CheckKind::Opacity,
            seed: Some(17),
            max_steps: 8_000,
            fingerprint: 0xdead_beef_cafe,
            violating: true,
            class: Some("Mrr".into()),
            decisions: vec![
                ChoicePoint {
                    chosen: 1,
                    options: 3,
                    action: 0x1_0001_0000,
                },
                ChoicePoint {
                    chosen: 0,
                    options: 2,
                    action: 0x1_0000_0000,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let log = sample();
        let text = log.to_json().to_string();
        let back = ScheduleLog::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn optional_fields_round_trip_as_null() {
        let mut log = sample();
        log.experiment = None;
        log.seed = None;
        log.class = None;
        let text = log.to_json().to_string();
        let back = ScheduleLog::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let mut j = sample().to_json();
        if let Json::Obj(fields) = &mut j {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = 99u64.into();
                }
            }
        }
        let err = ScheduleLog::from_json(&j).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("jungle-replay-log-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("case.json");
        let log = sample();
        log.save(&path).unwrap();
        assert_eq!(ScheduleLog::load(&path).unwrap(), log);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
