//! Delta-debugging minimization of violating schedule logs.
//!
//! The shrinker repeatedly proposes simpler decision sequences —
//! removing chunks (ddmin-style, with halving chunk sizes) and
//! flipping single decisions toward choice 0 — and keeps a candidate
//! only if replaying it still produces a **complete run that violates
//! the property**. Every accepted candidate is *normalized*: the
//! candidate is replayed under a recording wrapper, so the kept
//! decision list's option counts and action encodings are exactly what
//! the machine offers (a later replay of the shrunk log is
//! divergence-free), and the longest all-zero suffix is trimmed
//! (replay defaults to choice 0 past the script's end, so the suffix
//! is redundant).
//!
//! Progress is measured lexicographically by `(decision count, sum of
//! chosen indices)`; a candidate is accepted only if it strictly
//! decreases the measure, so the loop terminates and the minimized log
//! is never longer than the original.

use crate::log::ScheduleLog;
use crate::run::replay;
use jungle_mc::explain::explain_trace;
use jungle_mc::theorems::Experiment;
use jungle_mc::{machine_for, trace_satisfies};
use jungle_memsim::{ChoicePoint, RecordingScheduler, ReplayScheduler};
use jungle_obs::trace::{self as flight, EventKind};

/// Counters from one shrink run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Full passes over the candidate space.
    pub rounds: u64,
    /// Candidate decision sequences replayed.
    pub candidates: u64,
    /// Decision count of the (normalized) starting log.
    pub initial_decisions: usize,
    /// Decision count of the minimized log.
    pub final_decisions: usize,
}

/// Replay `decisions` on `exp` while re-recording them; on a complete
/// run, return the normalized decision list (zero-suffix trimmed) and
/// whether the run violates the property.
fn normalize(
    decisions: Vec<ChoicePoint>,
    exp: &Experiment,
    max_steps: usize,
) -> Option<(Vec<ChoicePoint>, bool, u64)> {
    let mut rep = ReplayScheduler::new(decisions);
    let mut rec = RecordingScheduler::new(&mut rep);
    let r = machine_for(&exp.program, exp.algo, exp.entry.exec).run(&mut rec, max_steps);
    if !r.completed {
        return None;
    }
    let mut log = rec.into_log();
    while log.last().is_some_and(|cp| cp.chosen == 0) {
        log.pop();
    }
    let violating = !trace_satisfies(&r.trace, exp.entry.model, exp.kind);
    Some((log, violating, r.trace.cache_key()))
}

fn measure(decisions: &[ChoicePoint]) -> (usize, usize) {
    (
        decisions.len(),
        decisions.iter().map(|cp| cp.chosen).sum::<usize>(),
    )
}

/// Minimize `log` against `exp`: the returned log replays to a
/// complete run that still violates the property, with a decision
/// sequence no longer than the original's, its own replayed
/// fingerprint, and the Theorem 1 class re-derived from the minimized
/// trace (so callers can check it against the original's).
pub fn shrink(log: &ScheduleLog, exp: &Experiment) -> (ScheduleLog, ShrinkStats) {
    let mut stats = ShrinkStats::default();
    // Normalize the starting point; a log that no longer replays to a
    // violating run cannot be shrunk, so it is returned unchanged.
    let Some((mut cur, violating, mut fingerprint)) =
        normalize(log.decisions.clone(), exp, log.max_steps)
    else {
        stats.initial_decisions = log.decisions.len();
        stats.final_decisions = log.decisions.len();
        return (log.clone(), stats);
    };
    if !violating || measure(&cur) > measure(&log.decisions) {
        // Defensive: normalization must not lose the violation or grow
        // the log; fall back to the original decisions if it would.
        cur = log.decisions.clone();
        fingerprint = log.fingerprint;
    }
    stats.initial_decisions = cur.len();

    // Accept `candidate` if it replays to a completed violating run
    // whose normalized form strictly decreases the measure.
    let try_accept = |cur: &mut Vec<ChoicePoint>,
                      fingerprint: &mut u64,
                      candidate: Vec<ChoicePoint>,
                      stats: &mut ShrinkStats|
     -> bool {
        stats.candidates += 1;
        match normalize(candidate, exp, log.max_steps) {
            Some((norm, true, fp)) if measure(&norm) < measure(cur) => {
                *cur = norm;
                *fingerprint = fp;
                true
            }
            _ => false,
        }
    };

    loop {
        stats.rounds += 1;
        let mut improved = false;

        // Chunk removal, ddmin-style: halving chunk sizes, restarting
        // at the same size after a successful removal.
        let mut k = (cur.len() / 2).max(1);
        while k >= 1 {
            let mut i = 0;
            while i < cur.len() {
                let mut candidate = cur.clone();
                candidate.drain(i..(i + k).min(candidate.len()));
                if try_accept(&mut cur, &mut fingerprint, candidate, &mut stats) {
                    improved = true;
                    // Re-scan from the start at this chunk size.
                    i = 0;
                } else {
                    i += k;
                }
            }
            if k == 1 {
                break;
            }
            k /= 2;
        }

        // Single-decision flips toward 0: a lower choice index is a
        // simpler schedule (choice 0 is the deterministic default).
        for i in 0..cur.len() {
            if cur[i].chosen == 0 {
                continue;
            }
            let mut candidate = cur.clone();
            candidate[i].chosen = 0;
            if try_accept(&mut cur, &mut fingerprint, candidate, &mut stats) {
                improved = true;
            }
        }

        flight::emit(EventKind::ShrinkRound, stats.rounds, cur.len() as u64);
        if !improved {
            break;
        }
    }

    stats.final_decisions = cur.len();
    let mut out = ScheduleLog {
        decisions: cur,
        fingerprint,
        ..log.clone()
    };
    // Re-derive the class from the minimized trace so the caller can
    // verify it matches the original recording's.
    if let Some(trace) = replay(&out, exp).trace {
        out.class = explain_trace(&trace, exp.entry.model, exp.kind)
            .ok()
            .and_then(|ex| ex.class)
            .map(|c| c.name().to_string());
    }
    (out, stats)
}
