//! # jungle-replay — deterministic record/replay with counterexample shrinking
//!
//! The paper's negative results (Lemma 1, Theorems 1 and 2) are
//! demonstrated by *finding a violating trace* — but a violating trace
//! is only as useful as the ability to re-execute and explain the exact
//! interleaving that produced it. This crate closes that loop, in the
//! style of systematic concurrency-testing tools (CHESS-style schedule
//! capture, delta-debugging minimization):
//!
//! * A [`ScheduleLog`] is a **versioned, JSON-portable record** of every
//!   scheduler decision of one simulated-machine run: which process
//!   steps, which buffered store drains, which admissible stale version
//!   a load observes. Captured by wrapping any scheduler in a
//!   [`RecordingScheduler`](jungle_memsim::RecordingScheduler);
//!   [`record_experiment`] does this for the randomized sweeps of the
//!   bundled theorem experiments, reproducing the sweep's exact
//!   seed-order semantics.
//! * [`replay`] / [`replay_on`] re-execute a log through a
//!   [`ReplayScheduler`](jungle_memsim::ReplayScheduler) under any
//!   registry [`ModelEntry`](jungle_core::registry::ModelEntry), with
//!   **divergence detection**: the replayed trace's structural
//!   fingerprint must equal the recorded one, and a mismatch reports
//!   the first choose point where recording and replay disagreed.
//! * [`shrink`] **delta-debugs** a violating log — chunk removal plus
//!   single-decision flips, re-checking the verdict after every
//!   candidate — down to a minimal schedule that still violates, ready
//!   for `jungle_mc::explain`'s per-process timeline and Theorem 1
//!   classification.
//!
//! The `report` binary wires these together: `--record <dir>` captures
//! and shrinks one log per Theorem 1 construction, `--replay <file>`
//! re-executes a saved log and verifies the fingerprint, and
//! `--explain` narrates the replayed counterexample.

#![warn(missing_docs)]

pub mod log;
pub mod run;
pub mod shrink;

pub use crate::log::{ScheduleLog, FORMAT_VERSION};
pub use crate::run::{record_experiment, replay, replay_on, Recording, ReplayOutcome};
pub use crate::shrink::{shrink, ShrinkStats};
