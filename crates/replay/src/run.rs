//! Recording sweeps and replaying logs.
//!
//! [`record_experiment`] mirrors the serial randomized sweep of
//! `jungle_mc::check_random` *exactly* — same seed order, same
//! even-uniform/odd-bursty scheduler rule via
//! [`scheduler_for_seed`](jungle_mc::scheduler_for_seed), same
//! machine construction via [`machine_for`](jungle_mc::machine_for) —
//! but wraps each scheduler in a
//! [`RecordingScheduler`](jungle_memsim::RecordingScheduler), so the
//! first violating seed's decision sequence becomes a [`ScheduleLog`].
//!
//! [`replay`] re-executes a log through a
//! [`ReplayScheduler`](jungle_memsim::ReplayScheduler) on any
//! program/algorithm/[`ModelEntry`] triple and reports whether the run
//! completed, whether it still violates the property, whether its
//! trace fingerprint equals the recorded one, and — if not — the
//! first diverging choose point.

use crate::log::{ScheduleLog, FORMAT_VERSION};
use jungle_core::registry::ModelEntry;
use jungle_isa::trace::Trace;
use jungle_mc::algos::TmAlgo;
use jungle_mc::explain::explain_trace;
use jungle_mc::theorems::Experiment;
use jungle_mc::Program;
use jungle_mc::{machine_for, scheduler_for_seed, trace_satisfies, CheckKind, SweepSeeds};
use jungle_memsim::{Divergence, RecordingScheduler, ReplayScheduler};
use jungle_obs::trace::{self as flight, EventKind};

/// A successful recording: the log plus the violating trace it
/// captured.
pub struct Recording {
    /// The portable schedule log.
    pub log: ScheduleLog,
    /// The recorded violating trace.
    pub trace: Trace,
}

/// Re-run the randomized sweep of `exp` with recording schedulers and
/// return the log of the **first completed violating run** in seed
/// order — the same run the serial sweep reports. `None` when no seed
/// in the range violates (either the experiment is a positive result,
/// or the range is too small).
pub fn record_experiment(
    exp: &Experiment,
    seeds: SweepSeeds,
    max_steps: usize,
) -> Option<Recording> {
    for seed in seeds.iter() {
        let mut base = scheduler_for_seed(seed);
        let mut rec = RecordingScheduler::new(base.as_mut());
        let r = machine_for(&exp.program, exp.algo, exp.entry.exec).run(&mut rec, max_steps);
        if !r.completed {
            continue;
        }
        if trace_satisfies(&r.trace, exp.entry.model, exp.kind) {
            continue;
        }
        let class = explain_trace(&r.trace, exp.entry.model, exp.kind)
            .ok()
            .and_then(|ex| ex.class)
            .map(|c| c.name().to_string());
        let log = ScheduleLog {
            version: FORMAT_VERSION,
            experiment: Some(exp.id.clone()),
            model: exp.entry.key.to_string(),
            kind: exp.kind,
            seed: Some(seed),
            max_steps,
            fingerprint: r.trace.cache_key(),
            violating: true,
            class,
            decisions: rec.into_log(),
        };
        return Some(Recording {
            log,
            trace: r.trace,
        });
    }
    None
}

/// What a replayed run did.
pub struct ReplayOutcome {
    /// Did the machine run to completion within the log's step bound?
    pub completed: bool,
    /// `Trace::cache_key` of the replayed run (0 when incomplete).
    pub fingerprint: u64,
    /// `completed` && no divergence && fingerprint equals the recorded
    /// one — the replay reproduced the recorded history exactly.
    pub matches: bool,
    /// First choose point where the replay stopped matching the
    /// recording, if any.
    pub divergence: Option<Divergence>,
    /// Does the replayed trace violate the log's property?
    pub violating: bool,
    /// Machine steps executed.
    pub steps: usize,
    /// The replayed trace (complete runs only).
    pub trace: Option<Trace>,
}

/// Replay `log` on an explicit program/algorithm/model triple. The
/// entry need not be the one the log was recorded under — replaying a
/// schedule under a different registry [`ModelEntry`] answers "would
/// this exact interleaving also violate / still execute the same way
/// over there?" (a divergence means the schedule is not portable to
/// that entry's execution semantics).
pub fn replay_on(
    log: &ScheduleLog,
    program: &Program,
    algo: &dyn TmAlgo,
    entry: &ModelEntry,
    kind: CheckKind,
) -> ReplayOutcome {
    flight::emit(
        EventKind::ReplayBegin,
        log.decisions.len() as u64,
        log.fingerprint,
    );
    let mut sched = ReplayScheduler::new(log.decisions.clone());
    let r = machine_for(program, algo, entry.exec).run(&mut sched, log.max_steps);
    let fingerprint = if r.completed { r.trace.cache_key() } else { 0 };
    let violating = r.completed && !trace_satisfies(&r.trace, entry.model, kind);
    ReplayOutcome {
        completed: r.completed,
        fingerprint,
        matches: r.completed && sched.divergence().is_none() && fingerprint == log.fingerprint,
        divergence: sched.divergence(),
        violating,
        steps: r.steps,
        trace: r.completed.then_some(r.trace),
    }
}

/// Replay `log` on the experiment it was recorded against (program,
/// algorithm, entry, and property all taken from `exp`).
pub fn replay(log: &ScheduleLog, exp: &Experiment) -> ReplayOutcome {
    replay_on(log, &exp.program, exp.algo, &exp.entry, exp.kind)
}
