//! Replay determinism and shrinker correctness.
//!
//! The core contract: recording any machine run and replaying the log
//! on the same program/model must reproduce the *identical* trace —
//! same structural fingerprint, no divergence — for every entry in the
//! model registry and any process count. The shrinker's contract: the
//! minimized log still replays to a violating run, is never longer
//! than the original, and classifies under the same Theorem 1 class.

use jungle_core::ids::{X, Y};
use jungle_mc::algos::GlobalLockTm;
use jungle_mc::theorems::{lemma1, thm1_case1, thm1_case3};
use jungle_mc::{machine_for, registry, CheckKind, Program, Stmt, SweepSeeds, ThreadProg, TxOp};
use jungle_memsim::{RandomScheduler, RecordingScheduler};
use jungle_replay::{record_experiment, replay, replay_on, shrink, ScheduleLog, FORMAT_VERSION};
use proptest::prelude::*;

const MAX_STEPS: usize = 20_000;

/// A small program with `procs` simulated processes mixing
/// transactional and plain accesses.
fn program(procs: usize) -> Program {
    let threads = (0..procs)
        .map(|i| match i % 4 {
            0 => ThreadProg(vec![
                Stmt::txn(vec![TxOp::Write(X, 1), TxOp::Write(Y, 2)]),
                Stmt::NtRead(X),
            ]),
            1 => ThreadProg(vec![Stmt::NtRead(X), Stmt::NtRead(Y)]),
            2 => ThreadProg(vec![Stmt::NtWrite(Y, 7), Stmt::NtRead(Y)]),
            _ => ThreadProg(vec![Stmt::txn(vec![TxOp::Read(X)])]),
        })
        .collect();
    Program(threads)
}

/// Record one seeded run of `program` on a registry entry and wrap the
/// decisions into a log.
fn record_run(p: &Program, entry: &jungle_mc::ModelEntry, seed: u64) -> Option<ScheduleLog> {
    let mut base = RandomScheduler::new(seed);
    let mut rec = RecordingScheduler::new(&mut base);
    let r = machine_for(p, &GlobalLockTm, entry.exec).run(&mut rec, MAX_STEPS);
    if !r.completed {
        return None;
    }
    Some(ScheduleLog {
        version: FORMAT_VERSION,
        experiment: None,
        model: entry.key.to_string(),
        kind: CheckKind::Opacity,
        seed: Some(seed),
        max_steps: MAX_STEPS,
        fingerprint: r.trace.cache_key(),
        violating: false,
        class: None,
        decisions: rec.into_log(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Record → replay reproduces the identical history fingerprint for
    /// all 8 registry entries at 1, 2 and 4 simulated procs.
    #[test]
    fn record_replay_fingerprints_agree(seed in 0u64..1_000) {
        prop_assert_eq!(registry().len(), 8, "registry grew; extend this sweep");
        for entry in registry() {
            for procs in [1usize, 2, 4] {
                let p = program(procs);
                let Some(log) = record_run(&p, entry, seed) else { continue };
                let out = replay_on(&log, &p, &GlobalLockTm, entry, CheckKind::Opacity);
                prop_assert!(
                    out.completed,
                    "replay truncated under {} at {} procs", entry.key, procs
                );
                prop_assert!(
                    out.divergence.is_none(),
                    "replay diverged under {} at {} procs: {:?}",
                    entry.key, procs, out.divergence
                );
                prop_assert_eq!(
                    out.fingerprint, log.fingerprint,
                    "fingerprint changed under {} at {} procs", entry.key, procs
                );
                prop_assert!(out.matches);
            }
        }
    }
}

#[test]
fn tampered_log_reports_divergence() {
    let e = registry().iter().find(|e| e.key == "SC").unwrap();
    let p = program(2);
    let log = record_run(&p, e, 3).expect("SC runs complete");
    assert!(log.decisions.len() > 4, "need a mid-run decision to tamper");
    let mut tampered = log.clone();
    let mid = tampered.decisions.len() / 2;
    tampered.decisions[mid].action ^= 0xffff_0000_0000; // impossible encoding
    let out = replay_on(&tampered, &p, &GlobalLockTm, e, CheckKind::Opacity);
    let d = out.divergence.expect("tampered action must be flagged");
    assert_eq!(d.step, mid);
    assert!(!out.matches);
    // The untampered log still matches.
    assert!(replay_on(&log, &p, &GlobalLockTm, e, CheckKind::Opacity).matches);
}

#[test]
fn recorded_violation_replays_and_shrinks() {
    // Lemma 1 violates on nearly every schedule, so recording is cheap.
    let exp = lemma1();
    let rec = record_experiment(&exp, SweepSeeds::new(0, 50), 4_000)
        .expect("lemma1 must violate within 50 seeds");
    assert!(rec.log.violating);
    assert_eq!(rec.log.fingerprint, rec.trace.cache_key());
    assert_eq!(rec.log.experiment.as_deref(), Some("lemma1"));

    // Replaying the raw log reproduces the identical violating history.
    let out = replay(&rec.log, &exp);
    assert!(out.matches, "divergence: {:?}", out.divergence);
    assert!(out.violating);

    // The minimized log still violates and is no longer than the
    // original.
    let (min, stats) = shrink(&rec.log, &exp);
    assert!(min.decisions.len() <= rec.log.decisions.len());
    assert_eq!(stats.final_decisions, min.decisions.len());
    assert!(stats.rounds >= 1);
    let min_out = replay(&min, &exp);
    assert!(min_out.completed);
    assert!(min_out.violating, "shrunk log must still violate");
    assert!(
        min_out.divergence.is_none(),
        "normalized shrunk logs replay divergence-free: {:?}",
        min_out.divergence
    );
    assert_eq!(min_out.fingerprint, min.fingerprint);
}

#[test]
fn shrunk_thm1_log_keeps_its_class() {
    // The Mrr construction under SC (Figure 5(b)).
    let exp = thm1_case1(&jungle_core::model::Sc);
    let rec = record_experiment(&exp, SweepSeeds::new(0, 2_000), 8_000)
        .expect("thm1-case1/SC must violate within the sweep");
    assert_eq!(rec.log.class.as_deref(), Some("Mrr"));
    let (min, _) = shrink(&rec.log, &exp);
    assert_eq!(
        min.class.as_deref(),
        Some("Mrr"),
        "minimization must not change the Theorem 1 class"
    );
    assert!(replay(&min, &exp).violating);
}

#[test]
fn shrunk_mrw_log_keeps_its_class() {
    // The Mrw construction under PSO (Figure 5(d)) — the EXPERIMENTS.md
    // walkthrough case.
    let exp = thm1_case3(&jungle_core::model::Pso);
    let rec = record_experiment(&exp, SweepSeeds::new(0, 2_000), 8_000)
        .expect("thm1-case3/PSO must violate within the sweep");
    assert_eq!(rec.log.class.as_deref(), Some("Mrw"));
    let (min, stats) = shrink(&rec.log, &exp);
    assert!(stats.final_decisions <= stats.initial_decisions);
    assert_eq!(min.class.as_deref(), Some("Mrw"));
    let out = replay(&min, &exp);
    assert!(out.violating && out.divergence.is_none());
}
