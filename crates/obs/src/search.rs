//! Statistics for the opacity/SGLA backtracking searches.
//!
//! Each worker of a search bumps its own plain-`u64` copy inline — no
//! atomics on the hot path; the parallel checker entry points merge the
//! per-worker copies with [`SearchStats::absorb`] at the end. Wall time
//! is only filled by the `*_traced` checker entry points; the plain
//! entry points skip the clock reads entirely.

use crate::json::{Json, ToJson};

/// Counters describing one checker search (or a sum of several — see
/// [`SearchStats::absorb`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Schedulable units (transactions + non-transactional ops) in the
    /// transformed history.
    pub units: u64,
    /// Complete transaction serialization orders enumerated.
    pub txn_orders: u64,
    /// DFS nodes expanded (unit placements attempted).
    pub nodes: u64,
    /// Placements undone after exhausting their subtree.
    pub backtracks: u64,
    /// Placements rejected by the incremental prefix checker.
    pub prune_hits: u64,
    /// Deepest prefix length reached by any DFS branch.
    pub peak_depth: u64,
    /// Wall-clock nanoseconds (0 unless a `*_traced` entry point ran).
    pub wall_ns: u64,
    /// Searches folded into this value (1 for a single run).
    pub searches: u64,
    /// Witness sub-searches answered from the per-worker memo of
    /// already-solved edge sets instead of a fresh DFS.
    pub cache_hits: u64,
    /// Worker threads used (0 for the serial search paths).
    pub workers: u64,
    /// Serialization-order prefixes pulled from the shared work queue
    /// by the parallel search's workers (0 for serial runs).
    pub stolen_prefixes: u64,
}

impl SearchStats {
    /// Stats for one search over `units` schedulable units.
    pub fn for_units(units: usize) -> Self {
        SearchStats {
            units: units as u64,
            searches: 1,
            ..Self::default()
        }
    }

    /// Fold another search's stats into this one. Counters add;
    /// `peak_depth` takes the max.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.units += other.units;
        self.txn_orders += other.txn_orders;
        self.nodes += other.nodes;
        self.backtracks += other.backtracks;
        self.prune_hits += other.prune_hits;
        self.peak_depth = self.peak_depth.max(other.peak_depth);
        self.wall_ns += other.wall_ns;
        self.searches += other.searches;
        self.cache_hits += other.cache_hits;
        self.workers = self.workers.max(other.workers);
        self.stolen_prefixes += other.stolen_prefixes;
    }

    /// Record that the DFS reached prefix length `depth`.
    #[inline]
    pub fn note_depth(&mut self, depth: usize) {
        self.peak_depth = self.peak_depth.max(depth as u64);
    }
}

impl ToJson for SearchStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("units", self.units.into())
            .push("txn_orders", self.txn_orders.into())
            .push("nodes", self.nodes.into())
            .push("backtracks", self.backtracks.into())
            .push("prune_hits", self.prune_hits.into())
            .push("peak_depth", self.peak_depth.into())
            .push("wall_ns", self.wall_ns.into())
            .push("searches", self.searches.into())
            .push("cache_hits", self.cache_hits.into())
            .push("workers", self.workers.into())
            .push("stolen_prefixes", self.stolen_prefixes.into());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::ToJson;

    #[test]
    fn absorb_adds_and_maxes() {
        let mut a = SearchStats {
            nodes: 3,
            peak_depth: 2,
            searches: 1,
            ..Default::default()
        };
        let b = SearchStats {
            nodes: 5,
            peak_depth: 7,
            searches: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes, 8);
        assert_eq!(a.peak_depth, 7);
        assert_eq!(a.searches, 2);
    }

    #[test]
    fn json_has_all_fields() {
        let j = SearchStats::for_units(4).to_json();
        for key in [
            "units",
            "txn_orders",
            "nodes",
            "backtracks",
            "prune_hits",
            "peak_depth",
            "wall_ns",
            "searches",
            "cache_hits",
            "workers",
            "stolen_prefixes",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        assert_eq!(j.get("units"), Some(&Json::U64(4)));
    }
}
