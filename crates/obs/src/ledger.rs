//! Persistent run ledger with regression gates.
//!
//! Every `report` (and bench) invocation appends one [`LedgerEntry`] —
//! headline exploration counters, wall time, git revision, and the
//! full [`MetricsSnapshot`](crate::MetricsSnapshot) JSON — as a single
//! line to `.jungle/ledger.jsonl`. The file is append-only JSONL so
//! entries from concurrent or crashed runs never corrupt each other,
//! and the history of a working tree accumulates across sessions.
//!
//! [`compare`] diffs a fresh entry against the previous one and
//! reports regressions beyond [`Tolerances`]: collapsed schedule
//! exploration, dropped dedup/memo hit-rates, shrunk zoo coverage.
//! `report --compare` turns any such finding into a nonzero exit, and
//! CI runs it against a committed seed entry so a change that quietly
//! destroys the redundancy elimination fails the build.

use crate::json::{Json, ToJson};
use std::io::Write;
use std::path::Path;

/// One ledger line: the durable summary of a report or bench run.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEntry {
    /// Seconds since the Unix epoch at the end of the run.
    pub ts_unix: u64,
    /// `git rev-parse --short HEAD` of the working tree (or
    /// `"unknown"`).
    pub git_rev: String,
    /// What produced the entry, e.g. `"report"` or `"bench/par_checker"`.
    pub source: String,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Schedules explored by the model-checking sweeps.
    pub schedules: u64,
    /// Structurally duplicate traces skipped.
    pub dedup_hits: u64,
    /// Shared verdict-memo hits.
    pub memo_hits: u64,
    /// Shared verdict-memo lookups.
    pub memo_lookups: u64,
    /// Distinct memory models covered by the matched zoo.
    pub zoo_models: u64,
    /// Distinct STM algorithms covered by the matched zoo.
    pub zoo_algos: u64,
    /// Schedule logs recorded and replay-verified this run (0 when the
    /// run did not record).
    pub replay_logs: u64,
    /// Total shrinker rounds spent minimizing recorded logs.
    pub shrink_rounds: u64,
    /// Operation events ingested by the streaming monitor (0 when the
    /// run did not monitor).
    pub monitor_ops: u64,
    /// Windows the streaming monitor sealed and checked.
    pub monitor_windows: u64,
    /// Monitor windows escalated past the triage tier to the full
    /// checker.
    pub monitor_escalated: u64,
    /// Machine runs executed by the DPOR explorer (0 when the run did
    /// not use DPOR).
    pub dpor_executed: u64,
    /// Equivalence classes the DPOR explorer visited.
    pub dpor_classes: u64,
    /// Frontier work items stolen across DPOR workers.
    pub frontier_steals: u64,
    /// 99th-percentile per-window monitor check latency in nanoseconds
    /// (0 when the run did not monitor).
    pub p99_window_ns: u64,
    /// Most common depth at which DPOR runs were sleep-set blocked
    /// (0 when the run did not use DPOR or nothing blocked).
    pub blocked_depth_mode: u64,
    /// Fraction of DPOR worker wall-time spent doing useful work
    /// (busy / (busy + steal + idle); 0 when the run did not profile).
    pub worker_busy_frac: f64,
    /// SAT-backed checks completed (0 when the run did not use the SAT
    /// backend).
    pub sat_solved: u64,
    /// CDCL conflicts across all SAT-backed checks.
    pub sat_conflicts: u64,
    /// 99th-percentile SAT check wall time in nanoseconds (0 when the
    /// run did not use the SAT backend).
    pub sat_wall_ns_p99: u64,
    /// The run's full metrics snapshot (or `Json::Null` for sources
    /// that only report headline counters).
    pub metrics: Json,
}

impl LedgerEntry {
    /// Trace dedup rate (`dedup_hits / schedules`), 0 when nothing ran.
    pub fn dedup_rate(&self) -> f64 {
        rate(self.dedup_hits, self.schedules)
    }

    /// Verdict-memo hit rate (`memo_hits / memo_lookups`).
    pub fn memo_rate(&self) -> f64 {
        rate(self.memo_hits, self.memo_lookups)
    }

    /// Monitor escalation rate (`monitor_escalated / monitor_windows`).
    pub fn monitor_escalation_rate(&self) -> f64 {
        rate(self.monitor_escalated, self.monitor_windows)
    }

    /// DPOR redundancy (`dpor_executed / dpor_classes`): how many
    /// machine runs each equivalence class cost. 1.0 is optimal; 0 when
    /// the run did not use DPOR.
    pub fn dpor_ratio(&self) -> f64 {
        rate(self.dpor_executed, self.dpor_classes)
    }

    /// Rebuild an entry from a parsed ledger line. Missing fields are
    /// an error naming the field, so schema drift is diagnosed rather
    /// than silently zeroed.
    pub fn from_json(j: &Json) -> Result<LedgerEntry, String> {
        let num = |key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("ledger entry missing numeric field '{key}'"))
        };
        let text = |key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("ledger entry missing string field '{key}'"))
        };
        Ok(LedgerEntry {
            ts_unix: num("ts_unix")?,
            git_rev: text("git_rev")?,
            source: text("source")?,
            wall_ms: num("wall_ms")?,
            schedules: num("schedules")?,
            dedup_hits: num("dedup_hits")?,
            memo_hits: num("memo_hits")?,
            memo_lookups: num("memo_lookups")?,
            zoo_models: num("zoo_models")?,
            zoo_algos: num("zoo_algos")?,
            // Added after the first ledger format: default to 0 so
            // entries written before record/replay existed still parse.
            replay_logs: j.get("replay_logs").and_then(Json::as_u64).unwrap_or(0),
            shrink_rounds: j.get("shrink_rounds").and_then(Json::as_u64).unwrap_or(0),
            // Added with the streaming monitor: same defaulting rule.
            monitor_ops: j.get("monitor_ops").and_then(Json::as_u64).unwrap_or(0),
            monitor_windows: j.get("monitor_windows").and_then(Json::as_u64).unwrap_or(0),
            monitor_escalated: j
                .get("monitor_escalated")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            // Added with the DPOR explorer: same defaulting rule.
            dpor_executed: j.get("dpor_executed").and_then(Json::as_u64).unwrap_or(0),
            dpor_classes: j.get("dpor_classes").and_then(Json::as_u64).unwrap_or(0),
            frontier_steals: j.get("frontier_steals").and_then(Json::as_u64).unwrap_or(0),
            // Added with the exploration profiler: same defaulting rule.
            p99_window_ns: j.get("p99_window_ns").and_then(Json::as_u64).unwrap_or(0),
            blocked_depth_mode: j
                .get("blocked_depth_mode")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            worker_busy_frac: j
                .get("worker_busy_frac")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            // Added with the SAT backend: same defaulting rule.
            sat_solved: j.get("sat_solved").and_then(Json::as_u64).unwrap_or(0),
            sat_conflicts: j.get("sat_conflicts").and_then(Json::as_u64).unwrap_or(0),
            sat_wall_ns_p99: j.get("sat_wall_ns_p99").and_then(Json::as_u64).unwrap_or(0),
            metrics: j.get("metrics").cloned().unwrap_or(Json::Null),
        })
    }
}

impl ToJson for LedgerEntry {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("ts_unix", self.ts_unix.into())
            .push("git_rev", self.git_rev.as_str().into())
            .push("source", self.source.as_str().into())
            .push("wall_ms", self.wall_ms.into())
            .push("schedules", self.schedules.into())
            .push("dedup_hits", self.dedup_hits.into())
            .push("memo_hits", self.memo_hits.into())
            .push("memo_lookups", self.memo_lookups.into())
            .push("zoo_models", self.zoo_models.into())
            .push("zoo_algos", self.zoo_algos.into())
            .push("replay_logs", self.replay_logs.into())
            .push("shrink_rounds", self.shrink_rounds.into())
            .push("monitor_ops", self.monitor_ops.into())
            .push("monitor_windows", self.monitor_windows.into())
            .push("monitor_escalated", self.monitor_escalated.into())
            .push("dpor_executed", self.dpor_executed.into())
            .push("dpor_classes", self.dpor_classes.into())
            .push("frontier_steals", self.frontier_steals.into())
            .push("p99_window_ns", self.p99_window_ns.into())
            .push("blocked_depth_mode", self.blocked_depth_mode.into())
            .push("worker_busy_frac", Json::F64(self.worker_busy_frac))
            .push("sat_solved", self.sat_solved.into())
            .push("sat_conflicts", self.sat_conflicts.into())
            .push("sat_wall_ns_p99", self.sat_wall_ns_p99.into())
            .push("metrics", self.metrics.clone());
        j
    }
}

fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Append `entry` as one JSONL line, creating the parent directory and
/// file as needed.
pub fn append(path: &Path, entry: &LedgerEntry) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", entry.to_json())
}

/// Default retention for [`compact`]: plenty of history for trend
/// plots, bounded growth for long-lived working trees.
pub const COMPACT_KEEP_DEFAULT: usize = 500;

/// Trim the ledger at `path` to its last `keep_last_n` parseable
/// lines, returning how many lines were removed. Torn or unparseable
/// lines (crashed runs) are dropped in the same pass. A missing file
/// or one already within bounds is left untouched. The rewrite goes
/// through a temp file + rename so a crash mid-compaction cannot lose
/// the ledger.
pub fn compact(path: &Path, keep_last_n: usize) -> std::io::Result<usize> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let valid: Vec<&str> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| LedgerEntry::from_json(&j).ok())
                .is_some()
        })
        .collect();
    let total_lines = text.lines().filter(|l| !l.trim().is_empty()).count();
    let kept = valid.len().min(keep_last_n);
    if kept == total_lines {
        return Ok(0);
    }
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        for line in &valid[valid.len() - kept..] {
            writeln!(f, "{line}")?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(total_lines - kept)
}

/// The last parseable entry of the ledger at `path`, or `None` when
/// the file is missing or holds no valid line. Unparseable lines are
/// skipped (append-only files survive crashes mid-write).
pub fn last(path: &Path) -> Option<LedgerEntry> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .rev()
        .filter(|l| !l.trim().is_empty())
        .find_map(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| LedgerEntry::from_json(&j).ok())
        })
}

/// Like [`last`], but restricted to entries whose `source` matches —
/// so a `report --compare` gates against the previous *report* run even
/// when bench invocations appended entries in between.
pub fn last_from(path: &Path, source: &str) -> Option<LedgerEntry> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .rev()
        .filter(|l| !l.trim().is_empty())
        .find_map(|l| {
            Json::parse(l)
                .ok()
                .and_then(|j| LedgerEntry::from_json(&j).ok())
                .filter(|e| e.source == source)
        })
}

/// Acceptable run-to-run slack before [`compare`] calls a regression.
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Fractional drop in explored schedules that is still fine (e.g.
    /// `0.5` = current may explore as little as half the previous run).
    pub schedules_frac: f64,
    /// Absolute drop in the dedup / memo hit *rates* that is still
    /// fine (rates live in `[0, 1]`).
    pub rate_drop: f64,
}

impl Default for Tolerances {
    /// Loose defaults: halved exploration or a 20-point rate drop is a
    /// regression, anything subtler is noise.
    fn default() -> Self {
        Tolerances {
            schedules_frac: 0.5,
            rate_drop: 0.20,
        }
    }
}

/// Compare `cur` against `prev`; each returned string names one
/// regression beyond `tol`. Empty means the gate passes. Zoo coverage
/// has no tolerance: dropping a model or an STM from the matrix is
/// always a regression.
pub fn compare(prev: &LedgerEntry, cur: &LedgerEntry, tol: &Tolerances) -> Vec<String> {
    let mut out = Vec::new();
    let floor = prev.schedules as f64 * (1.0 - tol.schedules_frac);
    if (cur.schedules as f64) < floor {
        out.push(format!(
            "schedules explored fell {} -> {} (floor {:.0})",
            prev.schedules, cur.schedules, floor
        ));
    }
    if cur.dedup_rate() < prev.dedup_rate() - tol.rate_drop {
        out.push(format!(
            "dedup rate fell {:.3} -> {:.3} (tolerance {:.2})",
            prev.dedup_rate(),
            cur.dedup_rate(),
            tol.rate_drop
        ));
    }
    if cur.memo_rate() < prev.memo_rate() - tol.rate_drop {
        out.push(format!(
            "memo hit rate fell {:.3} -> {:.3} (tolerance {:.2})",
            prev.memo_rate(),
            cur.memo_rate(),
            tol.rate_drop
        ));
    }
    if cur.zoo_models < prev.zoo_models {
        out.push(format!(
            "zoo model coverage fell {} -> {}",
            prev.zoo_models, cur.zoo_models
        ));
    }
    if cur.zoo_algos < prev.zoo_algos {
        out.push(format!(
            "zoo STM coverage fell {} -> {}",
            prev.zoo_algos, cur.zoo_algos
        ));
    }
    // Monitor gates apply only when both runs monitored: a run without
    // `--monitor` legitimately reports zeros.
    if prev.monitor_ops > 0 && cur.monitor_ops > 0 {
        let floor = prev.monitor_ops as f64 * (1.0 - tol.schedules_frac);
        if (cur.monitor_ops as f64) < floor {
            out.push(format!(
                "monitor ops ingested fell {} -> {} (floor {:.0})",
                prev.monitor_ops, cur.monitor_ops, floor
            ));
        }
        if cur.monitor_escalation_rate() > prev.monitor_escalation_rate() + tol.rate_drop {
            out.push(format!(
                "monitor escalation rate rose {:.3} -> {:.3} (tolerance {:.2})",
                prev.monitor_escalation_rate(),
                cur.monitor_escalation_rate(),
                tol.rate_drop
            ));
        }
    }
    // DPOR gates apply only when both runs explored with DPOR: older
    // entries (and brute-force runs) legitimately report zeros.
    if prev.dpor_executed > 0 && cur.dpor_executed > 0 {
        let floor = prev.dpor_classes as f64 * (1.0 - tol.schedules_frac);
        if (cur.dpor_classes as f64) < floor {
            out.push(format!(
                "dpor classes visited fell {} -> {} (floor {:.0})",
                prev.dpor_classes, cur.dpor_classes, floor
            ));
        }
        if cur.dpor_ratio() > prev.dpor_ratio() * (1.0 + tol.rate_drop) {
            out.push(format!(
                "dpor executed/classes ratio rose {:.3} -> {:.3} (tolerance {:.2})",
                prev.dpor_ratio(),
                cur.dpor_ratio(),
                tol.rate_drop
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> LedgerEntry {
        LedgerEntry {
            ts_unix: 1_700_000_000,
            git_rev: "abc1234".into(),
            source: "report".into(),
            wall_ms: 1234,
            schedules: 40_000,
            dedup_hits: 39_000,
            memo_hits: 500,
            memo_lookups: 1_000,
            zoo_models: 8,
            zoo_algos: 5,
            replay_logs: 4,
            shrink_rounds: 12,
            monitor_ops: 1_000_000,
            monitor_windows: 2_000,
            monitor_escalated: 10,
            dpor_executed: 5_000,
            dpor_classes: 4_800,
            frontier_steals: 32,
            p99_window_ns: 250_000,
            blocked_depth_mode: 3,
            worker_busy_frac: 0.75,
            sat_solved: 40,
            sat_conflicts: 120,
            sat_wall_ns_p99: 80_000,
            metrics: Json::Null,
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let e = entry();
        let line = e.to_json().to_string();
        let back = LedgerEntry::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn from_json_names_missing_field() {
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "schedules");
        }
        let err = LedgerEntry::from_json(&j).unwrap_err();
        assert!(err.contains("'schedules'"), "{err}");
    }

    #[test]
    fn pre_replay_entries_still_parse() {
        // Entries written before the replay fields existed must load
        // with the fields defaulted, not error.
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "replay_logs" && k != "shrink_rounds");
        }
        let back = LedgerEntry::from_json(&j).unwrap();
        assert_eq!(back.replay_logs, 0);
        assert_eq!(back.shrink_rounds, 0);
        assert_eq!(back.schedules, entry().schedules);
    }

    #[test]
    fn pre_monitor_entries_still_parse() {
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| !k.starts_with("monitor_"));
        }
        let back = LedgerEntry::from_json(&j).unwrap();
        assert_eq!(back.monitor_ops, 0);
        assert_eq!(back.monitor_windows, 0);
        assert_eq!(back.monitor_escalated, 0);
        assert_eq!(back.monitor_escalation_rate(), 0.0);
    }

    #[test]
    fn pre_dpor_entries_still_parse() {
        // PR-4/5/6 ledger lines predate the DPOR fields and must load
        // with them defaulted, not error.
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| {
                k != "dpor_executed" && k != "dpor_classes" && k != "frontier_steals"
            });
        }
        let back = LedgerEntry::from_json(&j).unwrap();
        assert_eq!(back.dpor_executed, 0);
        assert_eq!(back.dpor_classes, 0);
        assert_eq!(back.frontier_steals, 0);
        assert_eq!(back.dpor_ratio(), 0.0);
        assert_eq!(back.schedules, entry().schedules);
    }

    #[test]
    fn pre_profile_entries_still_parse() {
        // PR-8 and earlier ledger lines predate the profiler fields and
        // must load with them defaulted, not error.
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| {
                k != "p99_window_ns" && k != "blocked_depth_mode" && k != "worker_busy_frac"
            });
        }
        let back = LedgerEntry::from_json(&j).unwrap();
        assert_eq!(back.p99_window_ns, 0);
        assert_eq!(back.blocked_depth_mode, 0);
        assert_eq!(back.worker_busy_frac, 0.0);
        assert_eq!(back.schedules, entry().schedules);
    }

    #[test]
    fn pre_sat_entries_still_parse() {
        // PR-9 and earlier ledger lines predate the SAT-backend fields
        // and must load with them defaulted, not error.
        let mut j = entry().to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| !k.starts_with("sat_"));
        }
        let back = LedgerEntry::from_json(&j).unwrap();
        assert_eq!(back.sat_solved, 0);
        assert_eq!(back.sat_conflicts, 0);
        assert_eq!(back.sat_wall_ns_p99, 0);
        assert_eq!(back.schedules, entry().schedules);
    }

    #[test]
    fn compact_keeps_last_n_and_drops_torn_lines() {
        let dir = std::env::temp_dir().join(format!("jungle-ledger-gc-{}", std::process::id()));
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        // Missing file: nothing to do.
        assert_eq!(compact(&path, 5).unwrap(), 0);
        for i in 0..8u64 {
            let mut e = entry();
            e.schedules = i;
            append(&path, &e).unwrap();
        }
        // Torn trailing line from a crashed run.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"ts_unix\":99").unwrap();
        }
        // 8 valid + 1 torn, keep 3: removes 6 lines.
        assert_eq!(compact(&path, 3).unwrap(), 6);
        let text = std::fs::read_to_string(&path).unwrap();
        let survivors: Vec<LedgerEntry> = text
            .lines()
            .map(|l| LedgerEntry::from_json(&Json::parse(l).unwrap()).unwrap())
            .collect();
        let scheds: Vec<u64> = survivors.iter().map(|e| e.schedules).collect();
        assert_eq!(scheds, vec![5, 6, 7], "newest entries survive, in order");
        // Already within bounds: untouched.
        assert_eq!(compact(&path, 3).unwrap(), 0);
        assert_eq!(last(&path).unwrap().schedules, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dpor_gates_apply_only_when_both_explored() {
        let prev = entry();
        // Current run fell back to brute force: no dpor regression.
        let mut cur = entry();
        cur.dpor_executed = 0;
        cur.dpor_classes = 0;
        assert!(compare(&prev, &cur, &Tolerances::default()).is_empty());
        // Both explored, class coverage collapsed and redundancy spiked.
        let mut cur = entry();
        cur.dpor_classes = 1_000;
        cur.dpor_executed = 5_000; // ratio 5.0 vs ~1.04
        let regs = compare(&prev, &cur, &Tolerances::default());
        assert!(
            regs.iter().any(|r| r.contains("dpor classes visited")),
            "{regs:?}"
        );
        assert!(regs.iter().any(|r| r.contains("ratio rose")), "{regs:?}");
    }

    #[test]
    fn monitor_gates_apply_only_when_both_monitored() {
        let prev = entry();
        // Current run skipped monitoring entirely: no regression.
        let mut cur = entry();
        cur.monitor_ops = 0;
        cur.monitor_windows = 0;
        cur.monitor_escalated = 0;
        assert!(compare(&prev, &cur, &Tolerances::default()).is_empty());
        // Both monitored, throughput collapsed and escalation spiked.
        let mut cur = entry();
        cur.monitor_ops = 100;
        cur.monitor_windows = 10;
        cur.monitor_escalated = 10; // rate 1.0 vs 0.005
        let regs = compare(&prev, &cur, &Tolerances::default());
        assert!(
            regs.iter().any(|r| r.contains("monitor ops ingested")),
            "{regs:?}"
        );
        assert!(
            regs.iter().any(|r| r.contains("escalation rate rose")),
            "{regs:?}"
        );
    }

    #[test]
    fn append_and_last_round_trip() {
        let dir = std::env::temp_dir().join(format!("jungle-ledger-{}", std::process::id()));
        let path = dir.join("nested").join("ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        assert!(last(&path).is_none());
        let mut a = entry();
        append(&path, &a).unwrap();
        a.schedules += 1;
        append(&path, &a).unwrap();
        // A torn trailing line must be skipped, not fatal.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            write!(f, "{{\"ts_unix\":12").unwrap();
        }
        let got = last(&path).expect("two valid lines present");
        assert_eq!(got, a, "last valid line wins");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn last_from_filters_by_source() {
        let dir = std::env::temp_dir().join(format!("jungle-ledger-src-{}", std::process::id()));
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = entry();
        report.schedules = 111;
        append(&path, &report).unwrap();
        let mut bench = entry();
        bench.source = "bench/par_checker".into();
        bench.schedules = 0;
        append(&path, &bench).unwrap();
        // Plain `last` sees the bench entry; the filter skips past it.
        assert_eq!(last(&path).unwrap().source, "bench/par_checker");
        let got = last_from(&path, "report").expect("report entry present");
        assert_eq!(got.schedules, 111);
        assert!(last_from(&path, "nonesuch").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_runs_pass_compare() {
        let e = entry();
        assert!(compare(&e, &e, &Tolerances::default()).is_empty());
    }

    #[test]
    fn compare_flags_each_regression() {
        let prev = entry();
        let mut cur = entry();
        cur.schedules = 10_000; // below half
        cur.dedup_hits = 1_000; // rate collapses
        cur.memo_hits = 0;
        cur.zoo_models = 6;
        cur.zoo_algos = 4;
        let regs = compare(&prev, &cur, &Tolerances::default());
        assert_eq!(regs.len(), 5, "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("schedules")));
        assert!(regs.iter().any(|r| r.contains("dedup")));
        assert!(regs.iter().any(|r| r.contains("memo")));
        assert!(regs.iter().any(|r| r.contains("model coverage")));
        assert!(regs.iter().any(|r| r.contains("STM coverage")));
    }

    #[test]
    fn tolerances_absorb_small_drift() {
        let prev = entry();
        let mut cur = entry();
        cur.schedules = (prev.schedules as f64 * 0.6) as u64;
        cur.dedup_hits = (cur.schedules as f64 * 0.9) as u64; // ~0.9 vs ~0.975
        let regs = compare(&prev, &cur, &Tolerances::default());
        assert!(regs.is_empty(), "{regs:?}");
    }
}
