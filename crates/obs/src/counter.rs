//! Sharded, cache-padded atomic counters.
//!
//! STM worker threads bump counters on every commit/abort; a single
//! shared `AtomicU64` would serialize them on one cache line. Each
//! counter therefore owns [`SHARDS`] padded slots; a thread picks the
//! slot indexed by its id and increments with `Relaxed` ordering, so
//! the hot path is an uncontended add on a private line. Reads sum all
//! shards and are approximate under concurrent writers, which is fine
//! for metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pads (and aligns) a value to a 64-byte cache line so adjacent
/// shards never share a line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Number of shards per counter. A power of two so the shard index is
/// a mask; 16 covers the thread counts the experiments use.
pub const SHARDS: usize = 16;

/// A sharded monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [CachePadded<AtomicU64>; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            shards: [const { CachePadded(AtomicU64::new(0)) }; SHARDS],
        }
    }

    /// Add `n` on the shard for `hint` (typically a thread/process id).
    #[inline]
    pub fn add(&self, hint: usize, n: u64) {
        self.shards[hint & (SHARDS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one on the shard for `hint`.
    #[inline]
    pub fn inc(&self, hint: usize) {
        self.add(hint, 1);
    }

    /// Sum across shards. Approximate while writers are active.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset every shard to zero.
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cache_padding_holds() {
        assert!(std::mem::align_of::<CachePadded<AtomicU64>>() >= 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
    }

    #[test]
    fn sums_across_shards() {
        let c = Counter::new();
        for hint in 0..SHARDS * 3 {
            c.add(hint, 2);
        }
        assert_eq!(c.get(), (SHARDS as u64) * 3 * 2);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
