//! The top-level serializable metrics aggregate.

use crate::json::{Json, ToJson};
use crate::monitor::MonitorStats;
use crate::sat::SatStats;
use crate::search::SearchStats;
use crate::sim::McStats;
use crate::tm::TmSnapshot;

/// Everything the workspace knows how to measure, gathered into one
/// serializable value. Sections are independent: a producer fills in
/// what it ran and leaves the rest empty.
///
/// With no `serde` available offline, serialization is via
/// [`ToJson`]; `snapshot.to_json().to_string()` yields a compact JSON
/// object with stable key order.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Checker search stats, keyed by a caller-chosen label (for the
    /// report: one entry per litmus figure).
    pub checker: Vec<(String, SearchStats)>,
    /// Per-algorithm TM counters, keyed by algorithm name.
    pub stms: Vec<(String, TmSnapshot)>,
    /// Model-checking totals, if a verification pass ran.
    pub mc: Option<McStats>,
    /// Streaming-monitor totals, if a monitoring run happened.
    pub monitor: Option<MonitorStats>,
    /// SAT-backend totals, if any SAT-backed checks ran.
    pub sat: Option<SatStats>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold `stats` into the checker entry labelled `label`, creating
    /// it if absent.
    pub fn record_checker(&mut self, label: &str, stats: &SearchStats) {
        match self.checker.iter_mut().find(|(l, _)| l == label) {
            Some((_, s)) => s.absorb(stats),
            None => self.checker.push((label.to_string(), *stats)),
        }
    }

    /// Fold `snap` into the STM entry for `algo`, creating it if
    /// absent.
    pub fn record_stm(&mut self, algo: &str, snap: &TmSnapshot) {
        match self.stms.iter_mut().find(|(a, _)| a == algo) {
            Some((_, s)) => s.absorb(snap),
            None => self.stms.push((algo.to_string(), *snap)),
        }
    }

    /// Fold model-checking totals into the `mc` section.
    pub fn record_mc(&mut self, stats: &McStats) {
        self.mc.get_or_insert_with(McStats::default).absorb(stats);
    }

    /// Fold streaming-monitor totals into the `monitor` section.
    pub fn record_monitor(&mut self, stats: &MonitorStats) {
        self.monitor
            .get_or_insert_with(MonitorStats::default)
            .absorb(stats);
    }

    /// Fold SAT-backend totals into the `sat` section.
    pub fn record_sat(&mut self, stats: &SatStats) {
        self.sat.get_or_insert_with(SatStats::default).absorb(stats);
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        let mut checker = Json::obj();
        for (label, stats) in &self.checker {
            checker.push(label, stats.to_json());
        }
        let mut stms = Json::obj();
        for (algo, snap) in &self.stms {
            stms.push(algo, snap.to_json());
        }
        let mut j = Json::obj();
        j.push("checker", checker)
            .push("stms", stms)
            .push(
                "mc",
                match &self.mc {
                    Some(mc) => mc.to_json(),
                    None => Json::Null,
                },
            )
            .push(
                "monitor",
                match &self.monitor {
                    Some(m) => m.to_json(),
                    None => Json::Null,
                },
            )
            .push(
                "sat",
                match &self.sat {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            );
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_merges_by_key() {
        let mut m = MetricsSnapshot::new();
        m.record_checker(
            "fig1",
            &SearchStats {
                nodes: 2,
                searches: 1,
                ..Default::default()
            },
        );
        m.record_checker(
            "fig1",
            &SearchStats {
                nodes: 3,
                searches: 1,
                ..Default::default()
            },
        );
        m.record_checker("fig2", &SearchStats::for_units(1));
        assert_eq!(m.checker.len(), 2);
        assert_eq!(m.checker[0].1.nodes, 5);
        assert_eq!(m.checker[0].1.searches, 2);

        m.record_stm(
            "tl2",
            &TmSnapshot {
                commits: 1,
                ..Default::default()
            },
        );
        m.record_stm(
            "tl2",
            &TmSnapshot {
                commits: 2,
                ..Default::default()
            },
        );
        assert_eq!(m.stms[0].1.commits, 3);
    }

    #[test]
    fn json_shape() {
        let mut m = MetricsSnapshot::new();
        m.record_mc(&McStats {
            schedules: 9,
            ..Default::default()
        });
        let j = m.to_json();
        assert!(j.get("checker").is_some());
        assert!(j.get("stms").is_some());
        assert_eq!(
            j.get("mc").and_then(|mc| mc.get("schedules")),
            Some(&Json::U64(9))
        );
        // Empty sections serialize as {} / null, still valid JSON.
        let text = MetricsSnapshot::new().to_json().to_string();
        assert_eq!(
            text,
            r#"{"checker":{},"stms":{},"mc":null,"monitor":null,"sat":null}"#
        );
    }

    #[test]
    fn sat_section_folds_and_serializes() {
        let mut m = MetricsSnapshot::new();
        m.record_sat(&SatStats {
            solved: 2,
            conflicts: 5,
            ..Default::default()
        });
        m.record_sat(&SatStats {
            solved: 1,
            certified: 1,
            ..Default::default()
        });
        let j = m.to_json();
        let sat = j.get("sat").expect("sat section");
        assert_eq!(sat.get("solved"), Some(&Json::U64(3)));
        assert_eq!(sat.get("certified"), Some(&Json::U64(1)));
        assert_eq!(sat.get("conflicts"), Some(&Json::U64(5)));
    }

    #[test]
    fn monitor_section_folds_and_serializes() {
        let mut m = MetricsSnapshot::new();
        m.record_monitor(&MonitorStats {
            ops_ingested: 10,
            windows_sealed: 2,
            ..Default::default()
        });
        m.record_monitor(&MonitorStats {
            ops_ingested: 5,
            escalated: 1,
            windows_sealed: 1,
            ..Default::default()
        });
        let j = m.to_json();
        let mon = j.get("monitor").expect("monitor section");
        assert_eq!(mon.get("ops_ingested"), Some(&Json::U64(15)));
        assert_eq!(mon.get("windows_sealed"), Some(&Json::U64(3)));
        assert_eq!(mon.get("escalated"), Some(&Json::U64(1)));
    }
}
