//! Hierarchical phase profiler: per-thread span stacks folded into a
//! self/total-time tree with per-phase latency histograms.
//!
//! The flight recorder answers *what happened*; this module answers
//! *where the time went*. Call sites bracket a phase with
//! [`enter`] — the returned guard closes the phase on drop — and the
//! profiler attributes wall-clock to the full enclosing path
//! (`report.figures > machine.run > memsim.choose`), splitting each
//! node's total into self time (not covered by children) and
//! aggregating an [`HistSnapshot`] of per-call latency.
//!
//! The discipline is the same zero-cost-when-off contract as
//! [`trace`](crate::trace): with no [`Profiler`] [`install`]ed,
//! [`enter`] is one relaxed atomic load returning an inert guard — no
//! clock read, no allocation, no thread-local touch. When installed,
//! spans record into plain thread-local state (a stack and a per-path
//! aggregate map) with no synchronization; a thread folds its local
//! aggregates into the shared tree only when its span stack empties
//! and enough spans have accumulated ([`FLUSH_EVERY`]), or when the
//! thread exits, so worker threads in the DPOR frontier pay one mutex
//! acquisition per few hundred machine runs, not per span.
//!
//! Snapshots: call [`flush_thread`] on the reading thread (its own
//! residue is otherwise still local) and then [`Profiler::snapshot`],
//! which renders the path-keyed aggregates as a [`ProfileNode`] tree.

use crate::hist::HistSnapshot;
use crate::json::{Json, ToJson};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Completed spans a thread accumulates locally before folding into
/// the shared tree (only at stack-empty points, so partial paths never
/// publish).
pub const FLUSH_EVERY: u32 = 256;

/// Aggregate for one phase path.
#[derive(Debug, Default, Clone)]
struct NodeAgg {
    calls: u64,
    total_ns: u64,
    self_ns: u64,
    hist: HistSnapshot,
}

impl NodeAgg {
    fn absorb(&mut self, other: &NodeAgg) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
        self.hist.absorb(&other.hist);
    }
}

/// The shared profile: path-keyed aggregates behind a mutex that
/// threads only touch at flush points.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Mutex<BTreeMap<Vec<&'static str>, NodeAgg>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    fn merge(&self, local: &mut BTreeMap<Vec<&'static str>, NodeAgg>) {
        if local.is_empty() {
            return;
        }
        let mut nodes = self.nodes.lock().unwrap();
        for (path, agg) in std::mem::take(local) {
            nodes.entry(path).or_default().absorb(&agg);
        }
    }

    /// Fold the aggregates into a phase tree. Call [`flush_thread`]
    /// first so the reading thread's own residue is included; other
    /// threads contribute what they have flushed (worker threads flush
    /// fully at exit).
    pub fn snapshot(&self) -> ProfileNode {
        let nodes = self.nodes.lock().unwrap();
        let mut root = ProfileNode::named("profile");
        for (path, agg) in nodes.iter() {
            let mut cur = &mut root;
            for seg in path {
                let pos = match cur.children.iter().position(|c| c.name == *seg) {
                    Some(p) => p,
                    None => {
                        cur.children.push(ProfileNode::named(seg));
                        cur.children.len() - 1
                    }
                };
                cur = &mut cur.children[pos];
            }
            cur.calls += agg.calls;
            cur.total_ns += agg.total_ns;
            cur.self_ns += agg.self_ns;
            cur.hist.absorb(&agg.hist);
        }
        // The synthetic root spans its top-level phases.
        root.total_ns = root.children.iter().map(|c| c.total_ns).sum();
        root.calls = root.children.iter().map(|c| c.calls).sum();
        root
    }
}

/// One node of the rendered phase tree.
#[derive(Debug, Default, Clone)]
pub struct ProfileNode {
    /// Phase name (the string passed to [`enter`]).
    pub name: String,
    /// Completed spans at this exact path.
    pub calls: u64,
    /// Wall-clock nanoseconds covered by those spans.
    pub total_ns: u64,
    /// Portion of `total_ns` not covered by child phases.
    pub self_ns: u64,
    /// Per-call latency distribution.
    pub hist: HistSnapshot,
    /// Nested phases, in first-seen path order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn named(name: &str) -> ProfileNode {
        ProfileNode {
            name: name.to_string(),
            ..ProfileNode::default()
        }
    }

    /// Total nanoseconds attributed to direct children.
    pub fn children_ns(&self) -> u64 {
        self.children.iter().map(|c| c.total_ns).sum()
    }

    /// Render an indented human-readable table (one line per node).
    pub fn render(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(n: &ProfileNode, depth: usize, out: &mut String) {
            out.push_str(&format!(
                "{:indent$}{:<width$} calls={:<8} total={:<9} self={:<9} p50={:<8} p99={}\n",
                "",
                n.name,
                n.calls,
                fmt_ns(n.total_ns),
                fmt_ns(n.self_ns),
                fmt_ns(n.hist.p50()),
                fmt_ns(n.hist.p99()),
                indent = depth * 2,
                width = 28usize.saturating_sub(depth * 2),
            ));
            for c in &n.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        walk(self, 0, &mut out);
        out
    }
}

impl ToJson for ProfileNode {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("name", self.name.as_str().into())
            .push("calls", self.calls.into())
            .push("total_ns", self.total_ns.into())
            .push("self_ns", self.self_ns.into())
            .push("hist", self.hist.to_json())
            .push(
                "children",
                Json::Arr(self.children.iter().map(|c| c.to_json()).collect()),
            );
        j
    }
}

// ── thread-local recording state ─────────────────────────────────────

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Frame>,
    local: BTreeMap<Vec<&'static str>, NodeAgg>,
    pending: u32,
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        // Thread exit: whatever this thread accumulated must land in
        // the shared tree, or worker-thread time would vanish.
        merge_into_installed(&mut self.local);
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

// ── global installation (same shape as trace::install) ───────────────

static ENABLED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicPtr<Profiler> = AtomicPtr::new(std::ptr::null_mut());
/// Every profiler ever installed, kept alive for the process lifetime
/// so pointers loaded from [`INSTALLED`] can never dangle (bounded,
/// deliberate leak — installs happen once per report run or test).
static KEEP: Mutex<Vec<Arc<Profiler>>> = Mutex::new(Vec::new());

fn merge_into_installed(local: &mut BTreeMap<Vec<&'static str>, NodeAgg>) {
    let p = INSTALLED.load(Ordering::Acquire);
    if p.is_null() {
        local.clear();
        return;
    }
    // SAFETY: pointers stored into INSTALLED come from Arcs pushed into
    // KEEP, which is never drained, so the allocation outlives the
    // process.
    unsafe { (*p).merge(local) }
}

/// Install `profiler` as the process-global phase profiler; [`enter`]
/// starts recording immediately. Replaces any previous profiler (which
/// stays alive and readable but stops receiving spans).
pub fn install(profiler: Arc<Profiler>) {
    let raw = Arc::as_ptr(&profiler) as *mut Profiler;
    KEEP.lock().unwrap().push(profiler);
    INSTALLED.store(raw, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Stop profiling. Spans already open keep timing and fold into the
/// last installed profiler when they close.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
}

/// Is a profiler currently installed?
pub fn profiling() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Fold the calling thread's local aggregates into the installed
/// profiler now. Call before [`Profiler::snapshot`] on the thread that
/// did the work (other threads flush at stack-empty points and at
/// exit).
pub fn flush_thread() {
    let _ = TLS.try_with(|tls| {
        let mut tls = tls.borrow_mut();
        tls.pending = 0;
        let mut local = std::mem::take(&mut tls.local);
        drop(tls);
        merge_into_installed(&mut local);
    });
}

/// Open a phase. The returned guard closes it when dropped; phases on
/// one thread nest by drop order. With no profiler installed this is
/// one relaxed load returning an inert guard.
#[inline]
pub fn enter(name: &'static str) -> PhaseGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return PhaseGuard { armed: false };
    }
    enter_installed(name)
}

#[cold]
fn enter_installed(name: &'static str) -> PhaseGuard {
    let armed = TLS
        .try_with(|tls| {
            tls.borrow_mut().stack.push(Frame {
                name,
                start: Instant::now(),
                child_ns: 0,
            });
        })
        .is_ok();
    PhaseGuard { armed }
}

/// Closes its phase on drop. Hold it for the duration of the phase;
/// binding to `_` drops immediately and times nothing.
#[must_use = "the phase ends when this guard drops; bind it to a named local"]
pub struct PhaseGuard {
    armed: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if self.armed {
            exit_installed();
        }
    }
}

fn exit_installed() {
    let _ = TLS.try_with(|tls| {
        let mut tls = tls.borrow_mut();
        let Some(frame) = tls.stack.pop() else {
            return;
        };
        let ns = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = ns.saturating_sub(frame.child_ns);
        if let Some(parent) = tls.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(ns);
        }
        let path: Vec<&'static str> = tls
            .stack
            .iter()
            .map(|f| f.name)
            .chain(std::iter::once(frame.name))
            .collect();
        let agg = tls.local.entry(path).or_default();
        agg.calls += 1;
        agg.total_ns += ns;
        agg.self_ns += self_ns;
        agg.hist.record(ns);
        tls.pending += 1;
        if tls.stack.is_empty() && tls.pending >= FLUSH_EVERY {
            tls.pending = 0;
            let mut local = std::mem::take(&mut tls.local);
            drop(tls);
            merge_into_installed(&mut local);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-global install state.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin(iters: u64) -> u64 {
        std::hint::black_box((0..iters).sum::<u64>())
    }

    #[test]
    fn uninstalled_enter_is_inert() {
        let _l = lock();
        uninstall();
        let g = enter("never");
        drop(g);
        // No profiler: nothing to observe, but nothing crashed and the
        // TLS stack stayed empty.
        TLS.with(|tls| assert!(tls.borrow().stack.is_empty()));
    }

    #[test]
    fn nested_spans_build_a_tree_with_self_total_split() {
        let _l = lock();
        let p = Arc::new(Profiler::new());
        install(p.clone());
        {
            let _outer = enter("outer");
            spin(10_000);
            {
                let _inner = enter("inner");
                spin(10_000);
            }
            {
                let _inner = enter("inner");
                spin(10_000);
            }
        }
        uninstall();
        flush_thread();
        let root = p.snapshot();
        let outer = root
            .children
            .iter()
            .find(|c| c.name == "outer")
            .expect("outer phase recorded");
        assert_eq!(outer.calls, 1);
        let inner = outer
            .children
            .iter()
            .find(|c| c.name == "inner")
            .expect("inner nested under outer");
        assert_eq!(inner.calls, 2);
        assert!(inner.total_ns <= outer.total_ns);
        assert!(outer.self_ns <= outer.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(outer.children_ns() <= outer.total_ns);
        assert_eq!(inner.hist.count, 2);
    }

    #[test]
    fn cross_thread_spans_merge_at_thread_exit() {
        let _l = lock();
        let p = Arc::new(Profiler::new());
        install(p.clone());
        let threads: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..5 {
                        let _g = enter("worker");
                        spin(1_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        uninstall();
        flush_thread();
        let root = p.snapshot();
        let worker = root
            .children
            .iter()
            .find(|c| c.name == "worker")
            .expect("worker spans flushed at thread exit");
        assert_eq!(worker.calls, 15);
        assert_eq!(worker.hist.count, 15);
        assert!(worker.self_ns <= worker.total_ns);
    }

    #[test]
    fn snapshot_serializes_and_renders() {
        let _l = lock();
        let p = Arc::new(Profiler::new());
        install(p.clone());
        {
            let _a = enter("alpha");
            let _b = enter("beta");
            spin(1_000);
        }
        uninstall();
        flush_thread();
        let root = p.snapshot();
        let j = root.to_json();
        assert_eq!(j.get("name").unwrap().as_str(), Some("profile"));
        let text = j.to_string();
        assert!(text.contains("\"alpha\"") && text.contains("\"beta\""));
        let rendered = root.render();
        assert!(rendered.contains("alpha") && rendered.contains("beta"));
        assert!(rendered.contains("p99="));
    }
}
