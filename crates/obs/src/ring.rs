//! Bounded multi-producer single-consumer event ring with an explicit
//! backpressure policy.
//!
//! The streaming monitor taps every STM operation, so the channel
//! between producers (transaction threads) and the consumer (the
//! monitor) must have a hard memory bound *and* an explicit answer to
//! "what happens when the consumer falls behind":
//!
//! * [`Backpressure::Block`] — the producer spins (yielding) until a
//!   slot frees up. No event is ever lost; producers pay latency.
//! * [`Backpressure::Drop`] — the publish fails immediately and the
//!   ring counts it in [`EventRing::dropped`]. Events are lost, but
//!   **never silently**: `published + dropped == attempts` always
//!   holds, and the counters are exact (plain atomic increments, no
//!   sampling, no saturation).
//!
//! The implementation is the classic bounded MPMC queue with per-slot
//! sequence numbers (used here MPSC), so producers never take a lock
//! and the consumer drains in publish order per producer. Capacity is
//! rounded up to a power of two.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// What a producer does when the ring is full.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backpressure {
    /// Spin (with `yield_now`) until space frees up; never loses
    /// events. If the ring is closed while waiting, the event is
    /// counted as dropped instead of spinning forever.
    Block,
    /// Fail the publish and count it in [`EventRing::dropped`].
    Drop,
}

struct Slot<T> {
    seq: AtomicUsize,
    value: std::cell::UnsafeCell<Option<T>>,
}

/// Bounded MPSC ring of `T` with exact publish/drop accounting.
pub struct EventRing<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    head: AtomicUsize, // producers claim here
    tail: AtomicUsize, // consumer drains here
    policy: Backpressure,
    published: AtomicU64,
    dropped: AtomicU64,
    closed: AtomicBool,
}

// SAFETY: slot handoff is synchronized by the per-slot `seq`
// (release-stored by the writer, acquire-loaded by the reader), so a
// value is only ever touched by one side at a time.
unsafe impl<T: Send> Sync for EventRing<T> {}
unsafe impl<T: Send> Send for EventRing<T> {}

impl<T> EventRing<T> {
    /// A ring holding at least `cap` events (rounded up to a power of
    /// two, minimum 2) under `policy`.
    pub fn new(cap: usize, policy: Backpressure) -> Self {
        let cap = cap.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: std::cell::UnsafeCell::new(None),
            })
            .collect();
        EventRing {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            policy,
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Ring capacity (events).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// The configured backpressure policy.
    pub fn policy(&self) -> Backpressure {
        self.policy
    }

    /// Events successfully published (exact).
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Events rejected because the ring was full under
    /// [`Backpressure::Drop`] (or closed). Exact: every publish attempt
    /// lands in exactly one of `published` / `dropped`.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    /// Approximate queue depth (events published but not yet popped).
    /// Exact when producers and the consumer are quiescent.
    pub fn len(&self) -> usize {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.tail.load(Ordering::Acquire))
    }

    /// True when no event is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark the ring closed: subsequent publishes fail (counted as
    /// dropped) and blocked producers give up. The consumer can still
    /// drain what was published.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Has [`EventRing::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Publish `value`. Returns `true` if the event entered the ring,
    /// `false` if it was dropped (full under [`Backpressure::Drop`], or
    /// the ring is closed). Either way exactly one of the
    /// [`EventRing::published`] / [`EventRing::dropped`] counters is
    /// incremented.
    pub fn push(&self, value: T) -> bool {
        if self.is_closed() {
            self.dropped.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free at this position: try to claim it.
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we own this slot until the seq store.
                        unsafe { *slot.value.get() = Some(value) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.published.fetch_add(1, Ordering::AcqRel);
                        return true;
                    }
                    Err(cur) => pos = cur,
                }
            } else if (seq as isize).wrapping_sub(pos as isize) < 0 {
                // Ring full: the slot still holds an unconsumed event.
                match self.policy {
                    Backpressure::Drop => {
                        self.dropped.fetch_add(1, Ordering::AcqRel);
                        return false;
                    }
                    Backpressure::Block => {
                        if self.is_closed() {
                            self.dropped.fetch_add(1, Ordering::AcqRel);
                            return false;
                        }
                        std::thread::yield_now();
                        pos = self.head.load(Ordering::Relaxed);
                    }
                }
            } else {
                // Another producer claimed `pos`; retry at the head.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event, if any. Single consumer only.
    pub fn pop(&self) -> Option<T> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != pos.wrapping_add(1) {
            return None; // nothing published at this position yet
        }
        // SAFETY: seq == pos + 1 means the producer finished writing
        // and no other consumer exists.
        let value = unsafe { (*slot.value.get()).take() };
        slot.seq.store(
            pos.wrapping_add(self.mask).wrapping_add(1),
            Ordering::Release,
        );
        self.tail.store(pos.wrapping_add(1), Ordering::Release);
        value
    }

    /// Drain up to `max` waiting events into `out`; returns how many
    /// were moved. Single consumer only.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip() {
        let r = EventRing::new(8, Backpressure::Drop);
        for i in 0..5u32 {
            assert!(r.push(i));
        }
        assert_eq!(r.len(), 5);
        for i in 0..5u32 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
        assert_eq!(r.published(), 5);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drop_policy_counts_exactly() {
        let r = EventRing::new(4, Backpressure::Drop);
        let mut attempts = 0u64;
        for i in 0..10u32 {
            r.push(i);
            attempts += 1;
        }
        assert_eq!(r.published() + r.dropped(), attempts);
        assert_eq!(r.published(), 4); // capacity
        assert_eq!(r.dropped(), 6);
        // Space freed by popping is publishable again.
        assert_eq!(r.pop(), Some(0));
        assert!(r.push(99));
        assert_eq!(r.published(), 5);
    }

    #[test]
    fn closed_ring_rejects_and_drains() {
        let r = EventRing::new(4, Backpressure::Block);
        assert!(r.push(1u32));
        r.close();
        assert!(!r.push(2));
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.pop(), Some(1)); // published events survive close
    }

    #[test]
    fn wraps_many_times() {
        let r = EventRing::new(4, Backpressure::Drop);
        for i in 0..100u32 {
            assert!(r.push(i));
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.published(), 100);
    }

    #[test]
    fn multi_producer_accounting_is_exact() {
        let r = Arc::new(EventRing::new(64, Backpressure::Drop));
        let producers = 4;
        let per = 10_000u64;
        let consumer = {
            let r = r.clone();
            std::thread::spawn(move || {
                let mut got = 0u64;
                let mut idle = 0;
                while idle < 10_000 {
                    match r.pop() {
                        Some(_v) => {
                            got += 1;
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                got
            })
        };
        let joins: Vec<_> = (0..producers)
            .map(|p| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        r.push(p * per + i);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let got = consumer.join().unwrap();
        let attempts = producers * per;
        assert_eq!(r.published() + r.dropped(), attempts, "no silent loss");
        // Everything published was (or still can be) consumed.
        let mut rest = Vec::new();
        r.drain_into(&mut rest, usize::MAX);
        assert_eq!(got + rest.len() as u64, r.published());
    }

    #[test]
    fn block_policy_loses_nothing() {
        let r = Arc::new(EventRing::new(8, Backpressure::Block));
        let producers = 3;
        let per = 5_000u64;
        let joins: Vec<_> = (0..producers)
            .map(|p| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        assert!(r.push(p * per + i));
                    }
                })
            })
            .collect();
        let consumer = {
            let r = r.clone();
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while seen < producers * per {
                    if r.pop().is_some() {
                        seen += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                seen
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), producers * per);
        assert_eq!(r.published(), producers * per);
        assert_eq!(r.dropped(), 0);
    }
}
