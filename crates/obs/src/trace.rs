//! Flight recorder: per-thread lock-free ring buffers of structured
//! events, exported as Chrome-trace-event JSON (loadable in Perfetto).
//!
//! Every layer of the workspace can narrate what it is doing — the
//! checkers (node enter/leave, backtrack, prune, memo hits, prefix
//! claims, cancellation), the model-checking sweeps (dedup and verdict
//! memo hits, schedules), the simulated machine (store drains, stale
//! loads, forwarding, CAS fences), the executable STMs (begin /
//! commit / abort / CAS failure) and the record/replay engine (replay
//! begin, replayed steps, divergence, shrinker rounds). Recording
//! follows the same
//! zero-cost-when-off discipline as the `Option<Arc<TmMetrics>>`
//! counters: event sites call [`emit`], which is a single relaxed
//! atomic load returning immediately unless a [`FlightRecorder`] has
//! been [`install`]ed. No recorder, no work — not even a timestamp
//! read.
//!
//! When a recorder *is* installed, an event is one monotonic clock
//! read plus four relaxed atomic stores into a fixed ring buffer slot:
//! no locks, no allocation, wait-free. Each thread writes to its own
//! shard (chosen by a thread-local id), so writers never contend; a
//! full ring wraps and overwrites its oldest events, keeping memory
//! flat and counting the overwritten events in
//! [`FlightRecorder::dropped`].

use crate::json::Json;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of ring-buffer shards. Threads map to shards by a
/// process-unique thread id modulo this count, so runs with up to this
/// many recording threads have fully private shards.
pub const TRACE_SHARDS: usize = 32;

/// Default ring capacity (events) per shard. Must be a power of two.
pub const DEFAULT_RING_CAP: usize = 1 << 12;

/// The event categories, in `cat_index` order. One per instrumented
/// layer of the workspace.
pub const CATEGORIES: [&str; 8] = [
    "checker", "mc", "memsim", "stm", "replay", "monitor", "dpor", "sat",
];

/// Chrome-trace phase of an event kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// `"B"` — opens a duration span.
    Begin,
    /// `"E"` — closes the innermost open span of the same thread.
    End,
    /// `"i"` — instant event.
    Instant,
}

/// The event taxonomy, one variant per narrated happening.
///
/// Discriminants start at 1 so a zeroed ring slot is recognizably
/// empty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    // ── checker layer ────────────────────────────────────────────
    /// A witness search started (`a` = schedulable units).
    SearchBegin = 1,
    /// The witness search finished (`a` = nodes, `b` = 1 if satisfied).
    SearchEnd = 2,
    /// The DFS expanded a node (`a` = depth).
    NodeEnter = 3,
    /// The DFS returned from a node (`a` = depth).
    NodeLeave = 4,
    /// The DFS exhausted a node's candidates and backtracked.
    Backtrack = 5,
    /// Incremental prefix legality pruned a subtree (`a` = depth).
    Prune = 6,
    /// A per-worker witness memo answered an inner search (`a` = prefix).
    WitnessMemoHit = 7,
    /// A pool worker claimed serialization-order prefix `a`.
    PrefixClaim = 8,
    /// Prefix `a` was cancelled by a lower-indexed success.
    PrefixCancel = 9,
    // ── model-checking layer ─────────────────────────────────────
    /// A schedule finished (`a` = sequence number, `b` = 1 if completed).
    McSchedule = 10,
    /// A structurally identical trace was skipped (`a` = fingerprint).
    McDedupHit = 11,
    /// The shared verdict memo answered a history (`a` = fingerprint).
    McMemoHit = 12,
    /// A history went through the full checker (`a` = fingerprint).
    McHistoryChecked = 13,
    /// A violating trace was found (`a` = schedule sequence number).
    McViolation = 14,
    // ── simulated-machine layer ──────────────────────────────────
    /// A buffered store drained to global memory (`a` = addr, `b` = val).
    StoreDrain = 15,
    /// A load observed an older admissible version (`a` = addr).
    StaleLoad = 16,
    /// A load was served from the CPU's own store buffer (`a` = addr).
    StoreForward = 17,
    /// A CAS drained the buffer and raised the global floor (`a` = addr).
    CasFence = 18,
    // ── STM layer ────────────────────────────────────────────────
    /// A transaction attempt started (`a` = process id).
    TxnBegin = 19,
    /// The attempt committed (`a` = process id).
    TxnCommit = 20,
    /// The attempt aborted and will retry (`a` = process id).
    TxnAbort = 21,
    /// A CAS inside an STM operation lost its race (`a` = process id).
    StmCasFail = 22,
    // ── replay layer ─────────────────────────────────────────────
    /// A schedule-log replay started (`a` = decision count, `b` =
    /// recorded fingerprint).
    ReplayBegin = 23,
    /// A replayed choose point was served (`a` = step index, `b` =
    /// encoded action taken).
    ReplayStep = 24,
    /// The replay stopped matching its recording (`a` = step index,
    /// `b` = encoded action the recording expected).
    ReplayDivergence = 25,
    /// A shrinker round finished (`a` = round, `b` = surviving
    /// decision count).
    ShrinkRound = 26,
    // ── streaming-monitor layer ──────────────────────────────────
    /// The monitor ingested a batch of tap events (`a` = batch size,
    /// `b` = ring depth after the drain).
    MonitorIngest = 27,
    /// A window sealed for checking (`a` = window sequence number,
    /// `b` = operation count).
    WindowSeal = 28,
    /// The polynomial triage tier proved a window opaque (`a` = window
    /// sequence number).
    TriageClear = 29,
    /// A window escaped triage and went to the full checker (`a` =
    /// window sequence number, `b` = history fingerprint).
    Escalate = 30,
    /// The full checker found a window in violation (`a` = window
    /// sequence number, `b` = history fingerprint).
    MonitorViolation = 31,
    // ── DPOR exploration layer ───────────────────────────────────
    /// Two dependent transitions were found concurrent by the vector
    /// clocks (`a` = earlier decision index, `b` = later decision
    /// index).
    RaceDetected = 32,
    /// The explorer skipped an enabled action because its footprint was
    /// in the sleep set (`a` = tree depth, `b` = encoded action).
    SleepSetSkip = 33,
    /// A pending branch was enqueued on the exploration frontier (`a` =
    /// prefix depth, `b` = remaining sibling count).
    RevisitEnqueued = 34,
    /// A worker popped a frontier item another worker pushed (`a` =
    /// prefix depth, `b` = pushing worker).
    FrontierSteal = 35,
    // ── SAT backend layer ────────────────────────────────────────
    /// A CDCL solve of an order encoding started (`a` = variables,
    /// `b` = clauses).
    SatSolveBegin = 36,
    /// Conflicts hit during the solve just finished (`a` = conflict
    /// count, `b` = learned clause count).
    SatConflict = 37,
    /// Restarts taken during the solve just finished (`a` = restart
    /// count).
    SatRestart = 38,
    /// The CDCL solve finished (`a` = 1 if a model was found, `b` =
    /// CEGAR round number).
    SatSolveEnd = 39,
}

impl EventKind {
    /// Layer category, one of `"checker"`, `"mc"`, `"memsim"`, `"stm"`,
    /// `"replay"`, `"monitor"`, `"dpor"`, `"sat"`.
    pub fn cat(self) -> &'static str {
        CATEGORIES[self.cat_index()]
    }

    /// Index of this kind's category into [`CATEGORIES`].
    pub fn cat_index(self) -> usize {
        use EventKind::*;
        match self {
            SearchBegin | SearchEnd | NodeEnter | NodeLeave | Backtrack | Prune
            | WitnessMemoHit | PrefixClaim | PrefixCancel => 0,
            McSchedule | McDedupHit | McMemoHit | McHistoryChecked | McViolation => 1,
            StoreDrain | StaleLoad | StoreForward | CasFence => 2,
            TxnBegin | TxnCommit | TxnAbort | StmCasFail => 3,
            ReplayBegin | ReplayStep | ReplayDivergence | ShrinkRound => 4,
            MonitorIngest | WindowSeal | TriageClear | Escalate | MonitorViolation => 5,
            RaceDetected | SleepSetSkip | RevisitEnqueued | FrontierSteal => 6,
            SatSolveBegin | SatConflict | SatRestart | SatSolveEnd => 7,
        }
    }

    /// Chrome-trace event name. Span pairs share one name so Perfetto
    /// nests them ("search" for begin/end, "txn" for begin/commit/abort).
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            SearchBegin | SearchEnd => "search",
            NodeEnter => "node_enter",
            NodeLeave => "node_leave",
            Backtrack => "backtrack",
            Prune => "prune",
            WitnessMemoHit => "witness_memo_hit",
            PrefixClaim => "prefix_claim",
            PrefixCancel => "prefix_cancel",
            McSchedule => "schedule",
            McDedupHit => "dedup_hit",
            McMemoHit => "verdict_memo_hit",
            McHistoryChecked => "history_checked",
            McViolation => "violation",
            StoreDrain => "store_drain",
            StaleLoad => "stale_load",
            StoreForward => "store_forward",
            CasFence => "cas_fence",
            TxnBegin | TxnCommit | TxnAbort => "txn",
            StmCasFail => "cas_fail",
            ReplayBegin => "replay_begin",
            ReplayStep => "replay_step",
            ReplayDivergence => "replay_divergence",
            ShrinkRound => "shrink_round",
            MonitorIngest => "monitor_ingest",
            WindowSeal => "window_seal",
            TriageClear => "triage_clear",
            Escalate => "escalate",
            MonitorViolation => "monitor_violation",
            RaceDetected => "race_detected",
            SleepSetSkip => "sleep_set_skip",
            RevisitEnqueued => "revisit_enqueued",
            FrontierSteal => "frontier_steal",
            SatSolveBegin | SatSolveEnd => "sat_solve",
            SatConflict => "sat_conflict",
            SatRestart => "sat_restart",
        }
    }

    /// The Chrome-trace phase this kind exports as.
    pub fn phase(self) -> Phase {
        use EventKind::*;
        match self {
            SearchBegin | TxnBegin | SatSolveBegin => Phase::Begin,
            SearchEnd | TxnCommit | TxnAbort | SatSolveEnd => Phase::End,
            _ => Phase::Instant,
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => SearchBegin,
            2 => SearchEnd,
            3 => NodeEnter,
            4 => NodeLeave,
            5 => Backtrack,
            6 => Prune,
            7 => WitnessMemoHit,
            8 => PrefixClaim,
            9 => PrefixCancel,
            10 => McSchedule,
            11 => McDedupHit,
            12 => McMemoHit,
            13 => McHistoryChecked,
            14 => McViolation,
            15 => StoreDrain,
            16 => StaleLoad,
            17 => StoreForward,
            18 => CasFence,
            19 => TxnBegin,
            20 => TxnCommit,
            21 => TxnAbort,
            22 => StmCasFail,
            23 => ReplayBegin,
            24 => ReplayStep,
            25 => ReplayDivergence,
            26 => ShrinkRound,
            27 => MonitorIngest,
            28 => WindowSeal,
            29 => TriageClear,
            30 => Escalate,
            31 => MonitorViolation,
            32 => RaceDetected,
            33 => SleepSetSkip,
            34 => RevisitEnqueued,
            35 => FrontierSteal,
            36 => SatSolveBegin,
            37 => SatConflict,
            38 => SatRestart,
            39 => SatSolveEnd,
            _ => return None,
        })
    }
}

/// A decoded event read back out of the rings.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Nanoseconds since the recorder was created (monotonic clock).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Recording thread (process-unique small integer).
    pub tid: u32,
    /// First kind-specific argument.
    pub a: u64,
    /// Second kind-specific argument.
    pub b: u64,
}

/// One ring slot: four relaxed atomics. `meta == 0` marks a
/// never-written slot (event kinds start at 1).
struct Slot {
    ts: AtomicU64,
    meta: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

struct Shard {
    /// Monotonic write cursor; the slot index is `head & (cap - 1)`.
    head: AtomicUsize,
    slots: Box<[Slot]>,
}

/// The flight recorder: [`TRACE_SHARDS`] single-writer ring buffers.
///
/// Writers are wait-free (a clock read and four relaxed stores). A
/// shard is owned by the threads whose ids map to it; with more
/// recording threads than shards two writers can race on a wrapped
/// slot and record a torn event — acceptable for diagnostics, and
/// impossible below [`TRACE_SHARDS`] concurrent threads.
pub struct FlightRecorder {
    epoch: Instant,
    cap: usize,
    shards: Box<[Shard]>,
    /// Events recorded per [`CATEGORIES`] entry.
    cat_recorded: [AtomicU64; 8],
    /// Events evicted by ring wrap-around per [`CATEGORIES`] entry,
    /// attributed to the *evicted* event's category. Two writers racing
    /// on the same wrapped slot can double- or mis-count an eviction —
    /// the same torn-event tolerance as the slots themselves.
    cat_dropped: [AtomicU64; 8],
}

impl FlightRecorder {
    /// A recorder with the default per-shard capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAP)
    }

    /// A recorder with `cap` slots per shard (rounded up to a power of
    /// two, minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(8).next_power_of_two();
        let shards = (0..TRACE_SHARDS)
            .map(|_| Shard {
                head: AtomicUsize::new(0),
                slots: (0..cap)
                    .map(|_| Slot {
                        ts: AtomicU64::new(0),
                        meta: AtomicU64::new(0),
                        a: AtomicU64::new(0),
                        b: AtomicU64::new(0),
                    })
                    .collect(),
            })
            .collect();
        FlightRecorder {
            epoch: Instant::now(),
            cap,
            shards,
            cat_recorded: Default::default(),
            cat_dropped: Default::default(),
        }
    }

    /// Record one event. Wait-free; wraps (overwriting the shard's
    /// oldest event) when the ring is full.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let tid = thread_id();
        let ts = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let shard = &self.shards[(tid as usize) % TRACE_SHARDS];
        let cursor = shard.head.fetch_add(1, Ordering::Relaxed);
        let slot = &shard.slots[cursor & (self.cap - 1)];
        if cursor >= self.cap {
            // Wrapping: attribute the evicted event before overwriting.
            let old = slot.meta.load(Ordering::Acquire);
            if let Some(evicted) = EventKind::from_u8((old & 0xff) as u8) {
                self.cat_dropped[evicted.cat_index()].fetch_add(1, Ordering::Relaxed);
            }
        }
        slot.ts.store(ts, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.meta
            .store((kind as u64) | (u64::from(tid) << 8), Ordering::Release);
        self.cat_recorded[kind.cat_index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Total events recorded (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed).saturating_sub(self.cap) as u64)
            .sum()
    }

    /// Per-category `(name, recorded, dropped)` rows, in
    /// [`CATEGORIES`] order. Dropped counts attribute each ring
    /// eviction to the overwritten event's category, so they sum to
    /// [`dropped`](Self::dropped) (modulo torn-slot races above
    /// [`TRACE_SHARDS`] concurrent writers).
    pub fn by_category(&self) -> Vec<(&'static str, u64, u64)> {
        CATEGORIES
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    *name,
                    self.cat_recorded[i].load(Ordering::Relaxed),
                    self.cat_dropped[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Snapshot every surviving event, sorted by timestamp. Intended
    /// for export after the recorded work has quiesced; concurrent
    /// writers may leave a torn final event per shard.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let filled = shard.head.load(Ordering::Acquire).min(self.cap);
            for slot in &shard.slots[..filled] {
                let meta = slot.meta.load(Ordering::Acquire);
                if meta == 0 {
                    continue;
                }
                let Some(kind) = EventKind::from_u8((meta & 0xff) as u8) else {
                    continue;
                };
                out.push(Event {
                    ts_ns: slot.ts.load(Ordering::Relaxed),
                    kind,
                    tid: (meta >> 8) as u32,
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Export as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...], "displayTimeUnit": "ns"}`), loadable in
    /// Perfetto or `chrome://tracing`.
    ///
    /// Span events (`"B"`/`"E"`) are emitted only as matched, properly
    /// nested per-thread pairs; orphans from ring wrap-around are
    /// demoted out of the export so the file always balances.
    pub fn chrome_trace(&self) -> Json {
        let events = self.events();
        // Balance pass: per tid, stack-match Begin/End events by index.
        let mut keep = vec![true; events.len()];
        let mut stacks: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, e) in events.iter().enumerate() {
            match e.kind.phase() {
                Phase::Begin => stacks.entry(e.tid).or_default().push(i),
                Phase::End => {
                    let stack = stacks.entry(e.tid).or_default();
                    if stack.pop().is_none() {
                        keep[i] = false; // End without a recorded Begin
                    }
                }
                Phase::Instant => {}
            }
        }
        for stack in stacks.values() {
            for &i in stack {
                keep[i] = false; // Begin whose End was overwritten
            }
        }

        let mut arr = Vec::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            if !keep[i] {
                continue;
            }
            let mut j = Json::obj();
            j.push("name", e.kind.name().into())
                .push("cat", e.kind.cat().into())
                .push(
                    "ph",
                    match e.kind.phase() {
                        Phase::Begin => "B",
                        Phase::End => "E",
                        Phase::Instant => "i",
                    }
                    .into(),
                )
                .push("ts", Json::F64(e.ts_ns as f64 / 1000.0))
                .push("pid", 1u64.into())
                .push("tid", u64::from(e.tid).into());
            if e.kind.phase() == Phase::Instant {
                j.push("s", "t".into());
            }
            let mut args = Json::obj();
            args.push("a", e.a.into()).push("b", e.b.into());
            j.push("args", args);
            arr.push(j);
        }
        let mut out = Json::obj();
        let mut cats = Json::obj();
        for (name, recorded, dropped) in self.by_category() {
            let mut c = Json::obj();
            c.push("recorded", recorded.into())
                .push("dropped", dropped.into());
            cats.push(name, c);
        }
        out.push("traceEvents", Json::Arr(arr))
            .push("displayTimeUnit", "ns".into())
            .push("recorded", self.recorded().into())
            .push("dropped", self.dropped().into())
            .push("categories", cats);
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

// ── global installation ──────────────────────────────────────────────

static ENABLED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicPtr<FlightRecorder> = AtomicPtr::new(std::ptr::null_mut());
/// Every recorder ever installed, kept alive for the process lifetime
/// so pointers loaded from [`INSTALLED`] can never dangle. Installs
/// happen a handful of times per process (report start, tests), so the
/// leak is bounded and deliberate.
static KEEP: Mutex<Vec<Arc<FlightRecorder>>> = Mutex::new(Vec::new());

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u32 = (NEXT_TID.fetch_add(1, Ordering::Relaxed) & 0xffff_ffff) as u32;
}

/// Process-unique id of the calling thread (small, assigned on first
/// use).
pub fn thread_id() -> u32 {
    TID.with(|t| *t)
}

/// Install `recorder` as the process-global flight recorder; event
/// sites start recording into it immediately. Replaces any previous
/// recorder (which stays alive but stops receiving events).
pub fn install(recorder: Arc<FlightRecorder>) {
    let raw = Arc::as_ptr(&recorder) as *mut FlightRecorder;
    KEEP.lock().unwrap().push(recorder);
    INSTALLED.store(raw, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording. The last installed recorder remains readable via
/// the caller's own `Arc`.
pub fn uninstall() {
    ENABLED.store(false, Ordering::Release);
    INSTALLED.store(std::ptr::null_mut(), Ordering::Release);
}

/// Is a recorder currently installed?
pub fn recording() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Record an event on the installed recorder, if any. This is the hook
/// the hot paths call: with no recorder installed it is one relaxed
/// load and a predictable branch.
#[inline]
pub fn emit(kind: EventKind, a: u64, b: u64) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    emit_installed(kind, a, b);
}

#[cold]
fn emit_installed(kind: EventKind, a: u64, b: u64) {
    let p = INSTALLED.load(Ordering::Acquire);
    if p.is_null() {
        return;
    }
    // SAFETY: every pointer stored into INSTALLED comes from an Arc
    // pushed into KEEP, which is never drained, so the allocation
    // outlives the process.
    unsafe { (*p).record(kind, a, b) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_exports_no_events() {
        let r = FlightRecorder::new();
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.dropped(), 0);
        assert!(r.events().is_empty());
        let j = r.chrome_trace();
        match j.get("traceEvents") {
            Some(Json::Arr(a)) => assert!(a.is_empty()),
            other => panic!("bad traceEvents: {other:?}"),
        }
    }

    #[test]
    fn events_round_trip_and_sort_monotonic() {
        let r = FlightRecorder::with_capacity(64);
        r.record(EventKind::SearchBegin, 5, 0);
        r.record(EventKind::NodeEnter, 1, 0);
        r.record(EventKind::Backtrack, 0, 0);
        r.record(EventKind::SearchEnd, 9, 1);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(evs[0].kind, EventKind::SearchBegin);
        assert_eq!(evs[0].a, 5);
        assert_eq!(evs[3].b, 1);
        // All on the same thread.
        assert!(evs.iter().all(|e| e.tid == evs[0].tid));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20 {
            r.record(EventKind::Prune, i, 0);
        }
        assert_eq!(r.recorded(), 20);
        assert_eq!(r.dropped(), 12);
        assert_eq!(r.events().len(), 8);
    }

    #[test]
    fn per_category_counts_reconcile_with_totals() {
        let r = FlightRecorder::with_capacity(8);
        // 6 checker events, then 14 dpor events: the dpor burst evicts
        // all checker events plus its own overflow.
        for i in 0..6 {
            r.record(EventKind::Prune, i, 0);
        }
        for i in 0..14 {
            r.record(EventKind::SleepSetSkip, i, 0);
        }
        let by_cat = r.by_category();
        let recorded: u64 = by_cat.iter().map(|(_, rec, _)| rec).sum();
        let dropped: u64 = by_cat.iter().map(|(_, _, d)| d).sum();
        assert_eq!(recorded, r.recorded());
        assert_eq!(dropped, r.dropped());
        let get = |name: &str| by_cat.iter().find(|(n, _, _)| *n == name).copied().unwrap();
        assert_eq!(get("checker"), ("checker", 6, 6));
        assert_eq!(get("dpor"), ("dpor", 14, 6));
        assert_eq!(get("stm"), ("stm", 0, 0));

        let j = r.chrome_trace();
        let cats = j.get("categories").expect("categories section");
        let dpor = cats.get("dpor").expect("dpor row");
        assert_eq!(dpor.get("recorded").and_then(Json::as_u64), Some(14));
        assert_eq!(dpor.get("dropped").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn chrome_trace_balances_spans() {
        let r = FlightRecorder::with_capacity(64);
        // An End with no Begin (simulating wrap), then a good pair,
        // then an unclosed Begin.
        r.record(EventKind::SearchEnd, 0, 0);
        r.record(EventKind::TxnBegin, 1, 0);
        r.record(EventKind::TxnCommit, 1, 0);
        r.record(EventKind::SearchBegin, 2, 0);
        let j = r.chrome_trace();
        let Some(Json::Arr(evs)) = j.get("traceEvents") else {
            panic!("no traceEvents")
        };
        let phases: Vec<String> = evs
            .iter()
            .map(|e| match e.get("ph") {
                Some(Json::Str(s)) => s.clone(),
                _ => panic!("missing ph"),
            })
            .collect();
        assert_eq!(phases, vec!["B", "E"], "only the matched pair survives");
    }

    #[test]
    fn every_category_is_exported() {
        let r = FlightRecorder::with_capacity(64);
        r.record(EventKind::NodeEnter, 0, 0);
        r.record(EventKind::McDedupHit, 0, 0);
        r.record(EventKind::StoreDrain, 0, 0);
        r.record(EventKind::StmCasFail, 0, 0);
        r.record(EventKind::ReplayStep, 0, 0);
        r.record(EventKind::WindowSeal, 0, 0);
        r.record(EventKind::SleepSetSkip, 0, 0);
        r.record(EventKind::SatConflict, 0, 0);
        let cats: std::collections::HashSet<&'static str> =
            r.events().iter().map(|e| e.kind.cat()).collect();
        assert_eq!(cats.len(), 8);
        for c in [
            "checker", "mc", "memsim", "stm", "replay", "monitor", "dpor", "sat",
        ] {
            assert!(cats.contains(c), "missing {c}");
        }
    }

    #[test]
    fn sat_solve_span_nests() {
        let r = FlightRecorder::with_capacity(64);
        r.record(EventKind::SatSolveBegin, 10, 42);
        r.record(EventKind::SatConflict, 3, 2);
        r.record(EventKind::SatSolveEnd, 1, 0);
        let j = r.chrome_trace();
        let Some(Json::Arr(evs)) = j.get("traceEvents") else {
            panic!("no traceEvents")
        };
        let phases: Vec<String> = evs
            .iter()
            .map(|e| match e.get("ph") {
                Some(Json::Str(s)) => s.clone(),
                _ => panic!("missing ph"),
            })
            .collect();
        assert_eq!(phases, vec!["B", "i", "E"]);
        assert!(evs
            .iter()
            .all(|e| e.get("cat") == Some(&Json::Str("sat".into()))));
    }

    #[test]
    fn install_gates_emit() {
        // Uninstalled: emit is a no-op (cannot observe directly, but
        // must not crash), and recording() reflects state transitions.
        emit(EventKind::Prune, 0, 0);
        let r = Arc::new(FlightRecorder::with_capacity(256));
        install(r.clone());
        assert!(recording());
        emit(EventKind::CasFence, 0xfeed, 1);
        uninstall();
        assert!(!recording());
        emit(EventKind::CasFence, 0xdead, 2); // dropped
        let evs = r.events();
        assert!(
            evs.iter()
                .any(|e| e.kind == EventKind::CasFence && e.a == 0xfeed),
            "installed emit must reach the recorder"
        );
        assert!(
            !evs.iter().any(|e| e.a == 0xdead),
            "uninstalled emit must not"
        );
    }
}
