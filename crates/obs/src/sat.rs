//! Counters for the SAT serialization-order backend.
//!
//! `jungle_core::encode` compiles the opacity/SGLA order search into
//! CNF, solves it with `jungle-sat`, and certifies every model against
//! the DFS legality checker. This is the serializable record of that
//! work: encoding sizes, CDCL effort, CEGAR refinement rounds, and a
//! per-check wall-clock histogram ([`HistSnapshot`]), aggregated the
//! same way as the other sections of
//! [`MetricsSnapshot`](crate::snapshot::MetricsSnapshot).

use crate::hist::HistSnapshot;
use crate::json::{Json, ToJson};

/// Aggregated SAT-backend counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SatStats {
    /// SAT-backed checks completed (one per history × kind).
    pub solved: u64,
    /// Positive verdicts whose decoded witness was re-validated by the
    /// DFS legality routine (must equal the number of positive
    /// verdicts — a SAT "yes" is never trusted uncertified).
    pub certified: u64,
    /// CEGAR refinement rounds (solver models rejected by
    /// certification and blocked with a minimal core).
    pub cegar_rounds: u64,
    /// Order variables allocated across all encodings.
    pub vars: u64,
    /// Input clauses encoded (totality/transitivity/precedence plus
    /// blocking clauses; learned clauses are counted separately).
    pub clauses: u64,
    /// CDCL branching decisions.
    pub decisions: u64,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Solver restarts.
    pub restarts: u64,
    /// Clauses learned from conflicts.
    pub learned: u64,
    /// Per-check wall time, nanoseconds.
    pub wall: HistSnapshot,
}

impl SatStats {
    /// Merge another run's counters into this one.
    pub fn absorb(&mut self, other: &SatStats) {
        self.solved += other.solved;
        self.certified += other.certified;
        self.cegar_rounds += other.cegar_rounds;
        self.vars += other.vars;
        self.clauses += other.clauses;
        self.decisions += other.decisions;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.wall.absorb(&other.wall);
    }

    /// Rebuild from the [`ToJson`] form.
    pub fn from_json(j: &Json) -> Result<SatStats, String> {
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("sat: missing or invalid '{k}'"))
        };
        Ok(SatStats {
            solved: num("solved")?,
            certified: num("certified")?,
            cegar_rounds: num("cegar_rounds")?,
            vars: num("vars")?,
            clauses: num("clauses")?,
            decisions: num("decisions")?,
            conflicts: num("conflicts")?,
            propagations: num("propagations")?,
            restarts: num("restarts")?,
            learned: num("learned")?,
            wall: HistSnapshot::from_json(
                j.get("wall")
                    .ok_or_else(|| "sat: missing 'wall'".to_string())?,
            )?,
        })
    }
}

impl ToJson for SatStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("solved", self.solved.into())
            .push("certified", self.certified.into())
            .push("cegar_rounds", self.cegar_rounds.into())
            .push("vars", self.vars.into())
            .push("clauses", self.clauses.into())
            .push("decisions", self.decisions.into())
            .push("conflicts", self.conflicts.into())
            .push("propagations", self.propagations.into())
            .push("restarts", self.restarts.into())
            .push("learned", self.learned.into())
            .push("wall", self.wall.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_merges_hist() {
        let mut a = SatStats {
            solved: 1,
            conflicts: 3,
            ..Default::default()
        };
        a.wall.record(100);
        let mut b = SatStats {
            solved: 2,
            certified: 1,
            ..Default::default()
        };
        b.wall.record(5_000);
        a.absorb(&b);
        assert_eq!(a.solved, 3);
        assert_eq!(a.certified, 1);
        assert_eq!(a.conflicts, 3);
        assert_eq!(a.wall.count, 2);
        assert_eq!(a.wall.max, 5_000);
    }

    #[test]
    fn json_round_trip() {
        let mut s = SatStats {
            solved: 4,
            certified: 2,
            cegar_rounds: 1,
            vars: 10,
            clauses: 42,
            decisions: 7,
            conflicts: 3,
            propagations: 99,
            restarts: 1,
            learned: 3,
            ..Default::default()
        };
        s.wall.record(123);
        s.wall.record(456_789);
        let parsed = Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(SatStats::from_json(&parsed).unwrap(), s);
    }
}
