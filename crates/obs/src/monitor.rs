//! Counters for the streaming opacity monitor.
//!
//! One [`MonitorStats`] block summarizes a monitoring run: how many
//! operation events were ingested (and how many the tap dropped, which
//! is always *counted*, never silent), how many windows were sealed,
//! how the triage tier did (cleared vs escalated to the full checker,
//! memo hits among escalations), violations found, the deepest queue
//! backlog observed, and where the time went. The monitor crate fills
//! it in; [`MetricsSnapshot`](crate::MetricsSnapshot) carries it into
//! the report JSON and the run ledger.

use crate::hist::HistSnapshot;
use crate::json::{Json, ToJson};

/// Aggregated counters of one streaming-monitor run.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct MonitorStats {
    /// Operation events ingested from the tap ring.
    pub ops_ingested: u64,
    /// Events the tap ring dropped under [`Backpressure::Drop`]
    /// (exact; `0` under `Block`).
    ///
    /// [`Backpressure::Drop`]: crate::ring::Backpressure::Drop
    pub events_dropped: u64,
    /// Windows sealed and checked.
    pub windows_sealed: u64,
    /// Windows the polynomial triage tier proved opaque.
    pub triage_cleared: u64,
    /// Windows escalated to the full backtracking checker.
    pub escalated: u64,
    /// Escalations answered by the shared verdict memo instead of a
    /// fresh search (subset of `escalated`).
    pub memo_hits: u64,
    /// Windows the full checker found in violation.
    pub violations: u64,
    /// Deepest tap-ring backlog observed at a window seal.
    pub max_queue_depth: u64,
    /// Nanoseconds spent in the triage tier.
    pub triage_ns: u64,
    /// Nanoseconds spent in escalated full checks.
    pub escalate_ns: u64,
    /// Wall-clock nanoseconds of the whole monitoring run.
    pub wall_ns: u64,
    /// Per-window triage latency distribution (one sample per sealed
    /// window).
    pub triage_window_ns: HistSnapshot,
    /// Per-window escalation latency distribution (one sample per
    /// escalated check, memo hits included).
    pub escalate_window_ns: HistSnapshot,
}

impl MonitorStats {
    /// Fraction of sealed windows that escaped the triage tier
    /// (`escalated / windows_sealed`), `0` when nothing was sealed.
    pub fn escalation_rate(&self) -> f64 {
        if self.windows_sealed == 0 {
            0.0
        } else {
            self.escalated as f64 / self.windows_sealed as f64
        }
    }

    /// Ingested operations per second, `0` when no time was measured.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.ops_ingested as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Per-window check latency across both tiers: every window
    /// contributes its triage time, and escalated windows additionally
    /// contribute each full-check time.
    pub fn window_hist(&self) -> HistSnapshot {
        let mut h = self.triage_window_ns.clone();
        h.absorb(&self.escalate_window_ns);
        h
    }

    /// 99th-percentile per-window check latency (see
    /// [`window_hist`](Self::window_hist)); the ledger field
    /// `p99_window_ns`.
    pub fn p99_window_ns(&self) -> u64 {
        self.window_hist().p99()
    }

    /// Fold `other` into `self` (sums, except `max_queue_depth` which
    /// takes the max).
    pub fn absorb(&mut self, other: &MonitorStats) {
        self.ops_ingested += other.ops_ingested;
        self.events_dropped += other.events_dropped;
        self.windows_sealed += other.windows_sealed;
        self.triage_cleared += other.triage_cleared;
        self.escalated += other.escalated;
        self.memo_hits += other.memo_hits;
        self.violations += other.violations;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.triage_ns += other.triage_ns;
        self.escalate_ns += other.escalate_ns;
        self.wall_ns += other.wall_ns;
        self.triage_window_ns.absorb(&other.triage_window_ns);
        self.escalate_window_ns.absorb(&other.escalate_window_ns);
    }
}

impl ToJson for MonitorStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("ops_ingested", self.ops_ingested.into())
            .push("events_dropped", self.events_dropped.into())
            .push("windows_sealed", self.windows_sealed.into())
            .push("triage_cleared", self.triage_cleared.into())
            .push("escalated", self.escalated.into())
            .push("memo_hits", self.memo_hits.into())
            .push("violations", self.violations.into())
            .push("escalation_rate", Json::F64(self.escalation_rate()))
            .push("max_queue_depth", self.max_queue_depth.into())
            .push("triage_ns", self.triage_ns.into())
            .push("escalate_ns", self.escalate_ns.into())
            .push("wall_ns", self.wall_ns.into())
            .push("p99_window_ns", self.p99_window_ns().into())
            .push("triage_window_ns", self.triage_window_ns.to_json())
            .push("escalate_window_ns", self.escalate_window_ns.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = MonitorStats::default();
        assert_eq!(s.escalation_rate(), 0.0);
        assert_eq!(s.ops_per_sec(), 0.0);
        s.windows_sealed = 100;
        s.escalated = 3;
        s.ops_ingested = 1_000;
        s.wall_ns = 500_000_000; // 0.5 s
        assert!((s.escalation_rate() - 0.03).abs() < 1e-12);
        assert!((s.ops_per_sec() - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = MonitorStats {
            ops_ingested: 10,
            windows_sealed: 2,
            max_queue_depth: 5,
            ..Default::default()
        };
        let b = MonitorStats {
            ops_ingested: 7,
            windows_sealed: 1,
            escalated: 1,
            max_queue_depth: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.ops_ingested, 17);
        assert_eq!(a.windows_sealed, 3);
        assert_eq!(a.escalated, 1);
        assert_eq!(a.max_queue_depth, 5);
    }

    #[test]
    fn json_has_rate_and_counters() {
        let s = MonitorStats {
            ops_ingested: 4,
            windows_sealed: 2,
            escalated: 1,
            ..Default::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("ops_ingested"), Some(&Json::U64(4)));
        assert_eq!(j.get("escalation_rate"), Some(&Json::F64(0.5)));
        assert_eq!(j.get("events_dropped"), Some(&Json::U64(0)));
        assert!(j.get("p99_window_ns").is_some());
        assert!(j.get("triage_window_ns").unwrap().get("count").is_some());
    }

    #[test]
    fn window_hist_merges_tiers() {
        let mut s = MonitorStats::default();
        for _ in 0..99 {
            s.triage_window_ns.record(1_000);
        }
        s.escalate_window_ns.record(1_000_000);
        let h = s.window_hist();
        assert_eq!(h.count, 100);
        assert_eq!(h.max, 1_000_000);
        // The single slow escalation is exactly the tail percentile.
        assert!(s.p99_window_ns() >= s.triage_window_ns.p50());
        assert!(s.p99_window_ns() <= h.max);

        let mut t = MonitorStats::default();
        t.triage_window_ns.record(5);
        s.absorb(&t);
        assert_eq!(s.triage_window_ns.count, 100);
    }
}
