//! Log-bucketed latency histograms (HDR-style).
//!
//! The profiler and the DPOR waste attribution need percentile-grade
//! latency evidence, not just sums: a mean hides the p99 window that
//! makes the streaming monitor fall behind. Buckets are power-of-two
//! groups subdivided into [`SUB`] linear sub-buckets ([`SUB_BITS`]
//! mantissa bits), so relative error is bounded at `1/SUB` (6.25%)
//! while the whole `u64` nanosecond range fits in [`BUCKETS`] slots.
//!
//! Two representations share the bucket scheme:
//!
//! * [`Histogram`] — atomic, lock-free to [`Histogram::record`] into
//!   from any thread (one relaxed `fetch_add` per bucket plus exact
//!   count/sum/max maintenance).
//! * [`HistSnapshot`] — a plain, sparse, mergeable value type; the
//!   serialized form ([`ToJson`] plus [`HistSnapshot::from_json`]) and
//!   the thing single-threaded recorders (the monitor) use directly.
//!
//! Merging shards with [`HistSnapshot::absorb`] is exact: bucket
//! counts add, so a merge of per-thread snapshots equals the snapshot
//! of one histogram fed every sample — the property test pins this.
//! Percentiles return the *lower bound* of the covering bucket, which
//! makes `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max` hold unconditionally (the
//! tracked max is exact, and the lower bound of the highest non-empty
//! bucket never exceeds the largest sample in it).

use crate::json::{Json, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};

/// Mantissa bits kept per power-of-two group.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two group (`2^SUB_BITS`).
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Bucket index for a value: identity below [`SUB`], then
/// `group * SUB + sub` where `group` counts powers of two above the
/// mantissa and `sub` is the top [`SUB_BITS`] bits after the leading
/// one.
pub fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // h >= SUB_BITS
    let group = (h - SUB_BITS + 1) as u64;
    let sub = (v >> (h - SUB_BITS)) - SUB;
    (group * SUB + sub) as usize
}

/// Smallest value mapping to `index` — the value percentiles report.
pub fn bucket_low(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        return index;
    }
    let group = index / SUB;
    let sub = index % SUB;
    (SUB + sub) << (group - 1)
}

/// A lock-free, multi-producer latency histogram.
///
/// `record` is wait-free per bucket (relaxed `fetch_add`); `sum` uses
/// a saturating CAS loop so recording `u64::MAX` cannot wrap the
/// running total. Readers take a [`snapshot`](Histogram::snapshot)
/// and work with the plain value type.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Safe from any number of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a u64::MAX sample must leave the
        // sum pinned at u64::MAX, not corrupt it.
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy the current contents into a plain snapshot. Approximate
    /// (not a consistent cut) while writers are active.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut s = HistSnapshot::default();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                s.buckets.push((i as u32, n));
            }
        }
        s.count = self.count.load(Ordering::Relaxed);
        s.sum = self.sum.load(Ordering::Relaxed);
        s.max = self.max.load(Ordering::Relaxed);
        s
    }
}

/// A plain, sparse, mergeable histogram value.
///
/// Buckets are `(index, count)` pairs sorted by index; only non-empty
/// buckets are stored, so idle histograms serialize to a few bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistSnapshot {
    /// Non-empty buckets, sorted by bucket index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Exact maximum sample (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Record one sample (single-threaded counterpart of
    /// [`Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        let idx = bucket_of(v) as u32;
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Merge another snapshot in. Exact: bucket counts add, the max is
    /// the max of maxes, so merging per-shard snapshots equals one
    /// histogram fed every sample.
    pub fn absorb(&mut self, other: &HistSnapshot) {
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Is the histogram empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`). Returns 0 for an empty histogram. Monotone
    /// in `q` and never exceeds [`max`](HistSnapshot::max).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_low(idx as usize);
            }
        }
        self.max
    }

    /// Median (bucket lower bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th percentile (bucket lower bound).
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th percentile (bucket lower bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th percentile (bucket lower bound).
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Rebuild a snapshot from its [`ToJson`] form.
    pub fn from_json(j: &Json) -> Result<HistSnapshot, String> {
        let num = |k: &str| {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("hist: missing or invalid '{k}'"))
        };
        let mut s = HistSnapshot {
            buckets: Vec::new(),
            count: num("count")?,
            sum: num("sum")?,
            max: num("max")?,
        };
        let Some(Json::Arr(pairs)) = j.get("buckets") else {
            return Err("hist: missing 'buckets' array".into());
        };
        for pair in pairs {
            let Json::Arr(iv) = pair else {
                return Err("hist: bucket entry is not a pair".into());
            };
            let (Some(i), Some(n)) = (
                iv.first().and_then(Json::as_u64),
                iv.get(1).and_then(Json::as_u64),
            ) else {
                return Err("hist: bucket pair is not numeric".into());
            };
            if i as usize >= BUCKETS {
                return Err(format!("hist: bucket index {i} out of range"));
            }
            s.buckets.push((i as u32, n));
        }
        s.buckets.sort_unstable_by_key(|&(i, _)| i);
        Ok(s)
    }
}

impl ToJson for HistSnapshot {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("count", self.count.into())
            .push("sum", self.sum.into())
            .push("max", self.max.into())
            .push("p50", self.p50().into())
            .push("p90", self.p90().into())
            .push("p99", self.p99().into())
            .push("p999", self.p999().into())
            .push(
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, n)| Json::Arr(vec![Json::U64(i as u64), Json::U64(n)]))
                        .collect(),
                ),
            );
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_scheme_is_contiguous_and_ordered() {
        // Every value maps into range; bucket lower bounds are the
        // smallest value of their bucket; indices are monotone in v.
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let idx = bucket_of(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "bucket index must be monotone in value");
            last = idx;
            assert!(bucket_low(idx) <= v, "lower bound exceeds member {v}");
            if idx + 1 < BUCKETS {
                assert!(bucket_low(idx + 1) > v, "{v} belongs to a later bucket");
            }
        }
        // Exhaustive small range: identity below SUB, bounded error above.
        for v in 0..SUB {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
        for v in SUB..4096 {
            let low = bucket_low(bucket_of(v));
            assert!(low <= v && (v - low) as f64 <= v as f64 / SUB as f64);
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bounded_by_max() {
        let mut s = HistSnapshot::default();
        for v in [3u64, 3, 17, 90, 1_000, 1_001, 50_000, 1_000_000] {
            s.record(v);
        }
        let (p50, p90, p99, p999) = (s.p50(), s.p90(), s.p99(), s.p999());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
        assert!(p999 <= s.max);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn u64_max_saturates_sum_and_tracks_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.count, 3);
        assert!(s.percentile(1.0) <= s.max);
    }

    #[test]
    fn concurrent_records_merge_like_serial() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let par = h.snapshot();
        let mut serial = HistSnapshot::default();
        for t in 0..4u64 {
            for i in 0..1_000u64 {
                serial.record(t * 10_000 + i);
            }
        }
        assert_eq!(par, serial);
    }

    #[test]
    fn absorb_equals_single_histogram() {
        let samples = [1u64, 5, 16, 17, 200, 5_000, 123_456_789];
        let mut whole = HistSnapshot::default();
        let mut a = HistSnapshot::default();
        let mut b = HistSnapshot::default();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.absorb(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn json_round_trip() {
        let mut s = HistSnapshot::default();
        for v in [0u64, 9, 63, 4_096, 77_777, u64::MAX] {
            s.record(v);
        }
        let j = s.to_json();
        let parsed = Json::parse(&j.to_string()).unwrap();
        assert_eq!(HistSnapshot::from_json(&parsed).unwrap(), s);
        // Serialized percentiles match the accessors.
        assert_eq!(parsed.get("p99").unwrap().as_u64().unwrap(), s.p99());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = HistSnapshot::default();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }
}
