//! A tiny JSON document model with compact serialization.
//!
//! The workspace builds offline, so `serde`/`serde_json` are not
//! available; every metrics type serializes through this module
//! instead. Output is always valid, compact JSON — object keys appear
//! in insertion order so snapshots diff cleanly across runs.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the common case for counters).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for incremental building via [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Fetch a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) if x.is_finite() => write!(f, "{x}"),
            Json::F64(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{}", escape(k), v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let mut j = Json::obj();
        j.push("name", "fig\"1\"".into())
            .push("count", 3u64.into())
            .push("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig\"1\"","count":3,"flags":[true,null]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(escape("a\u{1}b\nc"), "a\\u0001b\\nc");
    }
}
