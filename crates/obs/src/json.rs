//! A tiny JSON document model with compact serialization.
//!
//! The workspace builds offline, so `serde`/`serde_json` are not
//! available; every metrics type serializes through this module
//! instead. Output is always valid, compact JSON — object keys appear
//! in insertion order so snapshots diff cleanly across runs.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (the common case for counters).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values serialize as `null`.
    F64(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for incremental building via [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a key/value pair; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Self {
        match self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Fetch a field of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::I64(n) if *n >= 0 => Some(*n as u64),
            Json::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::I64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a JSON document. Accepts exactly one value with optional
    /// surrounding whitespace; numbers parse to `U64`/`I64` when
    /// integral and in range, `F64` otherwise.
    ///
    /// This is the read half of the offline serialization story: the
    /// ledger and the persisted verdict memo re-read documents written
    /// by [`Json`]'s `Display` impl (and must also tolerate hand-edited
    /// files), so round-tripping `parse(x.to_string()) == x` is the
    /// contract the tests pin down.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", char::from(other))),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number '{text}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::U64(n as u64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Escape a string for inclusion in a JSON document (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) if x.is_finite() => write!(f, "{x}"),
            Json::F64(_) => write!(f, "null"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{}", escape(k), v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Types that render themselves as a [`Json`] value.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_rendering() {
        let mut j = Json::obj();
        j.push("name", "fig\"1\"".into())
            .push("count", 3u64.into())
            .push("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(
            j.to_string(),
            r#"{"name":"fig\"1\"","count":3,"flags":[true,null]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(escape("a\u{1}b\nc"), "a\\u0001b\\nc");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let mut j = Json::obj();
        j.push("name", "fig \"1\"\nx".into())
            .push("count", 3u64.into())
            .push("neg", Json::I64(-7))
            .push("rate", Json::F64(0.5))
            .push(
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Str("a,b".into())]),
            )
            .push("empty_obj", Json::obj())
            .push("empty_arr", Json::Arr(vec![]));
        let text = j.to_string();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn parse_tolerates_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::U64(1), Json::F64(2.5), Json::Str("A\t".into())])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn numeric_accessors() {
        assert_eq!(Json::U64(7).as_u64(), Some(7));
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::F64(4.0).as_u64(), Some(4));
        assert_eq!(Json::F64(4.5).as_u64(), None);
        assert_eq!(Json::U64(2).as_f64(), Some(2.0));
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::Null.as_f64(), None);
    }
}
