//! Per-algorithm TM runtime metrics.
//!
//! [`TmMetrics`] is the live, thread-safe handle an STM's contexts
//! share (each worker bumps its own shard); [`TmSnapshot`] is the
//! plain-value read-out. The model-checking layer produces
//! `TmSnapshot`s directly by classifying trace instructions, so the
//! same shape describes both real and interpreted executions.

use crate::counter::Counter;
use crate::json::{Json, ToJson};

/// Live counters for one TM algorithm instance. Cheap to share via
/// `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct TmMetrics {
    /// Transactions committed.
    pub commits: Counter,
    /// Transactions aborted (each retry of an `atomically` body counts).
    pub aborts: Counter,
    /// CAS instructions that failed.
    pub cas_failures: Counter,
    /// Successful lock acquisitions (global lock or per-var locks).
    pub lock_acquisitions: Counter,
    /// Spin-loop iterations while waiting for a lock.
    pub lock_spins: Counter,
    /// Transactional reads.
    pub txn_reads: Counter,
    /// Transactional writes.
    pub txn_writes: Counter,
    /// Non-transactional ops that ran extra instrumentation.
    pub nontxn_instrumented: Counter,
    /// Non-transactional ops compiled to the bare access.
    pub nontxn_uninstrumented: Counter,
}

impl TmMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy the current values out.
    pub fn snapshot(&self) -> TmSnapshot {
        TmSnapshot {
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            cas_failures: self.cas_failures.get(),
            lock_acquisitions: self.lock_acquisitions.get(),
            lock_spins: self.lock_spins.get(),
            txn_reads: self.txn_reads.get(),
            txn_writes: self.txn_writes.get(),
            nontxn_instrumented: self.nontxn_instrumented.get(),
            nontxn_uninstrumented: self.nontxn_uninstrumented.get(),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.commits.reset();
        self.aborts.reset();
        self.cas_failures.reset();
        self.lock_acquisitions.reset();
        self.lock_spins.reset();
        self.txn_reads.reset();
        self.txn_writes.reset();
        self.nontxn_instrumented.reset();
        self.nontxn_uninstrumented.reset();
    }
}

/// Point-in-time values of a [`TmMetrics`] (or counts derived from a
/// model-checker trace).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TmSnapshot {
    /// See [`TmMetrics::commits`].
    pub commits: u64,
    /// See [`TmMetrics::aborts`].
    pub aborts: u64,
    /// See [`TmMetrics::cas_failures`].
    pub cas_failures: u64,
    /// See [`TmMetrics::lock_acquisitions`].
    pub lock_acquisitions: u64,
    /// See [`TmMetrics::lock_spins`].
    pub lock_spins: u64,
    /// See [`TmMetrics::txn_reads`].
    pub txn_reads: u64,
    /// See [`TmMetrics::txn_writes`].
    pub txn_writes: u64,
    /// See [`TmMetrics::nontxn_instrumented`].
    pub nontxn_instrumented: u64,
    /// See [`TmMetrics::nontxn_uninstrumented`].
    pub nontxn_uninstrumented: u64,
}

impl TmSnapshot {
    /// Fold another snapshot into this one (all fields add).
    pub fn absorb(&mut self, other: &TmSnapshot) {
        self.commits += other.commits;
        self.aborts += other.aborts;
        self.cas_failures += other.cas_failures;
        self.lock_acquisitions += other.lock_acquisitions;
        self.lock_spins += other.lock_spins;
        self.txn_reads += other.txn_reads;
        self.txn_writes += other.txn_writes;
        self.nontxn_instrumented += other.nontxn_instrumented;
        self.nontxn_uninstrumented += other.nontxn_uninstrumented;
    }
}

impl ToJson for TmSnapshot {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("commits", self.commits.into())
            .push("aborts", self.aborts.into())
            .push("cas_failures", self.cas_failures.into())
            .push("lock_acquisitions", self.lock_acquisitions.into())
            .push("lock_spins", self.lock_spins.into())
            .push("txn_reads", self.txn_reads.into())
            .push("txn_writes", self.txn_writes.into())
            .push("nontxn_instrumented", self.nontxn_instrumented.into())
            .push("nontxn_uninstrumented", self.nontxn_uninstrumented.into());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn snapshot_reads_counters() {
        let m = TmMetrics::new();
        m.commits.inc(0);
        m.commits.inc(1);
        m.aborts.inc(0);
        m.nontxn_uninstrumented.add(2, 5);
        let s = m.snapshot();
        assert_eq!(s.commits, 2);
        assert_eq!(s.aborts, 1);
        assert_eq!(s.nontxn_uninstrumented, 5);
        m.reset();
        assert_eq!(m.snapshot(), TmSnapshot::default());
    }

    #[test]
    fn shared_handle_across_threads() {
        let m = Arc::new(TmMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|pid| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.commits.inc(pid);
                        m.txn_reads.add(pid, 3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.commits, 4000);
        assert_eq!(s.txn_reads, 12_000);
    }

    #[test]
    fn absorb_adds_fields() {
        let mut a = TmSnapshot {
            commits: 1,
            cas_failures: 2,
            ..Default::default()
        };
        a.absorb(&TmSnapshot {
            commits: 3,
            lock_spins: 4,
            ..Default::default()
        });
        assert_eq!(a.commits, 4);
        assert_eq!(a.cas_failures, 2);
        assert_eq!(a.lock_spins, 4);
    }
}
