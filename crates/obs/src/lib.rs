//! `jungle-obs` — observability primitives for the jungle workspace.
//!
//! The workspace reproduces "Transactions in the Jungle" (Guerraoui et
//! al., SPAA 2010): TM algorithms whose cost model turns on *how many*
//! instrumented steps each operation takes, and checkers whose cost is
//! an exponential search. This crate gives every layer a common,
//! dependency-free vocabulary for counting that work:
//!
//! * [`counter`] — sharded, cache-padded atomic counters for
//!   multi-threaded producers (the real STMs).
//! * [`span`] — lightweight wall-clock spans, including the RAII
//!   [`span::ScopedSpan`] guard.
//! * [`hist`] — log-bucketed, lock-free, mergeable latency histograms
//!   with `p50/p90/p99/p999` accessors.
//! * [`profile`] — the hierarchical phase profiler: enter/exit guards
//!   folded into a self/total-time tree, zero-cost when uninstalled.
//! * [`search::SearchStats`] — per-search counters for the opacity and
//!   SGLA checkers (nodes, backtracks, prune hits, orders, depth).
//! * [`tm::TmMetrics`] / [`tm::TmSnapshot`] — per-algorithm commit /
//!   abort / CAS-failure / instrumentation counters.
//! * [`sim::MachineStats`] / [`sim::McStats`] — simulator steps,
//!   store-buffer flushes and occupancy, schedules explored.
//! * [`snapshot::MetricsSnapshot`] — the serializable aggregate the
//!   report binary emits.
//! * [`trace`] — the flight recorder: per-thread lock-free ring
//!   buffers of structured events from every layer, exported as
//!   Chrome-trace-event JSON.
//! * [`ledger`] — the persistent run ledger (`.jungle/ledger.jsonl`)
//!   and its regression gates.
//! * [`ring::EventRing`] — a bounded MPSC event ring with an explicit
//!   backpressure policy (block vs drop-with-exact-counter), the
//!   channel between live STM taps and the streaming monitor.
//! * [`monitor::MonitorStats`] — per-run counters of the streaming
//!   opacity monitor (ingest, windows, triage/escalation, violations).
//! * [`sat::SatStats`] — counters of the SAT serialization-order
//!   backend (encoding sizes, CDCL effort, CEGAR rounds, wall hist).
//!
//! Collection is **off by default** in the hot paths: the STMs take an
//! `Option<Arc<TmMetrics>>` and skip all counting when it is `None`,
//! wall-clock timing only happens in explicit `*_traced` checker
//! entry points, and flight-recorder event sites reduce to a single
//! relaxed load unless a recorder is [`trace::install`]ed. The build
//! is fully offline, so serialization is a small hand-rolled JSON
//! model ([`json`]) rather than `serde`.

#![warn(missing_docs)]

pub mod counter;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod monitor;
pub mod profile;
pub mod ring;
pub mod sat;
pub mod search;
pub mod sim;
pub mod snapshot;
pub mod span;
pub mod tm;
pub mod trace;

pub use counter::{CachePadded, Counter, SHARDS};
pub use hist::{HistSnapshot, Histogram};
pub use json::{Json, ToJson};
pub use ledger::{LedgerEntry, Tolerances};
pub use monitor::MonitorStats;
pub use profile::{PhaseGuard, ProfileNode, Profiler};
pub use ring::{Backpressure, EventRing};
pub use sat::SatStats;
pub use search::SearchStats;
pub use sim::{DporStats, MachineStats, McStats};
pub use snapshot::MetricsSnapshot;
pub use span::{ScopedSpan, Span};
pub use tm::{TmMetrics, TmSnapshot};
pub use trace::{EventKind, FlightRecorder};
