//! Lightweight timing spans.
//!
//! A [`Span`] is a started monotonic clock; finishing it yields
//! elapsed nanoseconds, optionally accumulating into a counter. No
//! allocation, no global state — cheap enough to wrap individual
//! checker searches.

use crate::counter::Counter;
use std::time::Instant;

/// An in-flight timing measurement.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Start timing now.
    pub fn start() -> Self {
        Span {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stop and fold the elapsed time into `sink` on `shard_hint`'s
    /// shard; returns the elapsed nanoseconds.
    pub fn finish_into(self, sink: &Counter, shard_hint: usize) -> u64 {
        let ns = self.elapsed_ns();
        sink.add(shard_hint, ns);
        ns
    }
}

/// A [`Span`] bound to its destination counter: the elapsed time lands
/// in the counter no matter how the scope exits, so call sites cannot
/// forget `finish_into` (early `return`, `?`, and panics all still
/// account their time).
///
/// Use [`ScopedSpan::finish`] when the elapsed nanoseconds are needed
/// (for example to also feed a histogram); plain drop otherwise.
#[must_use = "the measured interval ends when this guard drops; bind it to a named local"]
#[derive(Debug)]
pub struct ScopedSpan<'a> {
    span: Span,
    sink: &'a Counter,
    shard: usize,
    done: bool,
}

impl<'a> ScopedSpan<'a> {
    /// Start timing into `sink` on `shard_hint`'s shard.
    pub fn enter(sink: &'a Counter, shard_hint: usize) -> Self {
        ScopedSpan {
            span: Span::start(),
            sink,
            shard: shard_hint,
            done: false,
        }
    }

    /// Nanoseconds elapsed so far without finishing.
    pub fn elapsed_ns(&self) -> u64 {
        self.span.elapsed_ns()
    }

    /// Finish now and return the elapsed nanoseconds (also accumulated
    /// into the sink). Dropping after this is a no-op.
    pub fn finish(mut self) -> u64 {
        self.done = true;
        self.span.finish_into(self.sink, self.shard)
    }
}

impl Drop for ScopedSpan<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.span.finish_into(self.sink, self.shard);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let span = Span::start();
        let a = span.elapsed_ns();
        std::hint::black_box((0..1000u64).sum::<u64>());
        let b = span.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn finish_accumulates() {
        let c = Counter::new();
        let ns = Span::start().finish_into(&c, 0);
        assert_eq!(c.get(), ns);
    }

    #[test]
    fn scoped_span_accumulates_on_drop() {
        let c = Counter::new();
        {
            let _g = ScopedSpan::enter(&c, 0);
        }
        assert!(c.get() > 0, "drop path must account the elapsed time");
    }

    #[test]
    fn scoped_span_finish_returns_elapsed_once() {
        let c = Counter::new();
        let g = ScopedSpan::enter(&c, 1);
        let ns = g.finish();
        assert_eq!(c.get(), ns, "finish accumulates exactly once");
    }

    #[test]
    fn scoped_span_accounts_across_early_exit() {
        fn timed(c: &Counter, bail: bool) -> Option<u64> {
            let _g = ScopedSpan::enter(c, 0);
            if bail {
                return None; // guard still accumulates
            }
            Some(1)
        }
        let c = Counter::new();
        timed(&c, true);
        assert!(c.get() > 0);
    }
}
