//! Lightweight timing spans.
//!
//! A [`Span`] is a started monotonic clock; finishing it yields
//! elapsed nanoseconds, optionally accumulating into a counter. No
//! allocation, no global state — cheap enough to wrap individual
//! checker searches.

use crate::counter::Counter;
use std::time::Instant;

/// An in-flight timing measurement.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Start timing now.
    pub fn start() -> Self {
        Span {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stop and fold the elapsed time into `sink` on `shard_hint`'s
    /// shard; returns the elapsed nanoseconds.
    pub fn finish_into(self, sink: &Counter, shard_hint: usize) -> u64 {
        let ns = self.elapsed_ns();
        sink.add(shard_hint, ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let span = Span::start();
        let a = span.elapsed_ns();
        std::hint::black_box((0..1000u64).sum::<u64>());
        let b = span.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn finish_accumulates() {
        let c = Counter::new();
        let ns = Span::start().finish_into(&c, 0);
        assert_eq!(c.get(), ns);
    }
}
