//! Statistics for the relaxed-memory simulator and the model-checking
//! layer built on it.

use crate::hist::HistSnapshot;
use crate::json::{Json, ToJson};

/// Counters for one simulated machine run (or a sum over many runs —
/// see [`MachineStats::absorb`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MachineStats {
    /// Execution-semantics name the machine ran under (e.g. `"RMO"`);
    /// empty until a machine sets it.
    pub model: &'static str,
    /// Scheduler steps executed (instruction executions + drains).
    pub steps: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed (into the store buffer).
    pub stores: u64,
    /// CAS instructions executed.
    pub cas_ops: u64,
    /// Store-buffer entries flushed to memory.
    pub flushes: u64,
    /// Loads that observed a stale (overwritten) value through the
    /// model's load reorder window.
    pub stale_loads: u64,
    /// Largest store-buffer occupancy observed on any CPU (the
    /// reorder-window high-water mark).
    pub max_buffer_occupancy: u64,
}

impl MachineStats {
    /// Fold another run's stats in. Counters add;
    /// `max_buffer_occupancy` takes the max.
    pub fn absorb(&mut self, other: &MachineStats) {
        if self.model.is_empty() {
            self.model = other.model;
        }
        self.steps += other.steps;
        self.loads += other.loads;
        self.stores += other.stores;
        self.cas_ops += other.cas_ops;
        self.flushes += other.flushes;
        self.stale_loads += other.stale_loads;
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(other.max_buffer_occupancy);
    }

    /// Record a store-buffer occupancy observation.
    #[inline]
    pub fn note_occupancy(&mut self, depth: usize) {
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(depth as u64);
    }
}

impl ToJson for MachineStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("model", self.model.into())
            .push("steps", self.steps.into())
            .push("loads", self.loads.into())
            .push("stores", self.stores.into())
            .push("cas_ops", self.cas_ops.into())
            .push("flushes", self.flushes.into())
            .push("stale_loads", self.stale_loads.into())
            .push("max_buffer_occupancy", self.max_buffer_occupancy.into());
        j
    }
}

/// Totals for a model-checking pass (exhaustive or randomized).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McStats {
    /// Registry key of the checker-side memory model the sweep verified
    /// against (e.g. `"RMO"`); empty until a sweep sets it.
    pub model: &'static str,
    /// Schedules explored (machine runs).
    pub schedules: u64,
    /// Runs cut off by the step bound before completing.
    pub truncated: u64,
    /// Histories extracted from traces and fed to a checker.
    pub histories_checked: u64,
    /// Completed traces skipped because a structurally identical trace
    /// (same operations and same overlap relation, per
    /// `Trace::cache_key`) was already checked in this sweep.
    pub dedup_hits: u64,
    /// Trace/history verdicts answered from the sweep-wide bounded
    /// memo instead of re-running a checker search.
    pub memo_hits: u64,
    /// Checker worker threads used by the sweep (0 = serial).
    pub workers: u64,
    /// Machine runs executed by the DPOR explorer (0 when the sweep
    /// used brute enumeration instead).
    pub dpor_executed: u64,
    /// Mazurkiewicz equivalence classes the DPOR explorer visited
    /// (complete, non-sleep-blocked runs).
    pub dpor_classes: u64,
    /// DPOR runs aborted at a node whose every enabled action was
    /// asleep (the waste the attribution in [`DporStats`] localizes).
    pub dpor_blocked: u64,
    /// Frontier work items a parallel DPOR worker popped that another
    /// worker pushed.
    pub frontier_steals: u64,
    /// Enabled actions skipped because their footprint was in the sleep
    /// set.
    pub sleep_skips: u64,
    /// Concurrent dependent transition pairs flagged by the vector
    /// clocks.
    pub races: u64,
    /// Machine-level totals across all runs.
    pub machine: MachineStats,
}

impl McStats {
    /// Fold another pass's totals in.
    pub fn absorb(&mut self, other: &McStats) {
        if self.model.is_empty() {
            self.model = other.model;
        }
        self.schedules += other.schedules;
        self.truncated += other.truncated;
        self.histories_checked += other.histories_checked;
        self.dedup_hits += other.dedup_hits;
        self.memo_hits += other.memo_hits;
        self.workers = self.workers.max(other.workers);
        self.dpor_executed += other.dpor_executed;
        self.dpor_classes += other.dpor_classes;
        self.dpor_blocked += other.dpor_blocked;
        self.frontier_steals += other.frontier_steals;
        self.sleep_skips += other.sleep_skips;
        self.races += other.races;
        self.machine.absorb(&other.machine);
    }
}

impl ToJson for McStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("model", self.model.into())
            .push("schedules", self.schedules.into())
            .push("truncated", self.truncated.into())
            .push("histories_checked", self.histories_checked.into())
            .push("dedup_hits", self.dedup_hits.into())
            .push("memo_hits", self.memo_hits.into())
            .push("workers", self.workers.into())
            .push("dpor_executed", self.dpor_executed.into())
            .push("dpor_classes", self.dpor_classes.into())
            .push("dpor_blocked", self.dpor_blocked.into())
            .push("frontier_steals", self.frontier_steals.into())
            .push("sleep_skips", self.sleep_skips.into())
            .push("races", self.races.into())
            .push("machine", self.machine.to_json());
        j
    }
}

/// Footprint-kind names indexing [`DporStats::race_heat`]. The
/// classification itself lives beside the vector clocks in
/// `jungle_mc::dpor::deps` (this crate cannot see footprints); the
/// table here just fixes the vocabulary both sides share.
pub const FOOTPRINT_KINDS: [&str; 6] = ["read", "write", "rmw", "fence", "boundary", "other"];

/// Number of footprint kinds (side length of the heat table).
pub const KINDS: usize = FOOTPRINT_KINDS.len();

/// One DPOR worker's wall-clock ledger, measured around the frontier.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerLane {
    /// Nanoseconds spent executing machine runs and cursor bookkeeping.
    pub busy_ns: u64,
    /// Nanoseconds blocked in `Frontier::pop` that ended without a
    /// steal (own re-pop or final termination wait).
    pub idle_ns: u64,
    /// Nanoseconds blocked in `Frontier::pop` that ended by stealing
    /// another worker's item.
    pub steal_ns: u64,
    /// Machine runs this lane executed.
    pub runs: u64,
    /// Frontier items this lane popped that another worker pushed.
    pub steals: u64,
}

impl WorkerLane {
    fn absorb(&mut self, other: &WorkerLane) {
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
        self.steal_ns += other.steal_ns;
        self.runs += other.runs;
        self.steals += other.steals;
    }
}

impl ToJson for WorkerLane {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("busy_ns", self.busy_ns.into())
            .push("idle_ns", self.idle_ns.into())
            .push("steal_ns", self.steal_ns.into())
            .push("runs", self.runs.into())
            .push("steals", self.steals.into());
        j
    }
}

/// Waste attribution for DPOR exploration: *where* the sleep-blocked
/// probes cluster, *which* footprint-kind pairs race (and therefore
/// enqueue revisits), and *how* frontier workers spend their
/// wall-clock. The aggregate counters in [`McStats`] say how much work
/// happened; this says where the avoidable part lives.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DporStats {
    /// Runs aborted at a sleep-blocked node (must equal the sum of
    /// `blocked_by_depth` — the attribution is exhaustive).
    pub blocked: u64,
    /// Blocked probes by the tree depth of the blocked node
    /// (`blocked_by_depth[d]` counts probes blocked at depth `d`).
    pub blocked_by_depth: Vec<u64>,
    /// Races by footprint-kind pair: `race_heat[a][b]` counts racing
    /// transition pairs whose earlier member is kind `a` (see
    /// [`FOOTPRINT_KINDS`]) and later member kind `b`.
    pub race_heat: [[u64; KINDS]; KINDS],
    /// Per-worker busy/idle/steal ledgers, merged by worker index
    /// across sweeps (a serial exploration is one fully busy lane).
    pub workers: Vec<WorkerLane>,
    /// Per-machine-run latency distribution.
    pub run_ns: HistSnapshot,
}

impl DporStats {
    /// Record one blocked probe at `depth`, keeping `blocked` and its
    /// per-depth attribution in lockstep.
    pub fn note_blocked(&mut self, depth: usize) {
        if self.blocked_by_depth.len() <= depth {
            self.blocked_by_depth.resize(depth + 1, 0);
        }
        self.blocked_by_depth[depth] += 1;
        self.blocked += 1;
    }

    /// Record one racing pair by kind indices (clamped into range).
    pub fn note_race(&mut self, a: usize, b: usize) {
        self.race_heat[a.min(KINDS - 1)][b.min(KINDS - 1)] += 1;
    }

    /// The depth with the most blocked probes (0 when none blocked).
    pub fn blocked_depth_mode(&self) -> u64 {
        self.blocked_by_depth
            .iter()
            .enumerate()
            .max_by_key(|&(d, n)| (*n, std::cmp::Reverse(d)))
            .filter(|&(_, n)| *n > 0)
            .map(|(d, _)| d as u64)
            .unwrap_or(0)
    }

    /// Total races in the heat table.
    pub fn race_total(&self) -> u64 {
        self.race_heat.iter().flatten().sum()
    }

    /// Busy fraction of total worker wall-clock (1.0 when no time was
    /// measured, i.e. nothing to attribute).
    pub fn busy_frac(&self) -> f64 {
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let total: u64 = self
            .workers
            .iter()
            .map(|w| w.busy_ns + w.idle_ns + w.steal_ns)
            .sum();
        if total == 0 {
            1.0
        } else {
            busy as f64 / total as f64
        }
    }

    /// Fold another exploration's attribution in. Depth counts and the
    /// heat table add element-wise; worker lanes merge by index.
    pub fn absorb(&mut self, other: &DporStats) {
        self.blocked += other.blocked;
        if self.blocked_by_depth.len() < other.blocked_by_depth.len() {
            self.blocked_by_depth
                .resize(other.blocked_by_depth.len(), 0);
        }
        for (d, n) in other.blocked_by_depth.iter().enumerate() {
            self.blocked_by_depth[d] += n;
        }
        for (a, row) in other.race_heat.iter().enumerate() {
            for (b, n) in row.iter().enumerate() {
                self.race_heat[a][b] += n;
            }
        }
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerLane::default());
        }
        for (i, lane) in other.workers.iter().enumerate() {
            self.workers[i].absorb(lane);
        }
        self.run_ns.absorb(&other.run_ns);
    }
}

impl ToJson for DporStats {
    fn to_json(&self) -> Json {
        let mut heat: Vec<(u64, usize, usize)> = Vec::new();
        for (a, row) in self.race_heat.iter().enumerate() {
            for (b, &n) in row.iter().enumerate() {
                if n > 0 {
                    heat.push((n, a, b));
                }
            }
        }
        heat.sort_by(|x, y| y.cmp(x)); // hottest pair first
        let mut j = Json::obj();
        j.push("blocked", self.blocked.into())
            .push(
                "blocked_by_depth",
                Json::Arr(
                    self.blocked_by_depth
                        .iter()
                        .map(|&n| Json::U64(n))
                        .collect(),
                ),
            )
            .push("blocked_depth_mode", self.blocked_depth_mode().into())
            .push(
                "race_heat",
                Json::Arr(
                    heat.into_iter()
                        .map(|(n, a, b)| {
                            let mut e = Json::obj();
                            e.push("a", FOOTPRINT_KINDS[a].into())
                                .push("b", FOOTPRINT_KINDS[b].into())
                                .push("races", n.into());
                            e
                        })
                        .collect(),
                ),
            )
            .push("race_total", self.race_total().into())
            .push(
                "workers",
                Json::Arr(self.workers.iter().map(|w| w.to_json()).collect()),
            )
            .push("worker_busy_frac", Json::F64(self.busy_frac()))
            .push("run_ns", self.run_ns.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_absorb() {
        let mut a = MachineStats {
            steps: 10,
            flushes: 2,
            max_buffer_occupancy: 3,
            ..Default::default()
        };
        a.absorb(&MachineStats {
            steps: 5,
            max_buffer_occupancy: 7,
            ..Default::default()
        });
        assert_eq!(a.steps, 15);
        assert_eq!(a.flushes, 2);
        assert_eq!(a.max_buffer_occupancy, 7);
    }

    #[test]
    fn mc_json_nests_machine() {
        let s = McStats {
            schedules: 4,
            histories_checked: 4,
            ..Default::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("schedules"), Some(&Json::U64(4)));
        assert!(j.get("machine").is_some());
    }

    #[test]
    fn dpor_stats_blocked_attribution_stays_exhaustive() {
        let mut s = DporStats::default();
        s.note_blocked(3);
        s.note_blocked(3);
        s.note_blocked(1);
        assert_eq!(s.blocked, 3);
        assert_eq!(s.blocked_by_depth.iter().sum::<u64>(), s.blocked);
        assert_eq!(s.blocked_depth_mode(), 3);

        let mut t = DporStats::default();
        t.note_blocked(5);
        s.absorb(&t);
        assert_eq!(s.blocked, 4);
        assert_eq!(s.blocked_by_depth.iter().sum::<u64>(), s.blocked);
    }

    #[test]
    fn dpor_stats_heat_and_lanes_merge() {
        let mut s = DporStats::default();
        s.note_race(0, 1);
        s.note_race(0, 1);
        s.note_race(1, 1);
        s.note_race(99, 99); // clamps into "other"
        assert_eq!(s.race_total(), 4);
        s.workers.push(WorkerLane {
            busy_ns: 900,
            idle_ns: 100,
            runs: 4,
            ..Default::default()
        });
        let mut t = DporStats::default();
        t.workers.push(WorkerLane {
            busy_ns: 100,
            steal_ns: 100,
            steals: 1,
            ..Default::default()
        });
        t.workers.push(WorkerLane {
            busy_ns: 500,
            ..Default::default()
        });
        s.absorb(&t);
        assert_eq!(s.workers.len(), 2);
        assert_eq!(s.workers[0].busy_ns, 1000);
        assert_eq!(s.workers[0].steals, 1);
        let frac = s.busy_frac();
        assert!(frac > 0.85 && frac < 1.0, "busy_frac {frac}");
    }

    #[test]
    fn dpor_stats_json_shape() {
        let mut s = DporStats::default();
        s.note_blocked(2);
        s.note_race(1, 1);
        s.run_ns.record(1_000);
        let j = s.to_json();
        assert_eq!(j.get("blocked"), Some(&Json::U64(1)));
        assert_eq!(j.get("blocked_depth_mode"), Some(&Json::U64(2)));
        assert_eq!(j.get("race_total"), Some(&Json::U64(1)));
        let Some(Json::Arr(heat)) = j.get("race_heat") else {
            panic!("race_heat missing")
        };
        assert_eq!(heat.len(), 1);
        assert_eq!(heat[0].get("a").unwrap().as_str(), Some("write"));
        assert!(j.get("worker_busy_frac").unwrap().as_f64().is_some());
        assert!(j.get("run_ns").unwrap().get("p50").is_some());
    }

    #[test]
    fn empty_dpor_stats_report_full_busy() {
        let s = DporStats::default();
        assert_eq!(s.busy_frac(), 1.0);
        assert_eq!(s.blocked_depth_mode(), 0);
    }
}
