//! Statistics for the relaxed-memory simulator and the model-checking
//! layer built on it.

use crate::json::{Json, ToJson};

/// Counters for one simulated machine run (or a sum over many runs —
/// see [`MachineStats::absorb`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MachineStats {
    /// Execution-semantics name the machine ran under (e.g. `"RMO"`);
    /// empty until a machine sets it.
    pub model: &'static str,
    /// Scheduler steps executed (instruction executions + drains).
    pub steps: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed (into the store buffer).
    pub stores: u64,
    /// CAS instructions executed.
    pub cas_ops: u64,
    /// Store-buffer entries flushed to memory.
    pub flushes: u64,
    /// Loads that observed a stale (overwritten) value through the
    /// model's load reorder window.
    pub stale_loads: u64,
    /// Largest store-buffer occupancy observed on any CPU (the
    /// reorder-window high-water mark).
    pub max_buffer_occupancy: u64,
}

impl MachineStats {
    /// Fold another run's stats in. Counters add;
    /// `max_buffer_occupancy` takes the max.
    pub fn absorb(&mut self, other: &MachineStats) {
        if self.model.is_empty() {
            self.model = other.model;
        }
        self.steps += other.steps;
        self.loads += other.loads;
        self.stores += other.stores;
        self.cas_ops += other.cas_ops;
        self.flushes += other.flushes;
        self.stale_loads += other.stale_loads;
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(other.max_buffer_occupancy);
    }

    /// Record a store-buffer occupancy observation.
    #[inline]
    pub fn note_occupancy(&mut self, depth: usize) {
        self.max_buffer_occupancy = self.max_buffer_occupancy.max(depth as u64);
    }
}

impl ToJson for MachineStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("model", self.model.into())
            .push("steps", self.steps.into())
            .push("loads", self.loads.into())
            .push("stores", self.stores.into())
            .push("cas_ops", self.cas_ops.into())
            .push("flushes", self.flushes.into())
            .push("stale_loads", self.stale_loads.into())
            .push("max_buffer_occupancy", self.max_buffer_occupancy.into());
        j
    }
}

/// Totals for a model-checking pass (exhaustive or randomized).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct McStats {
    /// Registry key of the checker-side memory model the sweep verified
    /// against (e.g. `"RMO"`); empty until a sweep sets it.
    pub model: &'static str,
    /// Schedules explored (machine runs).
    pub schedules: u64,
    /// Runs cut off by the step bound before completing.
    pub truncated: u64,
    /// Histories extracted from traces and fed to a checker.
    pub histories_checked: u64,
    /// Completed traces skipped because a structurally identical trace
    /// (same operations and same overlap relation, per
    /// `Trace::cache_key`) was already checked in this sweep.
    pub dedup_hits: u64,
    /// Trace/history verdicts answered from the sweep-wide bounded
    /// memo instead of re-running a checker search.
    pub memo_hits: u64,
    /// Checker worker threads used by the sweep (0 = serial).
    pub workers: u64,
    /// Machine runs executed by the DPOR explorer (0 when the sweep
    /// used brute enumeration instead).
    pub dpor_executed: u64,
    /// Mazurkiewicz equivalence classes the DPOR explorer visited
    /// (complete, non-sleep-blocked runs).
    pub dpor_classes: u64,
    /// Frontier work items a parallel DPOR worker popped that another
    /// worker pushed.
    pub frontier_steals: u64,
    /// Enabled actions skipped because their footprint was in the sleep
    /// set.
    pub sleep_skips: u64,
    /// Concurrent dependent transition pairs flagged by the vector
    /// clocks.
    pub races: u64,
    /// Machine-level totals across all runs.
    pub machine: MachineStats,
}

impl McStats {
    /// Fold another pass's totals in.
    pub fn absorb(&mut self, other: &McStats) {
        if self.model.is_empty() {
            self.model = other.model;
        }
        self.schedules += other.schedules;
        self.truncated += other.truncated;
        self.histories_checked += other.histories_checked;
        self.dedup_hits += other.dedup_hits;
        self.memo_hits += other.memo_hits;
        self.workers = self.workers.max(other.workers);
        self.dpor_executed += other.dpor_executed;
        self.dpor_classes += other.dpor_classes;
        self.frontier_steals += other.frontier_steals;
        self.sleep_skips += other.sleep_skips;
        self.races += other.races;
        self.machine.absorb(&other.machine);
    }
}

impl ToJson for McStats {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.push("model", self.model.into())
            .push("schedules", self.schedules.into())
            .push("truncated", self.truncated.into())
            .push("histories_checked", self.histories_checked.into())
            .push("dedup_hits", self.dedup_hits.into())
            .push("memo_hits", self.memo_hits.into())
            .push("workers", self.workers.into())
            .push("dpor_executed", self.dpor_executed.into())
            .push("dpor_classes", self.dpor_classes.into())
            .push("frontier_steals", self.frontier_steals.into())
            .push("sleep_skips", self.sleep_skips.into())
            .push("races", self.races.into())
            .push("machine", self.machine.to_json());
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_absorb() {
        let mut a = MachineStats {
            steps: 10,
            flushes: 2,
            max_buffer_occupancy: 3,
            ..Default::default()
        };
        a.absorb(&MachineStats {
            steps: 5,
            max_buffer_occupancy: 7,
            ..Default::default()
        });
        assert_eq!(a.steps, 15);
        assert_eq!(a.flushes, 2);
        assert_eq!(a.max_buffer_occupancy, 7);
    }

    #[test]
    fn mc_json_nests_machine() {
        let s = McStats {
            schedules: 4,
            histories_checked: 4,
            ..Default::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("schedules"), Some(&Json::U64(4)));
        assert!(j.get("machine").is_some());
    }
}
