//! Property tests for the phase profiler: on random nested span trees
//! executed across threads, every snapshot node must satisfy
//! `self <= total` and `sum(children) <= total`, and no span may be
//! lost or double-counted.

use jungle_obs::{profile, Profiler};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// The profiler install point is process-global; serialize every case
/// so concurrent tests in this binary cannot cross-contaminate.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Interpret `script` as a span tree: each byte opens a span named by
/// its low bits and hands a byte-dependent chunk of the remaining
/// script to its children. Returns how many spans were entered.
fn run_spans(script: &[u32], depth: usize) -> u64 {
    if depth > 6 {
        return 0;
    }
    let mut entered = 0u64;
    let mut i = 0;
    while i < script.len() {
        let b = script[i];
        let _g = profile::enter(NAMES[(b % 4) as usize]);
        entered += 1;
        let take = (b as usize % 3) * 2;
        let end = (i + 1 + take).min(script.len());
        entered += run_spans(&script[i + 1..end], depth + 1);
        std::hint::black_box(&entered);
        i = end;
    }
    entered
}

/// Recursively assert the timing invariants on a snapshot subtree and
/// return the total calls below (and including) `node`'s children.
fn check_node(node: &jungle_obs::ProfileNode) -> u64 {
    assert!(
        node.self_ns <= node.total_ns,
        "{}: self {} > total {}",
        node.name,
        node.self_ns,
        node.total_ns
    );
    assert!(
        node.children_ns() <= node.total_ns,
        "{}: children {} > total {}",
        node.name,
        node.children_ns(),
        node.total_ns
    );
    assert_eq!(node.hist.count, node.calls, "{}: hist drift", node.name);
    node.calls + node.children.iter().map(check_node).sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-threaded random trees: invariants hold and the call count
    /// reconciles exactly with the spans entered.
    #[test]
    fn nested_trees_keep_self_within_total(
        script in prop::collection::vec(0u32..256, 0..40),
    ) {
        let _guard = lock();
        let p = Arc::new(Profiler::new());
        profile::install(p.clone());
        let entered = run_spans(&script, 0);
        profile::flush_thread();
        profile::uninstall();
        let root = p.snapshot();
        let counted: u64 = root.children.iter().map(check_node).sum();
        prop_assert_eq!(counted, entered, "spans lost or double-counted");
        prop_assert_eq!(root.calls, {
            let top: u64 = root.children.iter().map(|c| c.calls).sum();
            top
        });
    }

    /// Cross-thread random trees: every thread's spans land in the
    /// shared profiler at thread exit, invariants intact.
    #[test]
    fn cross_thread_trees_merge_without_loss(
        script in prop::collection::vec(0u32..256, 3..60),
        threads in 1usize..4,
    ) {
        let _guard = lock();
        let p = Arc::new(Profiler::new());
        profile::install(p.clone());
        let chunk = script.len().div_ceil(threads);
        let mut entered = 0u64;
        std::thread::scope(|s| {
            let handles: Vec<_> = script
                .chunks(chunk)
                .map(|part| s.spawn(move || run_spans(part, 0)))
                .collect();
            for h in handles {
                entered += h.join().expect("span worker");
            }
        });
        profile::flush_thread();
        profile::uninstall();
        let root = p.snapshot();
        let counted: u64 = root.children.iter().map(check_node).sum();
        prop_assert_eq!(counted, entered, "cross-thread spans lost");
        prop_assert!(root.self_ns <= root.total_ns);
    }
}
