//! Property tests for the log-bucketed latency histogram: sharded
//! recording must merge to exactly the single-histogram result,
//! percentiles must be monotone and bounded, and the saturating sum
//! must survive `u64::MAX` samples.

use jungle_obs::hist::{bucket_low, bucket_of, HistSnapshot, Histogram, BUCKETS};
use proptest::prelude::*;

/// Spread `samples` round-robin over `shards` atomic histograms, merge
/// the snapshots, and compare against one histogram fed everything.
fn record_sharded(samples: &[u64], shards: usize) -> (HistSnapshot, HistSnapshot) {
    let split: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
    let single = Histogram::new();
    for (i, &v) in samples.iter().enumerate() {
        split[i % shards].record(v);
        single.record(v);
    }
    let mut merged = HistSnapshot::default();
    for h in &split {
        merged.absorb(&h.snapshot());
    }
    (merged, single.snapshot())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge-of-shards equals the single histogram on the same samples,
    /// for every shard count: same buckets, count, sum, and max — and
    /// therefore identical percentiles.
    #[test]
    fn merge_of_shards_equals_single_histogram(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..300),
        shards in 1usize..8,
    ) {
        let (merged, single) = record_sharded(&samples, shards);
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.count, samples.len() as u64);
        prop_assert_eq!(merged.max, samples.iter().copied().max().unwrap());
        prop_assert_eq!(merged.p99(), single.p99());
    }

    /// Percentiles are monotone in the quantile and bounded by the true
    /// extremes: `min_bucket_low <= p50 <= p90 <= p99 <= p999 <= max`.
    #[test]
    fn percentiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..10_000_000, 1..300),
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p90, p99, p999) = (s.p50(), s.p90(), s.p99(), s.p999());
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        prop_assert!(p99 <= p999);
        prop_assert!(p999 <= s.max);
        // Every reported percentile is a bucket lower bound, so it
        // cannot exceed the largest sample.
        prop_assert!(p50 <= *samples.iter().max().unwrap());
    }

    /// The sum saturates instead of wrapping: a run containing
    /// `u64::MAX` samples reports `sum == u64::MAX` and an exact count.
    #[test]
    fn u64_max_saturates_sum(
        normal in prop::collection::vec(0u64..1_000_000, 0..50),
        extremes in 1usize..4,
    ) {
        let h = Histogram::new();
        for &v in &normal {
            h.record(v);
        }
        for _ in 0..extremes {
            h.record(u64::MAX);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.sum, u64::MAX);
        prop_assert_eq!(s.max, u64::MAX);
        prop_assert_eq!(s.count, (normal.len() + extremes) as u64);
        prop_assert!(s.p999() <= s.max);
    }

    /// The bucket scheme is sound for arbitrary values: every value
    /// maps to a valid bucket whose lower bound does not exceed it,
    /// with at most the designed 1/16 relative error.
    #[test]
    fn bucket_bounds_value(v in prop_oneof![0u64..u64::MAX, Just(u64::MAX)]) {
        let idx = bucket_of(v);
        prop_assert!(idx < BUCKETS);
        let low = bucket_low(idx);
        prop_assert!(low <= v);
        // Relative error bound: the bucket lower bound is within
        // 1/16 of the value (exact below 16).
        prop_assert!(v - low <= v / 16);
    }

    /// JSON round-trip preserves the snapshot exactly.
    #[test]
    fn snapshot_round_trips_through_json(
        samples in prop::collection::vec(0u64..100_000_000, 0..100),
    ) {
        use jungle_obs::{Json, ToJson};
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let s = h.snapshot();
        let text = s.to_json().to_string();
        let back = HistSnapshot::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, s);
    }
}
