//! Cross-validation of the SAT backend against the DFS checkers over
//! the litmus + stress corpus, for every registry entry and both
//! [`CheckKind`]s. Every SAT positive verdict must carry a witness
//! that re-validates from scratch — the backend is only allowed to be
//! *faster*, never *different*.

use jungle_core::encode::{check_opacity_sat_traced, check_sgla_sat_traced};
use jungle_core::history::{History, OpInstance};
use jungle_core::legal::every_op_legal;
use jungle_core::model::MemoryModel;
use jungle_core::opacity::{check_opacity, OpacityVerdict};
use jungle_core::registry::registry;
use jungle_core::sgla::{check_sgla, SglaVerdict};
use jungle_core::spec::SpecRegistry;
use jungle_litmus::figures::all_litmus;
use jungle_litmus::stress::{chain_history, wide_history, wide_unsat_history};
use jungle_mc::CheckKind;

/// Every corpus history with a label for failure messages.
fn corpus() -> Vec<(String, History)> {
    let mut hs = Vec::new();
    for lit in all_litmus() {
        for o in lit.outcomes {
            hs.push((format!("{}/{}", lit.name, o.label), o.history));
        }
    }
    hs.push(("chain(2)".into(), chain_history(2)));
    hs.push(("chain(3)".into(), chain_history(3)));
    hs.push(("wide(3,0)".into(), wide_history(3, 0)));
    hs.push(("wide(3,2)".into(), wide_history(3, 2)));
    hs.push(("wide_unsat(3)".into(), wide_unsat_history(3)));
    hs
}

/// Re-validate an opacity witness set from scratch (same obligations as
/// the parallel checker's property tests): each per-process witness is
/// a legal sequential permutation of the transformed history.
fn assert_opacity_witnesses_valid(h: &History, model: &dyn MemoryModel, v: &OpacityVerdict) {
    let th = model.transform(h);
    assert!(!v.witnesses().is_empty() || th.procs().is_empty());
    for (viewer, ids) in v.witnesses() {
        assert_eq!(
            ids.len(),
            th.len(),
            "witness for {viewer:?} not a permutation"
        );
        let mut indices: Vec<usize> = Vec::with_capacity(ids.len());
        for id in ids {
            let idx = th
                .index_of(*id)
                .unwrap_or_else(|| panic!("witness op {id:?} not in transformed history"));
            assert!(!indices.contains(&idx), "witness repeats op {id:?}");
            indices.push(idx);
        }
        let ops: Vec<OpInstance> = indices.iter().map(|&i| th.ops()[i].clone()).collect();
        let s = History::new(ops).expect("witness rebuilds as a history");
        assert!(s.is_sequential(), "witness interleaves transactions");
        assert!(
            every_op_legal(&s, &SpecRegistry::registers()),
            "witness for {viewer:?} contains an illegal operation"
        );
    }
}

/// SGLA witnesses are op-id permutations of the transformed history
/// (transactions atomic, non-transactional ops free to roam, so plain
/// sequentiality need not hold — permutation structure is the
/// backend-independent part to re-check here; legality is enforced by
/// the shared DFS leaf both backends run).
fn assert_sgla_witnesses_valid(h: &History, model: &dyn MemoryModel, v: &SglaVerdict) {
    let th = model.transform(h);
    assert!(!v.witnesses().is_empty() || th.procs().is_empty());
    for (viewer, ids) in v.witnesses() {
        assert_eq!(
            ids.len(),
            th.len(),
            "witness for {viewer:?} not a permutation"
        );
        let mut seen: Vec<usize> = Vec::with_capacity(ids.len());
        for id in ids {
            let idx = th
                .index_of(*id)
                .unwrap_or_else(|| panic!("witness op {id:?} not in transformed history"));
            assert!(!seen.contains(&idx), "witness repeats op {id:?}");
            seen.push(idx);
        }
    }
}

#[test]
fn sat_and_dfs_agree_over_corpus_and_registry() {
    let mut checked = 0u64;
    for (label, h) in corpus() {
        for e in registry() {
            for kind in [CheckKind::Opacity, CheckKind::Sgla] {
                match kind {
                    CheckKind::Opacity => {
                        let dfs = check_opacity(&h, e.model);
                        let (sat, stats) = check_opacity_sat_traced(&h, e.model);
                        assert_eq!(
                            dfs.is_opaque(),
                            sat.is_opaque(),
                            "opacity disagreement on {label} under {}",
                            e.key
                        );
                        assert_eq!(stats.solved, 1);
                        assert_eq!(
                            stats.certified,
                            u64::from(sat.is_opaque()),
                            "{label}/{}: every positive verdict must be certified",
                            e.key
                        );
                        if sat.is_opaque() {
                            assert_opacity_witnesses_valid(&h, e.model, &sat);
                        }
                    }
                    CheckKind::Sgla => {
                        let dfs = check_sgla(&h, e.model);
                        let (sat, stats) = check_sgla_sat_traced(&h, e.model);
                        assert_eq!(
                            dfs.is_sgla(),
                            sat.is_sgla(),
                            "SGLA disagreement on {label} under {}",
                            e.key
                        );
                        assert_eq!(stats.certified, u64::from(sat.is_sgla()));
                        if sat.is_sgla() {
                            assert_sgla_witnesses_valid(&h, e.model, &sat);
                        }
                    }
                }
                checked += 1;
            }
        }
    }
    // 8 registry entries × 2 kinds × the whole corpus.
    assert_eq!(checked, corpus().len() as u64 * registry().len() as u64 * 2);
}

#[test]
fn wide_unsat_refutes_in_one_round() {
    // The S = ∅ fast path: a history with no witness even before any
    // order constraints must be refuted without enumerating orders.
    for p in 2..=4 {
        let h = wide_unsat_history(p);
        let (v, stats) = check_opacity_sat_traced(&h, &jungle_core::model::Sc);
        assert!(!v.is_opaque());
        assert_eq!(
            stats.cegar_rounds, 1,
            "p={p}: empty-core refutation should need exactly one round"
        );
    }
}

#[test]
fn sweep_verdicts_are_backend_independent() {
    use jungle_core::ids::Var;
    use jungle_mc::{
        check_all_traces, check_all_traces_backend, CheckBackend, GlobalLockTm, Program, Stmt,
        ThreadProg, TxOp,
    };
    // The Figure-1 message-pass shape: one transaction writes x then y;
    // the other thread reads y then x non-transactionally.
    let program = Program(vec![
        ThreadProg(vec![Stmt::txn(vec![
            TxOp::Write(Var(0), 1),
            TxOp::Write(Var(1), 1),
        ])]),
        ThreadProg(vec![Stmt::NtRead(Var(1)), Stmt::NtRead(Var(0))]),
    ]);
    for e in registry()
        .iter()
        .filter(|e| e.key == "SC" || e.key == "TSO")
    {
        for kind in [CheckKind::Opacity, CheckKind::Sgla] {
            let dfs = check_all_traces(&program, &GlobalLockTm, e, kind, 200);
            let sat =
                check_all_traces_backend(&program, &GlobalLockTm, e, kind, CheckBackend::Sat, 200);
            assert_eq!(
                dfs.ok, sat.ok,
                "sweep verdict diverged for {} {kind:?}",
                e.key
            );
        }
    }
}
