//! Vector-clock race detection over a run's footprint sequence.
//!
//! Each executed decision carries a [`Footprint`]; the dependence
//! relation [`Footprint::dependent`] induces the happens-before order
//! of the run (program order within a CPU plus cross-CPU conflict
//! edges). Two dependent transitions **race** when neither is ordered
//! before the other by the *other* edges of the run — i.e. the only
//! thing serializing them is the schedule itself. Exactly these pairs
//! are where DPOR's equivalence classes branch, so the count doubles as
//! a sanity signal for the reduction ("how much genuine concurrency did
//! this program exhibit?") and each pair is surfaced on the flight
//! recorder as [`EventKind::RaceDetected`].

use jungle_memsim::Footprint;
use jungle_obs::sim::{DporStats, FOOTPRINT_KINDS};
use jungle_obs::trace::{self as flight, EventKind};

/// Classify a footprint into an index of
/// [`FOOTPRINT_KINDS`](jungle_obs::sim::FOOTPRINT_KINDS): fences first
/// (they conflict with everything), then transaction boundaries
/// (invocation/response markers), then the data shape (rmw = both
/// reads and writes, else write, else read), with a catch-all for
/// footprints touching nothing.
pub fn footprint_kind(fp: &Footprint) -> usize {
    debug_assert_eq!(FOOTPRINT_KINDS.len(), 6);
    if fp.fence {
        3 // fence
    } else if fp.inv || fp.resp {
        4 // boundary
    } else if !fp.writes.is_empty() && !fp.reads.is_empty() {
        2 // rmw
    } else if !fp.writes.is_empty() {
        1 // write
    } else if !fp.reads.is_empty() {
        0 // read
    } else {
        5 // other
    }
}

/// Detect racing transition pairs in one run's decision sequence and
/// report each on the flight recorder (`a` = earlier decision index,
/// `b` = later). Returns the number of racing pairs.
pub fn count_races(fps: &[Footprint]) -> u64 {
    count_races_impl(fps, |_, _| {})
}

/// [`count_races`] plus attribution: every racing pair is also charged
/// to `stats`' footprint-kind heat table, so `stats.race_total()`
/// grows by exactly the returned count.
pub fn count_races_into(fps: &[Footprint], stats: &mut DporStats) -> u64 {
    count_races_impl(fps, |i, j| {
        stats.note_race(footprint_kind(&fps[i]), footprint_kind(&fps[j]));
    })
}

/// Clocks: `clock[i][c]` counts the cpu-`c` decisions happens-before or
/// equal to decision `i` (so `clock[i][cpu_i]` is `i`'s own 1-based
/// sequence number on its CPU). A dependent cross-CPU pair `(i, j)`
/// races iff dropping the direct edge `i → j` leaves `i` unordered
/// before `j`: the join of the clocks of `j`'s *other* dependent
/// predecessors does not reach `i`.
fn count_races_impl(fps: &[Footprint], mut on_race: impl FnMut(usize, usize)) -> u64 {
    let n = fps.len();
    if n < 2 {
        return 0;
    }
    let width = fps.iter().map(|f| f.cpu + 1).max().unwrap_or(1);
    let mut clocks: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut races = 0u64;
    for (j, fpj) in fps.iter().enumerate() {
        let deps: Vec<usize> = (0..j).filter(|&i| fps[i].dependent(fpj)).collect();
        for &i in &deps {
            if fps[i].cpu == fpj.cpu {
                continue; // program order, never a race
            }
            let seq_i = clocks[i][fps[i].cpu];
            // Join of every dependent predecessor except i itself: does
            // anything else already order i before j?
            let mut reach = 0u64;
            for &k in &deps {
                if k != i {
                    reach = reach.max(clocks[k][fps[i].cpu]);
                }
            }
            if reach < seq_i {
                races += 1;
                on_race(i, j);
                flight::emit(EventKind::RaceDetected, i as u64, j as u64);
            }
        }
        let mut clock = vec![0u64; width];
        for &i in &deps {
            for (c, v) in clocks[i].iter().enumerate() {
                clock[c] = clock[c].max(*v);
            }
        }
        clock[fpj.cpu] += 1;
        clocks.push(clock);
    }
    races
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(cpu: usize, addr: u32) -> Footprint {
        Footprint {
            writes: vec![addr],
            ..Footprint::on(cpu)
        }
    }

    #[test]
    fn same_cpu_sequence_never_races() {
        assert_eq!(count_races(&[w(0, 1), w(0, 1), w(0, 2)]), 0);
    }

    #[test]
    fn conflicting_writes_on_two_cpus_race() {
        assert_eq!(count_races(&[w(0, 5), w(1, 5)]), 1);
    }

    #[test]
    fn disjoint_addresses_do_not_race() {
        assert_eq!(count_races(&[w(0, 1), w(1, 2)]), 0);
    }

    #[test]
    fn transitive_order_suppresses_race() {
        // cpu0 writes a; cpu1 writes a (races with the first); cpu1
        // writes a again — ordered after cpu0's write via its own
        // program-order predecessor, so only the first pair races.
        assert_eq!(count_races(&[w(0, 9), w(1, 9), w(1, 9)]), 1);
    }

    #[test]
    fn attribution_total_matches_count_and_kinds() {
        let mut stats = DporStats::default();
        let fps = [w(0, 5), w(1, 5)];
        let races = count_races_into(&fps, &mut stats);
        assert_eq!(races, 1);
        assert_eq!(stats.race_total(), races);
        // Both members are pure writes → heat lands on (write, write).
        assert_eq!(stats.race_heat[1][1], 1);
    }

    #[test]
    fn footprint_kinds_classify_by_shape() {
        let read = Footprint {
            reads: vec![1],
            ..Footprint::on(0)
        };
        let rmw = Footprint {
            reads: vec![1],
            writes: vec![1],
            ..Footprint::on(0)
        };
        let fence = Footprint {
            fence: true,
            writes: vec![1],
            ..Footprint::on(0)
        };
        let boundary = Footprint {
            inv: true,
            ..Footprint::on(0)
        };
        assert_eq!(footprint_kind(&read), 0);
        assert_eq!(footprint_kind(&w(0, 1)), 1);
        assert_eq!(footprint_kind(&rmw), 2);
        assert_eq!(footprint_kind(&fence), 3, "fence wins over data shape");
        assert_eq!(footprint_kind(&boundary), 4);
        assert_eq!(footprint_kind(&Footprint::on(0)), 5);
    }

    #[test]
    fn mediated_pair_is_not_direct_race() {
        // i=0 (cpu0 w a), k=1 (cpu1 w a, races with 0), j=2 (cpu0 w a):
        // 0→2 is program order; 1→2 is cross-CPU but is it a race?
        // 2's dependent predecessors are {0, 1}. For i=1: join of
        // clocks[0] gives cpu1-component 0 < seq 1 → race. Total: (0,1)
        // and (1,2) race, (0,2) is program order.
        assert_eq!(count_races(&[w(0, 3), w(1, 3), w(0, 3)]), 2);
    }
}
