//! The sleep-set exploration cursor.
//!
//! [`DporCursor`] drives the simulated machine exactly like
//! [`ExhaustiveCursor`](jungle_memsim::ExhaustiveCursor) — replay a
//! recorded decision prefix, extend it at the frontier, backtrack with
//! [`DporCursor::advance`] — but prunes with **sleep sets**
//! (Godefroid): after a branch of a choice point is fully explored, the
//! branch's action *goes to sleep* at that point together with its
//! observed [`Footprint`]. A sleeping action survives into descendant
//! choice points for as long as every decision taken since is
//! independent of it, and any enabled action found asleep is skipped —
//! re-executing it first could only produce runs Mazurkiewicz-equivalent
//! to runs already explored under the sleeping branch.
//!
//! The cursor therefore executes exactly one run per equivalence class
//! of complete runs — the lexicographically least representative — so
//! the first violating leaf it meets is the same trace brute-force
//! enumeration would have reported first, and verdicts *and* witnesses
//! are unchanged. Nodes whose every enabled action is asleep are cut
//! via [`Scheduler::abort_run`] before executing anything (the machine
//! reports such runs with `aborted == true`).

use jungle_memsim::{Action, Footprint, Scheduler};
use jungle_obs::trace::{self as flight, EventKind};

/// A sleeping transition at one choice point: the encoded action of a
/// fully explored branch together with the footprint it had when
/// executed there. (The machine state at a node is fixed, so the
/// encoding identifies the transition and the footprint is its
/// dependence signature.)
#[derive(Clone, Debug)]
pub struct SleepEntry {
    /// [`Action::encode`] of the slept transition.
    pub action: u64,
    /// The transition's footprint when its branch was explored.
    pub fp: Footprint,
}

fn slept(sleep: &[SleepEntry], action: u64) -> bool {
    sleep.iter().any(|e| e.action == action)
}

/// One choice point on the current exploration path.
#[derive(Clone, Debug)]
struct Node {
    /// Encoded enabled actions (filled on first execution).
    options: Vec<u64>,
    /// Index of the branch currently being explored.
    chosen: usize,
    /// Sleep set at this node: inherited survivors plus entries for
    /// branches already explored here.
    sleep: Vec<SleepEntry>,
    /// Footprint of the chosen action, once observed.
    fp: Option<Footprint>,
    /// Part of a donated prefix: this cursor never advances it (the
    /// node's remaining branches belong to the donor or other items).
    pinned: bool,
    /// Remaining branches were donated to the frontier; locally
    /// exhausted.
    donated: bool,
}

/// Sleep-set DFS cursor over the machine's schedule tree. Implements
/// [`Scheduler`]; drive it exactly like an `ExhaustiveCursor`:
/// `rewind`, run the machine, `advance` until it returns `false`.
#[derive(Clone, Debug, Default)]
pub struct DporCursor {
    stack: Vec<Node>,
    /// Replay position within `stack` for the current run.
    pos: usize,
    /// Next stack index to receive an observed footprint.
    obs: usize,
    /// The current run reached a node with every option asleep.
    blocked: bool,
    /// Sleep set and first branch index for the first frontier node of
    /// a donated work item (consumed on creation of that node).
    base: Option<(Vec<SleepEntry>, usize)>,
    /// Enabled actions skipped because they were asleep.
    pub sleep_skips: u64,
}

impl DporCursor {
    /// A cursor rooted at the top of the schedule tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cursor for a donated subtree: replay `prefix` (decision
    /// indices from the root), then explore the node below it starting
    /// at branch `next` under the given sleep set. The prefix nodes are
    /// pinned — once the subtree is exhausted, [`advance`](Self::advance)
    /// returns `false` instead of backtracking above the donation
    /// point.
    pub fn with_base(prefix: Vec<usize>, sleep: Vec<SleepEntry>, next: usize) -> Self {
        DporCursor {
            stack: prefix
                .into_iter()
                .map(|chosen| Node {
                    options: Vec::new(),
                    chosen,
                    sleep: Vec::new(),
                    fp: None,
                    pinned: true,
                    donated: false,
                })
                .collect(),
            pos: 0,
            obs: 0,
            blocked: false,
            base: Some((sleep, next)),
            sleep_skips: 0,
        }
    }

    /// Reset the replay position for the next run.
    pub fn rewind(&mut self) {
        self.pos = 0;
        self.obs = 0;
        self.blocked = false;
    }

    /// The decision path of the current exploration position, from the
    /// absolute root (donated prefixes included). Immediately after a
    /// run this is the run's full decision path; immediately after
    /// [`advance`](Self::advance) it is the prefix every subsequent run
    /// of this cursor extends.
    pub fn path(&self) -> Vec<usize> {
        self.stack.iter().map(|n| n.chosen).collect()
    }

    /// Depth (from the absolute root, donated prefixes included) of the
    /// node the current run blocked at, or `None` if the run was not
    /// sleep-blocked. Read this after a run and before
    /// [`advance`](Self::advance) — advancing pops the blocked node.
    pub fn blocked_depth(&self) -> Option<usize> {
        if self.blocked {
            Some(self.stack.len().saturating_sub(1))
        } else {
            None
        }
    }

    /// Advance to the next unexplored branch in DFS order, putting each
    /// completed branch to sleep at its node. Returns `false` when the
    /// cursor's subtree is exhausted.
    pub fn advance(&mut self) -> bool {
        if self.blocked {
            // The blocked node explored nothing: every option was
            // already asleep, so it has no footprint and sleeps nothing.
            self.blocked = false;
            self.stack.pop();
        }
        while let Some(mut node) = self.stack.pop() {
            if node.pinned {
                return false; // donated subtree exhausted
            }
            if !node.donated {
                // The branch just completed joins the sleep set: any
                // sibling explored after it may skip re-entering it.
                if let Some(fp) = node.fp.take() {
                    node.sleep.push(SleepEntry {
                        action: node.options[node.chosen],
                        fp,
                    });
                }
                let depth = self.stack.len();
                let mut next = node.chosen + 1;
                while next < node.options.len() {
                    if slept(&node.sleep, node.options[next]) {
                        self.sleep_skips += 1;
                        flight::emit(EventKind::SleepSetSkip, depth as u64, node.options[next]);
                        next += 1;
                    } else {
                        node.chosen = next;
                        node.fp = None;
                        self.stack.push(node);
                        return true;
                    }
                }
            }
            // Exhausted (or donated away): keep popping.
        }
        false
    }

    /// Donate the shallowest splittable choice point to a work-stealing
    /// frontier: returns `(prefix, sleep, next)` describing every
    /// not-yet-explored branch of that node (the receiving cursor is
    /// built with [`DporCursor::with_base`]), and marks the node
    /// donated so this cursor never explores those branches itself.
    ///
    /// The donated sleep set is the node's current one plus an entry
    /// for the in-progress branch — exactly the state serial
    /// exploration would reach when that branch completes, so the
    /// donated subtree is explored identically wherever it runs.
    pub fn split_shallowest(&mut self) -> Option<(Vec<usize>, Vec<SleepEntry>, usize)> {
        for d in 0..self.stack.len() {
            let node = &self.stack[d];
            if node.pinned || node.donated {
                continue;
            }
            let Some(fp) = node.fp.clone() else {
                continue; // branch not yet executed; nothing to reason from
            };
            let mut sleep = node.sleep.clone();
            sleep.push(SleepEntry {
                action: node.options[node.chosen],
                fp,
            });
            let next = node.chosen + 1;
            if !(next..node.options.len()).any(|i| !slept(&sleep, node.options[i])) {
                continue; // every remaining sibling is asleep
            }
            let prefix: Vec<usize> = self.stack[..d].iter().map(|n| n.chosen).collect();
            self.stack[d].donated = true;
            return Some((prefix, sleep, next));
        }
        None
    }
}

impl Scheduler for DporCursor {
    fn choose(&mut self, actions: &[Action]) -> usize {
        if self.pos < self.stack.len() {
            // Replay the recorded prefix. The machine is deterministic,
            // so the offered list matches the one recorded.
            let node = &mut self.stack[self.pos];
            if node.options.is_empty() {
                node.options = actions.iter().map(|a| a.encode()).collect();
            }
            debug_assert_eq!(node.options.len(), actions.len(), "nondeterministic replay");
            self.pos += 1;
            return node.chosen;
        }
        // Frontier: open a new choice point.
        let options: Vec<u64> = actions.iter().map(|a| a.encode()).collect();
        let (sleep, start) = match self.base.take() {
            Some(base) => base,
            None => {
                // Sleeping actions survive past the parent's decision
                // iff they are independent of it.
                let sleep = match self.stack.last() {
                    Some(parent) => {
                        let pfp = parent
                            .fp
                            .as_ref()
                            .expect("parent footprint observed before child choice");
                        parent
                            .sleep
                            .iter()
                            .filter(|e| !e.fp.dependent(pfp))
                            .cloned()
                            .collect()
                    }
                    None => Vec::new(),
                };
                (sleep, 0)
            }
        };
        let depth = self.stack.len();
        let mut chosen = start;
        while chosen < options.len() && slept(&sleep, options[chosen]) {
            self.sleep_skips += 1;
            flight::emit(EventKind::SleepSetSkip, depth as u64, options[chosen]);
            chosen += 1;
        }
        if chosen >= options.len() {
            // Everything enabled is asleep: all behaviors from here are
            // covered by runs already explored. Cut the run (the
            // machine checks abort_run before executing the choice).
            self.blocked = true;
            chosen = 0;
        }
        self.stack.push(Node {
            options,
            chosen,
            sleep,
            fp: None,
            pinned: false,
            donated: false,
        });
        self.pos += 1;
        chosen
    }

    fn observe(&mut self, fp: &Footprint) {
        // One footprint per decision, in decision order; re-runs
        // re-deliver the (identical) prefix footprints.
        debug_assert!(self.obs < self.stack.len(), "footprint without a node");
        self.stack[self.obs].fp = Some(fp.clone());
        self.obs += 1;
    }

    fn abort_run(&self) -> bool {
        self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp_w(cpu: usize, addr: u32) -> Footprint {
        Footprint {
            writes: vec![addr],
            ..Footprint::on(cpu)
        }
    }

    #[test]
    fn independent_sleepers_survive_dependent_are_woken() {
        let mut c = DporCursor::new();
        // Root: two actions; explore branch 0 (cpu 0 writes addr 0).
        let acts = [Action::Exec { cpu: 0 }, Action::Exec { cpu: 1 }];
        assert_eq!(c.choose(&acts), 0);
        c.observe(&fp_w(0, 0));
        assert!(c.advance(), "branch 1 remains");
        c.rewind();
        // Replay nothing (root is first): branch 1 now chosen.
        assert_eq!(c.choose(&acts), 1);
        c.observe(&fp_w(1, 1)); // disjoint address: independent of sleeper
                                // Child of branch 1 offers cpu 0's action again — it is asleep
                                // (the sleeping entry survived the independent decision), so
                                // with only that action enabled the node blocks.
        let only_cpu0 = [Action::Exec { cpu: 0 }];
        c.choose(&only_cpu0);
        assert!(c.abort_run(), "sole enabled action is asleep");
        assert!(c.sleep_skips >= 1);
        assert!(!c.advance(), "tree exhausted");
    }

    #[test]
    fn dependent_decision_wakes_sleeper() {
        let mut c = DporCursor::new();
        let acts = [Action::Exec { cpu: 0 }, Action::Exec { cpu: 1 }];
        assert_eq!(c.choose(&acts), 0);
        c.observe(&fp_w(0, 7));
        assert!(c.advance());
        c.rewind();
        assert_eq!(c.choose(&acts), 1);
        c.observe(&fp_w(1, 7)); // same address: dependent → sleeper woken
        let only_cpu0 = [Action::Exec { cpu: 0 }];
        assert_eq!(c.choose(&only_cpu0), 0);
        assert!(!c.abort_run(), "woken action must be re-explored");
    }

    #[test]
    fn path_and_split_round_trip() {
        let mut c = DporCursor::new();
        let acts3 = [
            Action::Exec { cpu: 0 },
            Action::Exec { cpu: 1 },
            Action::Exec { cpu: 2 },
        ];
        assert_eq!(c.choose(&acts3), 0);
        c.observe(&fp_w(0, 0));
        assert_eq!(c.choose(&acts3), 0);
        c.observe(&fp_w(0, 1));
        assert_eq!(c.path(), vec![0, 0]);
        // Donate the root's remaining branches 1..3.
        let (prefix, sleep, next) = c.split_shallowest().expect("root is splittable");
        assert!(prefix.is_empty());
        assert_eq!(next, 1);
        assert_eq!(sleep.len(), 1, "in-progress branch is pre-slept");
        // The donor no longer explores them…
        assert!(c.advance(), "depth-1 siblings remain");
        assert_eq!(c.path(), vec![0, 1]);
        c.rewind();
        // …while a receiving cursor starts exactly there: the donated
        // node IS the root (empty prefix), opened at branch `next`.
        let mut w = DporCursor::with_base(prefix, sleep, next);
        w.rewind();
        assert_eq!(w.choose(&acts3), 1, "starts at the donated branch");
        assert_eq!(w.path(), vec![1]);
    }

    #[test]
    fn with_base_replays_prefix_then_starts_at_next() {
        let acts = [Action::Exec { cpu: 0 }, Action::Exec { cpu: 1 }];
        let mut w = DporCursor::with_base(vec![1], Vec::new(), 1);
        w.rewind();
        assert_eq!(w.choose(&acts), 1, "prefix replayed");
        w.observe(&fp_w(1, 0));
        assert_eq!(w.choose(&acts), 1, "frontier starts at `next`");
        w.observe(&fp_w(0, 1));
        assert_eq!(w.path(), vec![1, 1]);
        // Exhausting the donated node stops at the pinned prefix.
        assert!(!w.advance());
    }
}
