//! Dynamic partial-order reduction over the memsim schedule tree.
//!
//! The brute-force sweeps ([`explore`](jungle_memsim::explore) plus
//! trace-key dedup) execute every schedule and discard the equivalent
//! ones after the fact — hundreds of thousands of runs to surface a few
//! thousand distinct histories. This module replaces *enumerate then
//! dedup* with *never enumerate the duplicate*:
//!
//! * [`cursor`] — a sleep-set DFS cursor ([`DporCursor`]): after a
//!   branch completes it goes to sleep with its observed
//!   [`Footprint`](jungle_memsim::Footprint); sleeping actions are
//!   skipped while every subsequent decision is independent of them, so
//!   each Mazurkiewicz class of complete runs executes exactly once.
//! * [`deps`] — vector clocks over the footprint sequence flagging the
//!   racing transition pairs ([`count_races`]) that make the classes
//!   branch.
//! * [`frontier`] — a self-balancing work-stealing queue of donated
//!   subtrees for [`explore_dpor_par`], replacing the fixed
//!   `threads × 8` seed split of the old parallel sweep.
//!
//! Both entry points preserve brute-force verdicts **and witnesses**:
//! the serial DFS meets leaves in lexicographic decision order (so its
//! first violation is the one enumeration reports first), and the
//! parallel explorer keeps the lexicographically least violating
//! decision path while pruning work beyond it, converging to that same
//! leaf at any worker count.

pub mod cursor;
pub mod deps;
pub mod frontier;

pub use cursor::{DporCursor, SleepEntry};
pub use deps::{count_races, count_races_into, footprint_kind};
pub use frontier::{Frontier, WorkItem, SEED_WORKER};

use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use jungle_memsim::{Machine, RunResult};
use jungle_obs::sim::{DporStats, MachineStats, WorkerLane};

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Totals from one DPOR exploration.
#[derive(Debug, Default, Clone)]
pub struct DporOutcome {
    /// Machine runs executed (including sleep-blocked stubs).
    pub executed: usize,
    /// Complete runs — one per Mazurkiewicz equivalence class reached
    /// within the step bound.
    pub classes: usize,
    /// Runs cut off by the step bound before completing.
    pub truncated: usize,
    /// Runs aborted at a node whose every enabled action was asleep.
    pub blocked: usize,
    /// Enabled actions skipped because they were asleep.
    pub sleep_skips: u64,
    /// Racing transition pairs flagged across all complete runs.
    pub races: u64,
    /// Frontier items popped by a worker other than their pusher
    /// (always 0 for the serial explorer).
    pub frontier_steals: u64,
    /// The visitor stopped the exploration (serial) or reported at
    /// least one violation (parallel).
    pub stopped_early: bool,
    /// Machine-level totals across every executed run.
    pub stats: MachineStats,
    /// Waste attribution: blocked-probe depths, race-pair heat,
    /// per-worker wall-clock and run-latency histogram.
    /// `waste.blocked` always equals `blocked`.
    pub waste: DporStats,
}

impl DporOutcome {
    fn absorb(&mut self, other: &DporOutcome) {
        self.executed += other.executed;
        self.classes += other.classes;
        self.truncated += other.truncated;
        self.blocked += other.blocked;
        self.sleep_skips += other.sleep_skips;
        self.races += other.races;
        self.frontier_steals += other.frontier_steals;
        self.stopped_early |= other.stopped_early;
        self.stats.absorb(&other.stats);
        self.waste.absorb(&other.waste);
    }
}

/// Serial sleep-set DPOR sweep. Builds a fresh machine per run via
/// `factory`, visits every non-aborted run in lexicographic decision
/// order, and stops early when `visit` returns `true` (first violation
/// — identical to the run brute enumeration would flag first).
pub fn explore_dpor(
    mut factory: impl FnMut() -> Machine,
    max_steps: usize,
    mut visit: impl FnMut(&RunResult) -> bool,
) -> DporOutcome {
    let mut cursor = DporCursor::new();
    let mut out = DporOutcome::default();
    let busy = Instant::now();
    loop {
        cursor.rewind();
        let run_start = Instant::now();
        let result = factory().run(&mut cursor, max_steps);
        out.waste.run_ns.record(elapsed_ns(run_start));
        out.executed += 1;
        out.stats.absorb(&result.stats);
        if result.aborted {
            out.blocked += 1;
            // Attribute before advance() pops the blocked node.
            out.waste
                .note_blocked(cursor.blocked_depth().unwrap_or_default());
        } else {
            if result.completed {
                out.classes += 1;
                out.races += count_races_into(&result.footprints, &mut out.waste);
            } else {
                out.truncated += 1;
            }
            if visit(&result) {
                out.stopped_early = true;
                break;
            }
        }
        if !cursor.advance() {
            break;
        }
    }
    out.sleep_skips = cursor.sleep_skips;
    out.waste.workers.push(WorkerLane {
        busy_ns: elapsed_ns(busy),
        runs: out.executed as u64,
        ..WorkerLane::default()
    });
    out
}

/// Is `path` lexicographically beyond (strictly after) `best`? A prefix
/// of `best` is *not* beyond — its subtree may still contain smaller
/// leaves.
fn beyond(path: &[usize], best: &Option<Vec<usize>>) -> bool {
    let Some(best) = best else { return false };
    for (p, b) in path.iter().zip(best.iter()) {
        if p != b {
            return p > b;
        }
    }
    false
}

/// Parallel sleep-set DPOR sweep over a work-stealing frontier.
///
/// `visit` is called for every non-aborted run (concurrently, from
/// `threads` workers) with the run and its absolute decision path;
/// returning `true` marks the run violating. The explorer keeps the
/// lexicographically least violating path and prunes subtrees beyond
/// it, so the surviving violation — the one whose path `visit` saw last
/// confirmed as minimal — is the same leaf the serial explorer stops
/// at, independent of worker count and scheduling. Callers needing the
/// winning run should record `(path, data)` per violation and keep the
/// lex-least, mirroring the explorer's rule.
pub fn explore_dpor_par<F, V>(
    factory: &F,
    max_steps: usize,
    threads: usize,
    visit: &V,
) -> DporOutcome
where
    F: Fn() -> Machine + Sync,
    V: Fn(&RunResult, &[usize]) -> bool + Sync,
{
    let frontier = Frontier::new(threads.max(1));
    frontier.push(
        SEED_WORKER,
        WorkItem {
            prefix: Vec::new(),
            sleep: Vec::new(),
            next: 0,
        },
    );
    let best: Mutex<Option<Vec<usize>>> = Mutex::new(None);
    let merged: Mutex<DporOutcome> = Mutex::new(DporOutcome::default());
    thread::scope(|scope| {
        for me in 0..threads.max(1) {
            let frontier = &frontier;
            let best = &best;
            let merged = &merged;
            scope.spawn(move || {
                let mut local = DporOutcome::default();
                let mut lane = WorkerLane::default();
                loop {
                    let wait = Instant::now();
                    let Some((item, stolen)) = frontier.pop_stealing(me) else {
                        lane.idle_ns += elapsed_ns(wait);
                        break;
                    };
                    if stolen {
                        lane.steal_ns += elapsed_ns(wait);
                        lane.steals += 1;
                    } else {
                        lane.idle_ns += elapsed_ns(wait);
                    }
                    let busy = Instant::now();
                    if beyond(&item.prefix, &best.lock().unwrap()) {
                        lane.busy_ns += elapsed_ns(busy);
                        continue; // a smaller violation rules this subtree out
                    }
                    let mut cursor = DporCursor::with_base(item.prefix, item.sleep, item.next);
                    loop {
                        if beyond(&cursor.path(), &best.lock().unwrap()) {
                            break; // cursor runs are lex-increasing: all later ones beyond too
                        }
                        cursor.rewind();
                        let run_start = Instant::now();
                        let result = factory().run(&mut cursor, max_steps);
                        local.waste.run_ns.record(elapsed_ns(run_start));
                        local.executed += 1;
                        lane.runs += 1;
                        local.stats.absorb(&result.stats);
                        if result.aborted {
                            local.blocked += 1;
                            local
                                .waste
                                .note_blocked(cursor.blocked_depth().unwrap_or_default());
                        } else {
                            if result.completed {
                                local.classes += 1;
                                local.races +=
                                    count_races_into(&result.footprints, &mut local.waste);
                            } else {
                                local.truncated += 1;
                            }
                            if visit(&result, &cursor.path()) {
                                local.stopped_early = true;
                                let path = cursor.path();
                                let mut b = best.lock().unwrap();
                                if !beyond(&path, &b) || b.is_none() {
                                    *b = Some(path);
                                }
                            }
                        }
                        if !cursor.advance() {
                            break;
                        }
                        if frontier.hungry() {
                            if let Some((prefix, sleep, next)) = cursor.split_shallowest() {
                                frontier.push(
                                    me,
                                    WorkItem {
                                        prefix,
                                        sleep,
                                        next,
                                    },
                                );
                            }
                        }
                    }
                    local.sleep_skips += cursor.sleep_skips;
                    lane.busy_ns += elapsed_ns(busy);
                }
                // Publish this worker's lane at its own index so the
                // by-index merge in `absorb` keeps lanes distinct.
                local.waste.workers.resize(me + 1, WorkerLane::default());
                local.waste.workers[me] = lane;
                merged.lock().unwrap().absorb(&local);
            });
        }
    });
    let mut out = merged.into_inner().unwrap();
    out.frontier_steals = frontier.steals();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jungle_core::ids::{Var, X, Y};
    use jungle_core::op::{Command, Op};
    use jungle_memsim::process::FnProcess;
    use jungle_memsim::{HwModel, PInstr, Process, Step};
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two CPUs, each storing then loading (SB-shaped litmus); under
    /// TSO this has store-buffer interleavings, giving a real schedule
    /// tree with independent cross-CPU transitions to reduce.
    fn sb_machine() -> Machine {
        fn proc(wa: u32, ra: u32, wv: Var, rv: Var) -> Box<dyn Process> {
            let wr = Op::Cmd(Command::Write { var: wv, val: 1 });
            let mut st = 0;
            Box::new(FnProcess::new(move |last| {
                st += 1;
                match st {
                    1 => Step::Inv(wr.clone()),
                    2 => Step::Instr(PInstr::Store(wa, 1)),
                    3 => Step::Resp(wr.clone()),
                    4 => Step::Inv(Op::Cmd(Command::Read { var: rv, val: 0 })),
                    5 => Step::Instr(PInstr::Load(ra)),
                    6 => Step::Resp(Op::Cmd(Command::Read {
                        var: rv,
                        val: last.unwrap(),
                    })),
                    _ => Step::Done,
                }
            }))
        }
        Machine::new(HwModel::Tso, vec![proc(0, 1, X, Y), proc(1, 0, Y, X)])
    }

    fn brute_keys(max_steps: usize) -> (BTreeSet<u64>, usize) {
        let mut keys = BTreeSet::new();
        let out = jungle_memsim::explore(sb_machine, max_steps, |r| {
            if r.completed {
                keys.insert(r.trace.cache_key());
            }
            false
        });
        (keys, out.runs)
    }

    #[test]
    fn serial_dpor_covers_every_class_with_fewer_runs() {
        let (brute, brute_runs) = brute_keys(64);
        let mut dpor = BTreeSet::new();
        let out = explore_dpor(sb_machine, 64, |r| {
            if r.completed {
                dpor.insert(r.trace.cache_key());
            }
            false
        });
        assert_eq!(dpor, brute, "DPOR must visit the same history classes");
        assert!(out.executed <= brute_runs, "reduction never inflates");
        assert!(out.sleep_skips > 0, "SB litmus has independent transitions");
        assert_eq!(out.classes, out.executed - out.blocked - out.truncated);
        // Waste attribution is exhaustive and consistent.
        assert_eq!(out.waste.blocked, out.blocked as u64);
        assert_eq!(
            out.waste.blocked_by_depth.iter().sum::<u64>(),
            out.blocked as u64,
            "every blocked probe is attributed to a depth"
        );
        assert_eq!(out.waste.race_total(), out.races);
        assert_eq!(out.waste.run_ns.count, out.executed as u64);
        assert_eq!(out.waste.workers.len(), 1, "serial run is one lane");
        assert_eq!(out.waste.workers[0].runs, out.executed as u64);
        assert_eq!(out.waste.workers[0].idle_ns, 0);
    }

    #[test]
    fn parallel_dpor_matches_serial_classes_at_any_width() {
        let (brute, _) = brute_keys(64);
        for threads in [1, 2, 4] {
            let keys: Mutex<BTreeSet<u64>> = Mutex::new(BTreeSet::new());
            let out = explore_dpor_par(
                &sb_machine,
                64,
                threads,
                &|r: &RunResult, _path: &[usize]| {
                    if r.completed {
                        keys.lock().unwrap().insert(r.trace.cache_key());
                    }
                    false
                },
            );
            assert_eq!(
                keys.into_inner().unwrap(),
                brute,
                "{threads} workers must cover the same classes"
            );
            if threads > 1 {
                assert!(out.frontier_steals >= 1, "seed pop counts as a steal");
            }
            assert_eq!(out.waste.blocked, out.blocked as u64);
            assert_eq!(
                out.waste.blocked_by_depth.iter().sum::<u64>(),
                out.blocked as u64
            );
            assert_eq!(out.waste.race_total(), out.races);
            assert!(out.waste.workers.len() <= threads);
            assert_eq!(
                out.waste.workers.iter().map(|w| w.runs).sum::<u64>(),
                out.executed as u64,
                "every run belongs to exactly one lane"
            );
            assert_eq!(
                out.waste.workers.iter().map(|w| w.steals).sum::<u64>(),
                out.frontier_steals
            );
        }
    }

    #[test]
    fn early_stop_reports_first_class() {
        let count = AtomicUsize::new(0);
        let out = explore_dpor(sb_machine, 64, |r| {
            r.completed && count.fetch_add(1, Ordering::Relaxed) == 0
        });
        assert!(out.stopped_early);
        assert_eq!(out.classes, 1);
    }
}
